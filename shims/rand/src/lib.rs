//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen` for primitive types, and
//! `Rng::gen_range` over primitive integer ranges.
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched; the workspace `[workspace.dependencies]`
//! table points `rand` at this path instead. The generator is a
//! deterministic SplitMix64-seeded xoshiro256**, which passes the usual
//! statistical smoke tests and is more than adequate for the random
//! stimulus the simulators draw. It does **not** match the stream of
//! the real `rand::rngs::StdRng` (ChaCha12) — seeds are reproducible
//! *within* this workspace only — and it is not cryptographically
//! secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A type that can be produced from raw RNG output (stand-in for the
/// real crate's `Standard: Distribution<T>` bound on [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Low-level entropy source: everything builds on `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing randomness API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// A uniformly distributed `u64` in `range` (half-open).
    ///
    /// Only `Range<u64>`-shaped ranges are supported by the shim; this
    /// covers every call site in the workspace.
    fn gen_range(&mut self, range: Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "gen_range: empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span
        // which is irrelevant for simulation stimulus.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a small seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Stream-incompatible with the real `rand::rngs::StdRng`; all
    /// workspace results derived from seeded runs are reproducible
    /// against *this* implementation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
