//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses: the `proptest!` test macro with an inline
//! `#![proptest_config(...)]`, range and `any::<T>()` strategies, and
//! the `prop_assert!` family.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched; `[workspace.dependencies]` points
//! `proptest` at this path instead. Differences from the real crate:
//! inputs are sampled uniformly (no bias toward boundary values) and
//! failing cases are **not shrunk** — the panic message reports the
//! exact inputs of the failing case instead.
//!
//! The number of cases per property comes from
//! [`ProptestConfig::with_cases`] (or `ProptestConfig::default()`), and
//! can be overridden globally with the `PROPTEST_CASES` environment
//! variable, mirroring the real crate's behaviour.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Everything a `proptest!`-using test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;

    /// Strategy for `Vec<T>` with a random length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length from `size`
    /// (a `usize`, `Range<usize>` or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Length specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick_len(&self, rng: &mut StdRng) -> usize {
        (self.lo..=self.hi_inclusive).pick(rng)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Per-property configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run for each property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property (still overridable
    /// by the `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }.env_override()
    }

    fn env_override(self) -> Self {
        self.override_from(std::env::var("PROPTEST_CASES").ok().as_deref())
    }

    fn override_from(mut self, var: Option<&str>) -> Self {
        if let Some(n) = var.and_then(|v| v.trim().parse::<u32>().ok()) {
            self.cases = n;
        }
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }.env_override()
    }
}

/// Error type carried by `prop_assert!` failures (kept for API
/// compatibility; the shim macro panics directly).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// A source of random test inputs (subset of the real `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one input for the current test case.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u8>()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u16>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<usize>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                // u128 arithmetic: `hi - lo + 1` overflows u64 on a
                // full-domain range like `0u64..=u64::MAX`.
                let span = (hi - lo) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.gen::<u64>() as $t;
                }
                lo + (rng.gen_range(0..span as u64) as $t)
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen_range(0..span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn pick(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Derives the per-property RNG. Seeded from the property name so each
/// property gets a distinct but reproducible stream.
pub fn test_rng(property_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in property_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(h);
    // Decorrelate from the raw seed.
    let _ = rng.next_u64();
    rng
}

/// Defines property tests. Supports the real crate's block form with an
/// optional leading `#![proptest_config(...)]`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn doubling(x in 0u32..=1000) { prop_assert_eq!(2 * x, x + x); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!("case ", "{}", $(" ", stringify!($arg), "={:?}",)+),
                    __case $(, $arg)+
                );
                let __run = || -> () { $body };
                if let Err(__panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!("proptest[{}]: failed at {}", stringify!($name), __inputs);
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sanity: the macro wires strategies, config and assertions.
        #[test]
        fn addition_commutes(a in 0u32..=1000, b in 0u32..=1000, flip in any::<bool>()) {
            let (x, y) = if flip { (b, a) } else { (a, b) };
            prop_assert_eq!(x + y, a + b);
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges_respect_bounds");
        for _ in 0..200 {
            let v = (2usize..=20).pick(&mut rng);
            assert!((2..=20).contains(&v));
            let w = (4u32..9).pick(&mut rng);
            assert!((4..9).contains(&w));
        }
    }

    #[test]
    fn env_var_overrides_cases() {
        // Exercises the override logic directly rather than mutating
        // the process-global environment (tests run in parallel).
        assert_eq!(
            ProptestConfig { cases: 1000 }
                .override_from(Some("3"))
                .cases,
            3
        );
        assert_eq!(
            ProptestConfig { cases: 1000 }
                .override_from(Some(" 7 "))
                .cases,
            7
        );
        assert_eq!(
            ProptestConfig { cases: 1000 }
                .override_from(Some("junk"))
                .cases,
            1000
        );
        assert_eq!(
            ProptestConfig { cases: 1000 }.override_from(None).cases,
            1000
        );
    }

    #[test]
    fn full_domain_inclusive_range_samples() {
        let mut rng = crate::test_rng("full_domain_inclusive_range_samples");
        // Must not overflow the span computation.
        let _ = (0u64..=u64::MAX).pick(&mut rng);
        let v = (u64::MAX - 1..=u64::MAX).pick(&mut rng);
        assert!(v >= u64::MAX - 1);
    }
}
