//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses: `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched; `[workspace.dependencies]` points
//! `criterion` at this path instead. The shim keeps the same bench
//! entry-point shape (`harness = false` targets build and run under
//! `cargo bench`) but replaces the statistical machinery with a simple
//! warm-up + timed-loop mean/min report. Numbers are indicative, not
//! rigorous; the primary contract is that every bench target compiles
//! and runs to completion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup output is batched (accepted and ignored by
/// the shim; every iteration gets a fresh setup value).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean/min nanoseconds per iteration, filled by `iter*`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut mean_ns = f64::INFINITY;
        let mut min_ns = f64::INFINITY;
        let mut samples = 0usize;
        let budget_start = Instant::now();
        // At least `sample_size` samples, then keep sampling until the
        // measurement budget is spent: the min over the whole budget is
        // what makes the speedup rows robust against scheduler noise on
        // shared runners (a short burst of contention cannot poison
        // every sample of a multi-second window).
        while samples < self.sample_size || budget_start.elapsed() < self.measurement_time {
            let t = Instant::now();
            black_box(routine());
            let ns = t.elapsed().as_nanos() as f64;
            min_ns = min_ns.min(ns);
            mean_ns = if samples == 0 {
                ns
            } else {
                mean_ns + (ns - mean_ns) / (samples as f64 + 1.0)
            };
            samples += 1;
        }
        self.result = Some((mean_ns, min_ns));
    }

    /// Times `routine` with a fresh `setup()` value per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let mut mean_ns = f64::INFINITY;
        let mut min_ns = f64::INFINITY;
        let mut samples = 0usize;
        let budget_start = Instant::now();
        // Same sampling policy as `iter`: at least `sample_size`
        // samples, then fill the measurement budget (setup time counts
        // against the budget but not against the timed sections).
        while samples < self.sample_size || budget_start.elapsed() < self.measurement_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let ns = t.elapsed().as_nanos() as f64;
            min_ns = min_ns.min(ns);
            mean_ns = if samples == 0 {
                ns
            } else {
                mean_ns + (ns - mean_ns) / (samples as f64 + 1.0)
            };
            samples += 1;
        }
        self.result = Some((mean_ns, min_ns));
    }

    /// Variant of `iter_batched` that takes the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

/// Benchmark driver (subset of the real `Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((mean, min)) => println!(
                "bench {id:<48} mean {} min {}",
                format_ns(mean),
                format_ns(min)
            ),
            None => println!("bench {id:<48} (no timing loop executed)"),
        }
        self
    }

    /// Called by `criterion_main!` after all groups (report hook in the
    /// real crate; a no-op here).
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>9.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>9.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>9.3} µs", ns / 1e3)
    } else {
        format!("{ns:>9.1} ns")
    }
}

/// Declares a benchmark group: either the attribute form with `name =`,
/// `config =`, `targets =`, or the positional `group!(name, fn...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0, "routine never ran");
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut setups = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 2, "setup ran {setups} times");
    }
}
