//! Netlist construction and validation errors.

use core::fmt;

use crate::{CellId, CellKind, NetId};

/// Errors detected while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell was given the wrong number of input nets.
    ArityMismatch {
        /// The cell kind being instantiated.
        kind: CellKind,
        /// Pins expected by the kind.
        expected: usize,
        /// Pins supplied.
        got: usize,
    },
    /// An input net id does not exist in this netlist.
    UnknownNet {
        /// The dangling net id.
        net: NetId,
    },
    /// The combinational core contains a cycle (a loop not broken by a
    /// flip-flop), which has no valid evaluation order.
    CombinationalLoop {
        /// One cell on the cycle, for diagnostics.
        witness: CellId,
    },
    /// The netlist has no cells at all.
    Empty,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityMismatch {
                kind,
                expected,
                got,
            } => write!(f, "{kind} expects {expected} input pins, got {got}"),
            Self::UnknownNet { net } => write!(f, "unknown net {net:?}"),
            Self::CombinationalLoop { witness } => {
                write!(f, "combinational loop through cell {witness:?}")
            }
            Self::Empty => write!(f, "netlist contains no cells"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = NetlistError::ArityMismatch {
            kind: CellKind::Mux2,
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("mux2"));
        assert!(NetlistError::Empty.to_string().contains("no cells"));
    }
}
