//! A small 0.13 µm-like standard-cell library.
//!
//! Numbers are representative of a 2003-era 0.13 µm general-purpose
//! library (the role STM's HCMOS9 played in the paper): areas in the
//! 5–30 µm² range, input capacitances of a few fF, and delays
//! expressed in *normalised gate units* (FO4-like inverter delay = 1)
//! so that the summed critical-path length is directly the paper's
//! logical-depth `LD`.

use crate::CellKind;

/// Physical characterisation of one cell kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Input capacitance per pin in farads.
    pub input_cap_f: f64,
    /// Equivalent switched capacitance per output transition in farads
    /// (drives the per-cell `C` of the power model).
    pub switched_cap_f: f64,
    /// Propagation delay in normalised gate units (inverter = 1.0).
    pub delay_gates: f64,
}

/// A complete cell library: one [`CellSpec`] per [`CellKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: &'static str,
    specs: [CellSpec; CellKind::ALL.len()],
}

const fn spec(area: f64, cap_ff: f64, sw_ff: f64, delay: f64) -> CellSpec {
    CellSpec {
        area_um2: area,
        input_cap_f: cap_ff * 1e-15,
        switched_cap_f: sw_ff * 1e-15,
        delay_gates: delay,
    }
}

impl Library {
    /// The default 0.13 µm-like characterisation used by the ab-initio
    /// flow. Ports and constants are free and instantaneous.
    pub fn cmos13() -> Self {
        let mut specs = [spec(0.0, 0.0, 0.0, 0.0); CellKind::ALL.len()];
        for (i, kind) in CellKind::ALL.iter().enumerate() {
            specs[i] = match kind {
                CellKind::Input | CellKind::Output | CellKind::Const0 | CellKind::Const1 => {
                    spec(0.0, 0.0, 0.0, 0.0)
                }
                CellKind::Buf => spec(6.4, 2.0, 25.0, 1.0),
                CellKind::Inv => spec(4.3, 2.0, 18.0, 1.0),
                CellKind::And2 => spec(8.6, 2.2, 32.0, 1.4),
                CellKind::Nand2 => spec(6.4, 2.2, 26.0, 1.0),
                CellKind::Or2 => spec(8.6, 2.2, 32.0, 1.4),
                CellKind::Nor2 => spec(6.4, 2.2, 26.0, 1.1),
                CellKind::Xor2 => spec(12.9, 3.0, 48.0, 1.8),
                CellKind::Xnor2 => spec(12.9, 3.0, 48.0, 1.8),
                CellKind::Mux2 => spec(12.9, 2.6, 44.0, 1.6),
                CellKind::Xor3 => spec(19.4, 3.2, 66.0, 2.2),
                CellKind::Maj3 => spec(15.1, 2.8, 52.0, 1.6),
                CellKind::Dff => spec(23.7, 2.4, 62.0, 1.5),
            };
        }
        Self {
            name: "cmos13",
            specs,
        }
    }

    /// A copy of the default library with every *logic* cell's delay
    /// replaced by `delay_gates` (ports and constants stay free and
    /// instantaneous). A test and diagnostics helper: the timed
    /// engines validate library delays at construction, and this is
    /// the easiest way to present them a degenerate (zero, huge, NaN)
    /// delay profile.
    pub fn with_uniform_delay(delay_gates: f64) -> Self {
        let mut lib = Self::cmos13();
        lib.name = "uniform-delay";
        for (i, kind) in CellKind::ALL.iter().enumerate() {
            if kind.is_logic() {
                lib.specs[i].delay_gates = delay_gates;
            }
        }
        lib
    }

    /// Library name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The characterisation of `kind`.
    pub fn spec(&self, kind: CellKind) -> &CellSpec {
        let ix = CellKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("CellKind::ALL is exhaustive");
        &self.specs[ix]
    }

    /// Cell area in µm².
    pub fn area(&self, kind: CellKind) -> f64 {
        self.spec(kind).area_um2
    }

    /// Propagation delay in normalised gate units.
    pub fn delay(&self, kind: CellKind) -> f64 {
        self.spec(kind).delay_gates
    }

    /// Equivalent switched capacitance per output transition in farads.
    pub fn switched_cap(&self, kind: CellKind) -> f64 {
        self.spec(kind).switched_cap_f
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::cmos13()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_free() {
        let lib = Library::cmos13();
        for kind in [
            CellKind::Input,
            CellKind::Output,
            CellKind::Const0,
            CellKind::Const1,
        ] {
            assert_eq!(lib.area(kind), 0.0);
            assert_eq!(lib.delay(kind), 0.0);
            assert_eq!(lib.switched_cap(kind), 0.0);
        }
    }

    #[test]
    fn logic_cells_have_positive_characterisation() {
        let lib = Library::cmos13();
        for kind in CellKind::ALL.iter().filter(|k| k.is_logic()) {
            assert!(lib.area(*kind) > 0.0, "{kind}");
            assert!(lib.delay(*kind) > 0.0, "{kind}");
            assert!(lib.switched_cap(*kind) > 0.0, "{kind}");
            assert!(lib.spec(*kind).input_cap_f > 0.0, "{kind}");
        }
    }

    #[test]
    fn inverter_is_the_delay_unit() {
        let lib = Library::cmos13();
        assert_eq!(lib.delay(CellKind::Inv), 1.0);
    }

    #[test]
    fn xor3_is_slowest_combinational_gate() {
        let lib = Library::cmos13();
        for kind in CellKind::ALL
            .iter()
            .filter(|k| k.is_logic() && !k.is_sequential())
        {
            assert!(lib.delay(CellKind::Xor3) >= lib.delay(*kind));
        }
        for kind in [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Mux2,
        ] {
            assert!(lib.delay(CellKind::Xor2) >= lib.delay(kind));
        }
    }

    #[test]
    fn dff_is_largest_cell() {
        let lib = Library::cmos13();
        for kind in CellKind::ALL.iter().filter(|k| k.is_logic()) {
            assert!(lib.area(CellKind::Dff) >= lib.area(*kind));
        }
    }

    #[test]
    fn default_is_cmos13() {
        assert_eq!(Library::default(), Library::cmos13());
    }

    #[test]
    fn uniform_delay_overrides_logic_cells_only() {
        let lib = Library::with_uniform_delay(3.5);
        for kind in CellKind::ALL {
            if kind.is_logic() {
                assert_eq!(lib.delay(kind), 3.5, "{kind}");
            } else {
                assert_eq!(lib.delay(kind), 0.0, "{kind}");
            }
        }
        // Everything except delays matches the default library.
        assert_eq!(
            lib.area(CellKind::Xor2),
            Library::cmos13().area(CellKind::Xor2)
        );
    }
}
