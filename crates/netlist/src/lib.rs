//! Gate-level structural netlists for the `optpower` ab-initio flow.
//!
//! The paper's architectural parameters (`N`, `a`, `LD`) came from
//! synthesising thirteen VHDL multipliers with Synopsys DC and
//! simulating the netlists in ModelSIM. This crate provides the
//! substrate replacing that flow: a structural netlist representation
//! over a small 0.13 µm-like standard-cell [`Library`], with
//!
//! * a validating [`NetlistBuilder`] (arity checks, single-driver,
//!   no floating nets, combinational-loop detection),
//! * topological traversal of the combinational core,
//! * per-design statistics (cell count, area, average input
//!   capacitance) feeding the power model,
//! * three-valued cell evaluation ([`Logic`], [`CellKind::eval`])
//!   shared with the event-driven simulator.
//!
//! # Examples
//!
//! Build and inspect a full adder:
//!
//! ```
//! use optpower_netlist::{CellKind, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("full_adder");
//! let a = b.add_input("a");
//! let bb = b.add_input("b");
//! let cin = b.add_input("cin");
//! let axb = b.add_cell(CellKind::Xor2, &[a, bb]);
//! let sum = b.add_cell(CellKind::Xor2, &[axb, cin]);
//! let t1 = b.add_cell(CellKind::And2, &[a, bb]);
//! let t2 = b.add_cell(CellKind::And2, &[axb, cin]);
//! let cout = b.add_cell(CellKind::Or2, &[t1, t2]);
//! b.add_output("sum", sum);
//! b.add_output("cout", cout);
//! let nl = b.build()?;
//! assert_eq!(nl.logic_cell_count(), 5);
//! # Ok::<(), optpower_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod error;
mod export;
mod graph;
mod library;
mod stats;

pub use cell::{CellKind, Logic};
pub use error::NetlistError;
pub use export::{to_dot, to_verilog};
pub use graph::{Cell, CellId, Net, NetId, Netlist, NetlistBuilder, PruneStats};
pub use library::{CellSpec, Library};
pub use stats::NetlistStats;
