//! Aggregate netlist statistics feeding the power model.

use crate::{Library, Netlist};

/// Aggregate physical statistics of a netlist under a [`Library`].
///
/// # Examples
///
/// ```
/// use optpower_netlist::{CellKind, Library, NetlistBuilder, NetlistStats};
///
/// let mut b = NetlistBuilder::new("pair");
/// let x = b.add_input("x");
/// let n1 = b.add_cell(CellKind::Inv, &[x]);
/// let n2 = b.add_cell(CellKind::Inv, &[n1]);
/// b.add_output("y", n2);
/// let nl = b.build()?;
/// let stats = NetlistStats::measure(&nl, &Library::cmos13());
/// assert_eq!(stats.logic_cells, 2);
/// assert!(stats.area_um2 > 8.0);
/// # Ok::<(), optpower_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistStats {
    /// The paper's `N`: logic gates plus flip-flops.
    pub logic_cells: usize,
    /// Flip-flop count (subset of `logic_cells`).
    pub dffs: usize,
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Average equivalent switched capacitance per logic cell, in
    /// farads — the power model's per-cell `C`.
    pub avg_switched_cap_f: f64,
    /// Total switched capacitance if every cell toggled once, in farads.
    pub total_switched_cap_f: f64,
}

impl NetlistStats {
    /// Measures `netlist` under `library`.
    pub fn measure(netlist: &Netlist, library: &Library) -> Self {
        let mut logic_cells = 0usize;
        let mut dffs = 0usize;
        let mut area = 0.0;
        let mut total_cap = 0.0;
        for (_, cell) in netlist.logic_cells() {
            logic_cells += 1;
            if cell.kind.is_sequential() {
                dffs += 1;
            }
            area += library.area(cell.kind);
            total_cap += library.switched_cap(cell.kind);
        }
        let avg = if logic_cells > 0 {
            total_cap / logic_cells as f64
        } else {
            0.0
        };
        Self {
            logic_cells,
            dffs,
            area_um2: area,
            avg_switched_cap_f: avg,
            total_switched_cap_f: total_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, NetlistBuilder};

    fn pipeline_stage() -> Netlist {
        let mut b = NetlistBuilder::new("stage");
        let x = b.add_input("x");
        let inv = b.add_cell(CellKind::Inv, &[x]);
        let q = b.add_cell(CellKind::Dff, &[inv]);
        b.add_output("q", q);
        b.build().unwrap()
    }

    #[test]
    fn measures_counts_area_and_cap() {
        let nl = pipeline_stage();
        let lib = Library::cmos13();
        let s = NetlistStats::measure(&nl, &lib);
        assert_eq!(s.logic_cells, 2);
        assert_eq!(s.dffs, 1);
        let expect_area = lib.area(CellKind::Inv) + lib.area(CellKind::Dff);
        assert!((s.area_um2 - expect_area).abs() < 1e-12);
        let expect_cap = lib.switched_cap(CellKind::Inv) + lib.switched_cap(CellKind::Dff);
        assert!((s.total_switched_cap_f - expect_cap).abs() < 1e-24);
        assert!((s.avg_switched_cap_f - expect_cap / 2.0).abs() < 1e-24);
    }

    #[test]
    fn ports_do_not_contribute() {
        let mut b = NetlistBuilder::new("wire");
        let x = b.add_input("x");
        let n = b.add_cell(CellKind::Buf, &[x]);
        b.add_output("y", n);
        let nl = b.build().unwrap();
        let s = NetlistStats::measure(&nl, &Library::cmos13());
        assert_eq!(s.logic_cells, 1);
        assert_eq!(s.dffs, 0);
    }
}
