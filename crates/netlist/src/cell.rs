//! Cell kinds, three-valued logic, and cell evaluation semantics.

use core::fmt;

/// Three-valued logic: `0`, `1` or unknown (`X`).
///
/// `X` models uninitialised state and is propagated pessimistically by
/// [`CellKind::eval`] (controlling inputs still force known outputs,
/// e.g. `And2(0, X) = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialised.
    #[default]
    X,
}

impl Logic {
    /// Converts a boolean to a known logic level.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Self::One
        } else {
            Self::Zero
        }
    }

    /// Returns `Some(bool)` for known levels, `None` for `X`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Self::Zero => Some(false),
            Self::One => Some(true),
            Self::X => None,
        }
    }

    /// `true` when the level is `0` or `1`.
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, Self::X)
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)] // deliberate 3-valued name
    #[inline]
    pub fn not(self) -> Self {
        match self {
            Self::Zero => Self::One,
            Self::One => Self::Zero,
            Self::X => Self::X,
        }
    }

    /// Three-valued AND (0 is controlling).
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Self::Zero, _) | (_, Self::Zero) => Self::Zero,
            (Self::One, Self::One) => Self::One,
            _ => Self::X,
        }
    }

    /// Three-valued OR (1 is controlling).
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Self::One, _) | (_, Self::One) => Self::One,
            (Self::Zero, Self::Zero) => Self::Zero,
            _ => Self::X,
        }
    }

    /// Three-valued XOR (any X poisons).
    #[inline]
    pub fn xor(self, rhs: Self) -> Self {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Self::from_bool(a ^ b),
            _ => Self::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Zero => "0",
            Self::One => "1",
            Self::X => "X",
        })
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Self::from_bool(b)
    }
}

/// Every cell kind in the library.
///
/// The set is deliberately small — it is the subset a 2003-era
/// synthesis run maps 16-bit multipliers onto: an inverter/buffer
/// pair, the six two-input gates, a 2:1 mux, a D flip-flop, constant
/// drivers, and the port pseudo-cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Primary-input pseudo-cell (no input pins; not counted as logic).
    Input,
    /// Primary-output pseudo-cell (one input pin; not counted as logic).
    Output,
    /// Constant-0 driver (tie-low; not counted as logic).
    Const0,
    /// Constant-1 driver (tie-high; not counted as logic).
    Const1,
    /// Buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input NAND.
    Nand2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: inputs `[a, b, sel]`, output `sel ? b : a`.
    Mux2,
    /// 3-input XOR (the sum function of a full adder).
    Xor3,
    /// 3-input majority (the carry function of a full adder).
    Maj3,
    /// Rising-edge D flip-flop: input `[d]`, output `q`.
    Dff,
}

impl CellKind {
    /// All kinds, for exhaustive table-driven tests.
    pub const ALL: [CellKind; 16] = [
        CellKind::Input,
        CellKind::Output,
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::Inv,
        CellKind::And2,
        CellKind::Nand2,
        CellKind::Or2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Xor3,
        CellKind::Maj3,
        CellKind::Dff,
    ];

    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            Self::Input | Self::Const0 | Self::Const1 => 0,
            Self::Output | Self::Buf | Self::Inv | Self::Dff => 1,
            Self::And2 | Self::Nand2 | Self::Or2 | Self::Nor2 | Self::Xor2 | Self::Xnor2 => 2,
            Self::Mux2 | Self::Xor3 | Self::Maj3 => 3,
        }
    }

    /// `true` for the D flip-flop (the only sequential element).
    pub fn is_sequential(self) -> bool {
        matches!(self, Self::Dff)
    }

    /// `true` for cells counted in the paper's `N` (logic gates and
    /// flip-flops; ports and constants are free).
    pub fn is_logic(self) -> bool {
        !matches!(
            self,
            Self::Input | Self::Output | Self::Const0 | Self::Const1
        )
    }

    /// Combinational evaluation with X-propagation.
    ///
    /// For [`CellKind::Dff`] this returns the *D input* (the value the
    /// flop would capture); the simulator applies it at clock edges.
    /// [`CellKind::Output`] is transparent.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` — the builder
    /// guarantees arity, so a mismatch is a caller logic error.
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{self:?} expects {} inputs, got {}",
            self.arity(),
            inputs.len()
        );
        match self {
            Self::Input => Logic::X,
            Self::Const0 => Logic::Zero,
            Self::Const1 => Logic::One,
            Self::Output | Self::Buf | Self::Dff => inputs[0],
            Self::Inv => inputs[0].not(),
            Self::And2 => inputs[0].and(inputs[1]),
            Self::Nand2 => inputs[0].and(inputs[1]).not(),
            Self::Or2 => inputs[0].or(inputs[1]),
            Self::Nor2 => inputs[0].or(inputs[1]).not(),
            Self::Xor2 => inputs[0].xor(inputs[1]),
            Self::Xnor2 => inputs[0].xor(inputs[1]).not(),
            Self::Xor3 => inputs[0].xor(inputs[1]).xor(inputs[2]),
            Self::Maj3 => {
                // Majority: known as soon as two inputs agree on a value.
                let ones = inputs.iter().filter(|&&v| v == Logic::One).count();
                let zeros = inputs.iter().filter(|&&v| v == Logic::Zero).count();
                if ones >= 2 {
                    Logic::One
                } else if zeros >= 2 {
                    Logic::Zero
                } else {
                    Logic::X
                }
            }
            Self::Mux2 => {
                let (a, b, sel) = (inputs[0], inputs[1], inputs[2]);
                match sel {
                    Logic::Zero => a,
                    Logic::One => b,
                    // X select: output known only if both data agree.
                    Logic::X => {
                        if a == b && a.is_known() {
                            a
                        } else {
                            Logic::X
                        }
                    }
                }
            }
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Input => "input",
            Self::Output => "output",
            Self::Const0 => "const0",
            Self::Const1 => "const1",
            Self::Buf => "buf",
            Self::Inv => "inv",
            Self::And2 => "and2",
            Self::Nand2 => "nand2",
            Self::Or2 => "or2",
            Self::Nor2 => "nor2",
            Self::Xor2 => "xor2",
            Self::Xnor2 => "xnor2",
            Self::Mux2 => "mux2",
            Self::Xor3 => "xor3",
            Self::Maj3 => "maj3",
            Self::Dff => "dff",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::{One, Zero, X};

    #[test]
    fn not_truth_table() {
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(X.not(), X);
    }

    #[test]
    fn and_controlling_zero() {
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.and(One), One);
    }

    #[test]
    fn or_controlling_one() {
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(One), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(Zero.or(Zero), Zero);
    }

    #[test]
    fn xor_poisoned_by_x() {
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.xor(Zero), X);
    }

    #[test]
    fn gate_eval_exhaustive_two_input() {
        let vals = [Zero, One];
        for &a in &vals {
            for &b in &vals {
                let (ab, ob) = (a.to_bool().unwrap(), b.to_bool().unwrap());
                assert_eq!(CellKind::And2.eval(&[a, b]), Logic::from_bool(ab & ob));
                assert_eq!(CellKind::Nand2.eval(&[a, b]), Logic::from_bool(!(ab & ob)));
                assert_eq!(CellKind::Or2.eval(&[a, b]), Logic::from_bool(ab | ob));
                assert_eq!(CellKind::Nor2.eval(&[a, b]), Logic::from_bool(!(ab | ob)));
                assert_eq!(CellKind::Xor2.eval(&[a, b]), Logic::from_bool(ab ^ ob));
                assert_eq!(CellKind::Xnor2.eval(&[a, b]), Logic::from_bool(!(ab ^ ob)));
            }
        }
    }

    #[test]
    fn mux_select_semantics() {
        assert_eq!(CellKind::Mux2.eval(&[Zero, One, Zero]), Zero); // sel=0 -> a
        assert_eq!(CellKind::Mux2.eval(&[Zero, One, One]), One); // sel=1 -> b
        assert_eq!(CellKind::Mux2.eval(&[One, One, X]), One); // agree -> known
        assert_eq!(CellKind::Mux2.eval(&[Zero, One, X]), X); // disagree -> X
    }

    #[test]
    fn constants_and_ports() {
        assert_eq!(CellKind::Const0.eval(&[]), Zero);
        assert_eq!(CellKind::Const1.eval(&[]), One);
        assert_eq!(CellKind::Input.eval(&[]), X);
        assert_eq!(CellKind::Output.eval(&[One]), One);
        assert_eq!(CellKind::Buf.eval(&[Zero]), Zero);
        assert_eq!(CellKind::Dff.eval(&[One]), One);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_rejects_wrong_arity() {
        let _ = CellKind::And2.eval(&[One]);
    }

    #[test]
    fn arity_table() {
        for kind in CellKind::ALL {
            let expect = match kind {
                CellKind::Input | CellKind::Const0 | CellKind::Const1 => 0,
                CellKind::Output | CellKind::Buf | CellKind::Inv | CellKind::Dff => 1,
                CellKind::Mux2 | CellKind::Xor3 | CellKind::Maj3 => 3,
                _ => 2,
            };
            assert_eq!(kind.arity(), expect, "{kind}");
        }
    }

    #[test]
    fn logic_classification() {
        assert!(!CellKind::Input.is_logic());
        assert!(!CellKind::Output.is_logic());
        assert!(!CellKind::Const0.is_logic());
        assert!(CellKind::Nand2.is_logic());
        assert!(CellKind::Dff.is_logic());
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Nand2.is_sequential());
    }

    #[test]
    fn display_roundtrip_names_unique() {
        let names: std::collections::HashSet<String> =
            CellKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), CellKind::ALL.len());
    }

    #[test]
    fn logic_conversions() {
        assert_eq!(Logic::from(true), One);
        assert_eq!(Logic::from(false), Zero);
        assert_eq!(One.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
        assert_eq!(Logic::default(), X);
        assert_eq!(format!("{Zero}{One}{X}"), "01X");
    }
}
