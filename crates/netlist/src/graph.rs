//! The netlist graph: cells, nets, builder, validation and traversal.

use std::collections::VecDeque;

use crate::{CellKind, NetlistError};

/// Identifier of a cell within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Identifier of a net within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl CellId {
    /// The cell's index into [`Netlist::cells`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NetId {
    /// The net's index into [`Netlist::nets`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// What the cell is.
    pub kind: CellKind,
    /// Instance name (used in diagnostics and reports).
    pub name: String,
    /// Input nets, in pin order (see [`CellKind`] for pin semantics).
    pub inputs: Vec<NetId>,
    /// The single net this cell drives.
    pub output: NetId,
}

/// One net: a single driver and any number of sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name (derived from the driving cell).
    pub name: String,
    /// The driving cell.
    pub driver: CellId,
}

/// An immutable, validated gate-level netlist.
///
/// Construct via [`NetlistBuilder`]; validation guarantees:
/// every net has exactly one driver, all pin arities match, and the
/// combinational core (ignoring DFF outputs) is acyclic.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    fanouts: Vec<Vec<CellId>>,
    topo: Vec<CellId>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells, indexable by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Cells whose inputs include `net` (the net's sinks).
    pub fn fanout(&self, net: NetId) -> &[CellId] {
        &self.fanouts[net.index()]
    }

    /// Primary-input pseudo-cells, in creation order.
    pub fn primary_inputs(&self) -> &[CellId] {
        &self.primary_inputs
    }

    /// Primary-output pseudo-cells, in creation order.
    pub fn primary_outputs(&self) -> &[CellId] {
        &self.primary_outputs
    }

    /// A topological order of all cells in which every cell appears
    /// after the drivers of its inputs, treating DFF outputs as
    /// sources (their value is state, not a combinational function).
    pub fn topo_order(&self) -> &[CellId] {
        &self.topo
    }

    /// Timing endpoints: `(endpoint cell, sampled net)` for every
    /// primary output and every DFF `D` pin, in cell order. This is
    /// the one definition of *observable* shared by static timing
    /// analysis (endpoint arrivals), lint (reachability from
    /// endpoints) and the simulators (where paths terminate).
    pub fn endpoints(&self) -> impl Iterator<Item = (CellId, NetId)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.kind, CellKind::Output | CellKind::Dff))
            .map(|(i, c)| (CellId(i as u32), c.inputs[0]))
    }

    /// Number of logic cells — the paper's `N` (gates + flip-flops;
    /// ports and constants excluded).
    pub fn logic_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_logic()).count()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_sequential()).count()
    }

    /// Per-cell logic mask, indexable by [`CellId`]: `true` for cells
    /// counted in the paper's `N`. Simulators that count transitions in
    /// their inner write path use this instead of re-classifying the
    /// [`CellKind`] on every event.
    pub fn logic_mask(&self) -> Vec<bool> {
        self.cells.iter().map(|c| c.kind.is_logic()).collect()
    }

    /// Iterator over `(CellId, &Cell)` of logic cells only.
    pub fn logic_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_logic())
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Histogram of cell kinds (for reports and structural tests).
    pub fn kind_histogram(&self) -> Vec<(CellKind, usize)> {
        let mut counts: Vec<(CellKind, usize)> = Vec::new();
        for kind in CellKind::ALL {
            let n = self.cells.iter().filter(|c| c.kind == kind).count();
            if n > 0 {
                counts.push((kind, n));
            }
        }
        counts
    }
}

/// Incremental builder for [`Netlist`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
    pending_error: Option<NetlistError>,
}

impl NetlistBuilder {
    /// Starts an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            pending_error: None,
        }
    }

    fn push_cell(&mut self, kind: CellKind, name: String, inputs: Vec<NetId>) -> NetId {
        // Forward net references are allowed here (sequential feedback
        // loops need them); existence is validated in `build`.
        if self.pending_error.is_none() && inputs.len() != kind.arity() {
            self.pending_error = Some(NetlistError::ArityMismatch {
                kind,
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        let cell_id = CellId(self.cells.len() as u32);
        let net_id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: format!("{name}__o"),
            driver: cell_id,
        });
        self.cells.push(Cell {
            kind,
            name,
            inputs,
            output: net_id,
        });
        net_id
    }

    /// Adds a primary input; returns the net it drives.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let net = self.push_cell(CellKind::Input, name.into(), Vec::new());
        let id = self.nets[net.index()].driver;
        self.primary_inputs.push(id);
        net
    }

    /// Adds a logic/constant cell with auto-generated instance name;
    /// returns its output net.
    ///
    /// Arity violations and dangling nets are recorded and reported by
    /// [`NetlistBuilder::build`] — intermediate calls stay infallible
    /// so generators can be written naturally.
    pub fn add_cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        let name = format!("{kind}_{}", self.cells.len());
        self.push_cell(kind, name, inputs.to_vec())
    }

    /// Adds a named logic/constant cell; returns its output net.
    pub fn add_named_cell(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
    ) -> NetId {
        self.push_cell(kind, name.into(), inputs.to_vec())
    }

    /// Marks `net` as a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> CellId {
        let out_net = self.push_cell(CellKind::Output, name.into(), vec![net]);
        let id = self.nets[out_net.index()].driver;
        self.primary_outputs.push(id);
        id
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell driving `net`. Cells and their output nets are created
    /// together, so this is a constant-time index identity.
    pub fn driver_of(&self, net: NetId) -> CellId {
        CellId(net.0)
    }

    /// Re-targets input pin `pin` of the cell driving `cell_output` to
    /// `net`. This is the supported way to close sequential feedback
    /// loops: create the DFF with a provisional input, build the logic
    /// that consumes its output, then rewire the D pin.
    ///
    /// # Panics
    ///
    /// Panics if `cell_output` does not name an existing cell or `pin`
    /// is out of range for it — both are generator logic errors.
    pub fn rewire(&mut self, cell_output: NetId, pin: usize, net: NetId) {
        let id = self.driver_of(cell_output);
        let cell = self
            .cells
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("rewire: no cell drives {cell_output:?}"));
        assert!(
            pin < cell.inputs.len(),
            "rewire: pin {pin} out of range for {} ({} pins)",
            cell.name,
            cell.inputs.len()
        );
        cell.inputs[pin] = net;
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// * any deferred [`NetlistError::ArityMismatch`] /
    ///   [`NetlistError::UnknownNet`] from construction,
    /// * [`NetlistError::Empty`] for a netlist with no cells,
    /// * [`NetlistError::CombinationalLoop`] if the DFF-broken graph
    ///   has no topological order.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        if self.cells.is_empty() {
            return Err(NetlistError::Empty);
        }
        // All referenced nets (including forward references) must exist.
        for cell in &self.cells {
            if let Some(&bad) = cell.inputs.iter().find(|n| n.index() >= self.nets.len()) {
                return Err(NetlistError::UnknownNet { net: bad });
            }
        }

        // Fanout lists.
        let mut fanouts: Vec<Vec<CellId>> = vec![Vec::new(); self.nets.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            for &input in &cell.inputs {
                fanouts[input.index()].push(CellId(i as u32));
            }
        }

        // Kahn's algorithm on the combinational graph: edges run from a
        // cell to the sinks of its output net, except that DFFs do not
        // propagate combinationally (their output is captured state, so
        // a DFF's D pin is not a dependency of its Q output).
        let n = self.cells.len();
        let mut indegree = vec![0usize; n];
        for (i, cell) in self.cells.iter().enumerate() {
            indegree[i] = cell
                .inputs
                .iter()
                .filter(|&&net| {
                    !self.cells[self.nets[net.index()].driver.index()]
                        .kind
                        .is_sequential()
                })
                .count();
        }

        let mut queue: VecDeque<CellId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| CellId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            topo.push(id);
            let cell = &self.cells[id.index()];
            if cell.kind.is_sequential() {
                continue; // edges out of a DFF are not combinational
            }
            for &sink in &fanouts[cell.output.index()] {
                indegree[sink.index()] -= 1;
                if indegree[sink.index()] == 0 {
                    queue.push_back(sink);
                }
            }
        }
        if topo.len() != n {
            let witness = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| CellId(i as u32))
                .expect("some cell must remain when topo is incomplete");
            return Err(NetlistError::CombinationalLoop { witness });
        }

        Ok(Netlist {
            name: self.name,
            cells: self.cells,
            nets: self.nets,
            fanouts,
            topo,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut b = NetlistBuilder::new("half_adder");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let s = b.add_cell(CellKind::Xor2, &[x, y]);
        let c = b.add_cell(CellKind::And2, &[x, y]);
        b.add_output("s", s);
        b.add_output("c", c);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_ports() {
        let nl = half_adder();
        assert_eq!(nl.logic_cell_count(), 2);
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 2);
        assert_eq!(nl.dff_count(), 0);
        assert_eq!(nl.name(), "half_adder");
    }

    #[test]
    fn logic_mask_matches_classification() {
        let nl = half_adder();
        let mask = nl.logic_mask();
        assert_eq!(mask.len(), nl.cells().len());
        for (i, cell) in nl.cells().iter().enumerate() {
            assert_eq!(mask[i], cell.kind.is_logic(), "{}", cell.name);
        }
        assert_eq!(mask.iter().filter(|&&m| m).count(), nl.logic_cell_count());
    }

    #[test]
    fn fanout_lists() {
        let nl = half_adder();
        let x_net = nl.cell(nl.primary_inputs()[0]).output;
        // x feeds both the XOR and the AND.
        assert_eq!(nl.fanout(x_net).len(), 2);
    }

    #[test]
    fn endpoints_are_outputs_and_dff_d_pins() {
        let nl = half_adder();
        let eps: Vec<_> = nl.endpoints().collect();
        // Two primary outputs, no flops.
        assert_eq!(eps.len(), 2);
        for (cell, net) in eps {
            assert_eq!(nl.cell(cell).kind, CellKind::Output);
            assert_eq!(nl.cell(cell).inputs[0], net);
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = half_adder();
        let pos = |id: CellId| {
            nl.topo_order()
                .iter()
                .position(|&c| c == id)
                .expect("cell must appear in topo order")
        };
        for (id, cell) in nl.cells().iter().enumerate() {
            for &input in &cell.inputs {
                let driver = nl.net(input).driver;
                if !nl.cell(driver).kind.is_sequential() {
                    assert!(
                        pos(driver) < pos(CellId(id as u32)),
                        "driver must precede sink"
                    );
                }
            }
        }
    }

    #[test]
    fn arity_error_is_deferred_to_build() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.add_input("x");
        let _ = b.add_cell(CellKind::And2, &[x]); // missing a pin
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_net_detected() {
        let mut b = NetlistBuilder::new("bad");
        let _ = b.add_input("x");
        let _ = b.add_cell(CellKind::Inv, &[NetId(99)]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { .. }));
    }

    #[test]
    fn empty_netlist_rejected() {
        let err = NetlistBuilder::new("empty").build().unwrap_err();
        assert_eq!(err, NetlistError::Empty);
    }

    #[test]
    fn combinational_loop_detected() {
        // inv1 -> inv2 -> inv1 (a ring oscillator) has no topo order.
        // Build it by wiring inv1's input to inv2's (future) output net:
        // we can't reference a future net, so create the loop with a
        // 2-phase trick: inv2 reads inv1, and we retarget via a cell
        // whose input is its own output — simplest: inv reading itself.
        let mut b = NetlistBuilder::new("loop");
        // Cell 0 will drive net 0; make it read net 0 (itself).
        let net = b.add_cell(CellKind::Buf, &[NetId(0)]);
        assert_eq!(net, NetId(0));
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn dff_breaks_loops() {
        // A DFF in a feedback loop (toggle flop: q -> inv -> d) is legal.
        let mut b = NetlistBuilder::new("toggle");
        // DFF first, reading a net that its own inverted output drives.
        // Build: dff (reads inv output), inv (reads dff output).
        // Order of creation: create dff reading a forward net is not
        // possible; instead create inv reading dff, then dff reading inv:
        // that also needs a forward ref. Use self-loop through DFF:
        // dff output -> inv -> (can't). Instead test: dff whose D is
        // driven by an inv fed by the dff's q, constructed via the
        // two-step builder on indices we know in advance.
        // Cell 0 = dff reads net 1 (inv output); cell 1 = inv reads net 0.
        let d_net = b.push_cell(CellKind::Dff, "t".into(), vec![NetId(1)]);
        let _ = b.push_cell(CellKind::Inv, "n".into(), vec![d_net]);
        let nl = b.build().expect("DFF feedback must be legal");
        assert_eq!(nl.dff_count(), 1);
    }

    #[test]
    fn kind_histogram_counts() {
        let nl = half_adder();
        let hist = nl.kind_histogram();
        let get = |k: CellKind| hist.iter().find(|(kk, _)| *kk == k).map(|(_, n)| *n);
        assert_eq!(get(CellKind::Xor2), Some(1));
        assert_eq!(get(CellKind::And2), Some(1));
        assert_eq!(get(CellKind::Input), Some(2));
        assert_eq!(get(CellKind::Nand2), None);
    }

    #[test]
    fn named_cells_keep_names() {
        let mut b = NetlistBuilder::new("n");
        let x = b.add_input("x");
        let y = b.add_named_cell(CellKind::Inv, "my_inv", &[x]);
        b.add_output("y", y);
        let nl = b.build().unwrap();
        assert!(nl.cells().iter().any(|c| c.name == "my_inv"));
    }
}
