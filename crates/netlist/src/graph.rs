//! The netlist graph: cells, nets, builder, validation and traversal.

use std::collections::VecDeque;

use crate::{CellKind, NetlistError};

/// Identifier of a cell within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Identifier of a net within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl CellId {
    /// The cell's index into [`Netlist::cells`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NetId {
    /// The net's index into [`Netlist::nets`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// What the cell is.
    pub kind: CellKind,
    /// Instance name (used in diagnostics and reports).
    pub name: String,
    /// Input nets, in pin order (see [`CellKind`] for pin semantics).
    pub inputs: Vec<NetId>,
    /// The single net this cell drives.
    pub output: NetId,
}

/// One net: a single driver and any number of sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name (derived from the driving cell).
    pub name: String,
    /// The driving cell.
    pub driver: CellId,
}

/// What a dead-cone prune removed, by cell class.
///
/// Produced by [`Netlist::prune_dead_cones`]; the *dead-logic
/// invariant* holds exactly when [`PruneStats::is_identity`] is true.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Cells before the prune (ports and constants included).
    pub cells_before: usize,
    /// Cells after the prune.
    pub cells_after: usize,
    /// Removed combinational logic cells (gates, the paper's `N` minus
    /// flip-flops).
    pub removed_logic: usize,
    /// Removed flip-flops.
    pub removed_dffs: usize,
}

impl PruneStats {
    /// Total cells removed (logic, flip-flops, ports, constants).
    pub fn removed(&self) -> usize {
        self.cells_before - self.cells_after
    }

    /// Whether the prune changed nothing — the netlist already
    /// satisfied the dead-logic invariant.
    pub fn is_identity(&self) -> bool {
        self.removed() == 0
    }
}

/// An immutable, validated gate-level netlist.
///
/// Construct via [`NetlistBuilder`]; validation guarantees:
/// every net has exactly one driver, all pin arities match, and the
/// combinational core (ignoring DFF outputs) is acyclic.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    fanouts: Vec<Vec<CellId>>,
    topo: Vec<CellId>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells, indexable by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Cells whose inputs include `net` (the net's sinks).
    pub fn fanout(&self, net: NetId) -> &[CellId] {
        &self.fanouts[net.index()]
    }

    /// Primary-input pseudo-cells, in creation order.
    pub fn primary_inputs(&self) -> &[CellId] {
        &self.primary_inputs
    }

    /// Primary-output pseudo-cells, in creation order.
    pub fn primary_outputs(&self) -> &[CellId] {
        &self.primary_outputs
    }

    /// A topological order of all cells in which every cell appears
    /// after the drivers of its inputs, treating DFF outputs as
    /// sources (their value is state, not a combinational function).
    pub fn topo_order(&self) -> &[CellId] {
        &self.topo
    }

    /// Timing endpoints: `(endpoint cell, sampled net)` for every
    /// primary output and every DFF `D` pin, in cell order. This is
    /// the one definition of *observable* shared by static timing
    /// analysis (endpoint arrivals), lint (reachability from
    /// endpoints) and the simulators (where paths terminate).
    pub fn endpoints(&self) -> impl Iterator<Item = (CellId, NetId)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.kind, CellKind::Output | CellKind::Dff))
            .map(|(i, c)| (CellId(i as u32), c.inputs[0]))
    }

    /// Number of logic cells — the paper's `N` (gates + flip-flops;
    /// ports and constants excluded).
    pub fn logic_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_logic()).count()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_sequential()).count()
    }

    /// Per-cell logic mask, indexable by [`CellId`]: `true` for cells
    /// counted in the paper's `N`. Simulators that count transitions in
    /// their inner write path use this instead of re-classifying the
    /// [`CellKind`] on every event.
    pub fn logic_mask(&self) -> Vec<bool> {
        self.cells.iter().map(|c| c.kind.is_logic()).collect()
    }

    /// Iterator over `(CellId, &Cell)` of logic cells only.
    pub fn logic_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_logic())
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Removes every *sink-less cone*: cells from which no primary
    /// output is reachable through input-pin edges, with flip-flops
    /// traversed transparently (a live DFF keeps its whole `D` cone).
    /// This is the reverse walk the L001 lint rule performs from
    /// [`Netlist::endpoints`], so a pruned netlist lints clean of
    /// unreachable-cell (L001) and floating-net (L002) diagnostics —
    /// the repo's *dead-logic invariant*. Primary inputs are always
    /// kept: the module interface is part of the contract even when a
    /// pin is unused.
    ///
    /// The live cone — every cell, net and pin that can influence a
    /// primary output in any cycle — is untouched (only ids are
    /// renumbered, names are preserved), so simulated output values
    /// and endpoint transition counts are bit-identical, and the pass
    /// is idempotent: pruning a pruned netlist removes nothing.
    ///
    /// Returns the pruned netlist and removal statistics. Generators
    /// should prefer [`NetlistBuilder::build_pruned`], which computes
    /// the same result without building the dead cells' fanout and
    /// topological structures first.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CombinationalLoop`] cannot actually occur
    /// (pruning a DAG subset stays acyclic) but the rebuild shares
    /// the validating constructor, so the signature is fallible.
    pub fn prune_dead_cones(&self) -> Result<(Netlist, PruneStats), NetlistError> {
        let live = live_mask(&self.cells);
        let dead = |pred: &dyn Fn(&Cell) -> bool| {
            self.cells
                .iter()
                .enumerate()
                .filter(|&(i, c)| !live[i] && pred(c))
                .count()
        };
        let stats = PruneStats {
            cells_before: self.cells.len(),
            cells_after: live.iter().filter(|&&l| l).count(),
            removed_logic: dead(&|c| c.kind.is_logic() && !c.kind.is_sequential()),
            removed_dffs: dead(&|c| c.kind.is_sequential()),
        };
        if stats.is_identity() {
            return Ok((self.clone(), stats));
        }
        let (cells, nets, primary_inputs, primary_outputs) = compact(
            self.cells.clone(),
            self.nets.clone(),
            self.primary_inputs.clone(),
            self.primary_outputs.clone(),
            &live,
            // A frozen netlist no longer carries the builder's
            // forward-edge flag; assume the worst. This path is not
            // build-time critical.
            true,
        );
        let pruned = finalize(
            self.name.clone(),
            cells,
            nets,
            primary_inputs,
            primary_outputs,
        )?;
        Ok((pruned, stats))
    }

    /// Histogram of cell kinds (for reports and structural tests).
    pub fn kind_histogram(&self) -> Vec<(CellKind, usize)> {
        let mut counts: Vec<(CellKind, usize)> = Vec::new();
        for kind in CellKind::ALL {
            let n = self.cells.iter().filter(|c| c.kind == kind).count();
            if n > 0 {
                counts.push((kind, n));
            }
        }
        counts
    }
}

/// Incremental builder for [`Netlist`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
    pending_error: Option<NetlistError>,
    /// Whether any pin references a net at or past its own cell — set
    /// by feedback `rewire`s (and fabricated forward ids); lets the
    /// prune compaction skip work in the common feed-forward case.
    has_forward_edges: bool,
}

impl NetlistBuilder {
    /// Starts an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            pending_error: None,
            has_forward_edges: false,
        }
    }

    fn push_cell(&mut self, kind: CellKind, name: String, inputs: Vec<NetId>) -> NetId {
        // Forward net references are allowed here (sequential feedback
        // loops need them); existence is validated in `build`.
        if self.pending_error.is_none() && inputs.len() != kind.arity() {
            self.pending_error = Some(NetlistError::ArityMismatch {
                kind,
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        let cell_id = CellId(self.cells.len() as u32);
        let net_id = NetId(self.nets.len() as u32);
        if inputs.iter().any(|n| n.0 >= net_id.0) {
            self.has_forward_edges = true;
        }
        self.nets.push(Net {
            name: format!("{name}__o"),
            driver: cell_id,
        });
        self.cells.push(Cell {
            kind,
            name,
            inputs,
            output: net_id,
        });
        net_id
    }

    /// Adds a primary input; returns the net it drives.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let net = self.push_cell(CellKind::Input, name.into(), Vec::new());
        let id = self.nets[net.index()].driver;
        self.primary_inputs.push(id);
        net
    }

    /// Adds a logic/constant cell with auto-generated instance name;
    /// returns its output net.
    ///
    /// Arity violations and dangling nets are recorded and reported by
    /// [`NetlistBuilder::build`] — intermediate calls stay infallible
    /// so generators can be written naturally.
    pub fn add_cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        let name = format!("{kind}_{}", self.cells.len());
        self.push_cell(kind, name, inputs.to_vec())
    }

    /// Adds a named logic/constant cell; returns its output net.
    pub fn add_named_cell(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
    ) -> NetId {
        self.push_cell(kind, name.into(), inputs.to_vec())
    }

    /// Marks `net` as a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> CellId {
        let out_net = self.push_cell(CellKind::Output, name.into(), vec![net]);
        let id = self.nets[out_net.index()].driver;
        self.primary_outputs.push(id);
        id
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell driving `net`. Cells and their output nets are created
    /// together, so this is a constant-time index identity.
    pub fn driver_of(&self, net: NetId) -> CellId {
        CellId(net.0)
    }

    /// Re-targets input pin `pin` of the cell driving `cell_output` to
    /// `net`. This is the supported way to close sequential feedback
    /// loops: create the DFF with a provisional input, build the logic
    /// that consumes its output, then rewire the D pin.
    ///
    /// # Panics
    ///
    /// Panics if `cell_output` does not name an existing cell or `pin`
    /// is out of range for it — both are generator logic errors.
    pub fn rewire(&mut self, cell_output: NetId, pin: usize, net: NetId) {
        let id = self.driver_of(cell_output);
        let cell = self
            .cells
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("rewire: no cell drives {cell_output:?}"));
        assert!(
            pin < cell.inputs.len(),
            "rewire: pin {pin} out of range for {} ({} pins)",
            cell.name,
            cell.inputs.len()
        );
        if net.0 >= cell_output.0 {
            self.has_forward_edges = true;
        }
        cell.inputs[pin] = net;
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// * any deferred [`NetlistError::ArityMismatch`] /
    ///   [`NetlistError::UnknownNet`] from construction,
    /// * [`NetlistError::Empty`] for a netlist with no cells,
    /// * [`NetlistError::CombinationalLoop`] if the DFF-broken graph
    ///   has no topological order.
    pub fn build(mut self) -> Result<Netlist, NetlistError> {
        self.validate()?;
        finalize(
            self.name,
            self.cells,
            self.nets,
            self.primary_inputs,
            self.primary_outputs,
        )
    }

    /// Validates, prunes every sink-less cone, and freezes the netlist.
    ///
    /// Identical to [`NetlistBuilder::build`] except that cells from
    /// which no primary output is reachable (flip-flops traversed
    /// transparently through their `D` pins) are dropped *before* the
    /// fanout lists and topological order are constructed, so pruning
    /// costs one extra reverse walk rather than a second build. Ports
    /// are always kept. The result satisfies the dead-logic invariant
    /// described on [`Netlist::prune_dead_cones`].
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::build`]; validation runs on the
    /// unpruned netlist, so a dead cone does not hide its own errors.
    pub fn build_pruned(mut self) -> Result<Netlist, NetlistError> {
        self.validate()?;
        let live = live_mask(&self.cells);
        let (cells, nets, primary_inputs, primary_outputs) = if live.iter().all(|&l| l) {
            (
                self.cells,
                self.nets,
                self.primary_inputs,
                self.primary_outputs,
            )
        } else {
            compact(
                self.cells,
                self.nets,
                self.primary_inputs,
                self.primary_outputs,
                &live,
                self.has_forward_edges,
            )
        };
        finalize(self.name, cells, nets, primary_inputs, primary_outputs)
    }

    /// The deferred-error / emptiness / dangling-net checks shared by
    /// [`NetlistBuilder::build`] and [`NetlistBuilder::build_pruned`].
    fn validate(&mut self) -> Result<(), NetlistError> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        if self.cells.is_empty() {
            return Err(NetlistError::Empty);
        }
        // All referenced nets (including forward references) must exist.
        for cell in &self.cells {
            if let Some(&bad) = cell.inputs.iter().find(|n| n.index() >= self.nets.len()) {
                return Err(NetlistError::UnknownNet { net: bad });
            }
        }
        Ok(())
    }
}

/// Builds the derived structures (fanout lists, topological order) and
/// freezes validated cell/net vectors into a [`Netlist`].
fn finalize(
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
) -> Result<Netlist, NetlistError> {
    // Fanout lists.
    let mut fanouts: Vec<Vec<CellId>> = vec![Vec::new(); nets.len()];
    for (i, cell) in cells.iter().enumerate() {
        for &input in &cell.inputs {
            fanouts[input.index()].push(CellId(i as u32));
        }
    }

    // Kahn's algorithm on the combinational graph: edges run from a
    // cell to the sinks of its output net, except that DFFs do not
    // propagate combinationally (their output is captured state, so
    // a DFF's D pin is not a dependency of its Q output).
    let n = cells.len();
    let mut indegree = vec![0usize; n];
    for (i, cell) in cells.iter().enumerate() {
        indegree[i] = cell
            .inputs
            .iter()
            .filter(|&&net| !cells[nets[net.index()].driver.index()].kind.is_sequential())
            .count();
    }

    let mut queue: VecDeque<CellId> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| CellId(i as u32))
        .collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        topo.push(id);
        let cell = &cells[id.index()];
        if cell.kind.is_sequential() {
            continue; // edges out of a DFF are not combinational
        }
        for &sink in &fanouts[cell.output.index()] {
            indegree[sink.index()] -= 1;
            if indegree[sink.index()] == 0 {
                queue.push_back(sink);
            }
        }
    }
    if topo.len() != n {
        let witness = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(|i| CellId(i as u32))
            .expect("some cell must remain when topo is incomplete");
        return Err(NetlistError::CombinationalLoop { witness });
    }

    Ok(Netlist {
        name,
        cells,
        nets,
        fanouts,
        topo,
        primary_inputs,
        primary_outputs,
    })
}

/// `live[i]` is true when cell `i` reaches a primary output through
/// input pins (flip-flops traversed transparently — a live DFF keeps
/// its whole D-cone), or is a port cell. This is the same reverse walk
/// the L001 lint rule performs from [`Netlist::endpoints`]: a cell the
/// walk never reaches can influence no primary output in any cycle, so
/// removing it cannot change any observable value.
///
/// Output cells seed the walk; Input cells are kept unconditionally
/// (the module interface is part of the contract) but seed nothing, so
/// logic hanging off an otherwise-unused input is still pruned.
fn live_mask(cells: &[Cell]) -> Vec<bool> {
    // Cells and their output nets are index-aligned pairs (`push_cell`),
    // so the driver of net `pin` is cell `pin` — the walk never has to
    // load the net table at all.
    debug_assert!(
        cells.iter().enumerate().all(|(i, c)| c.output.index() == i),
        "cell/net pairing violated before liveness walk"
    );
    let mut live = vec![false; cells.len()];
    let mut stack: Vec<usize> = Vec::new();
    // One reverse sweep seeds the ports and resolves every backward
    // edge (generators build mostly feed-forward, pins referencing
    // earlier cells); a pin at or past the sweep position — a `rewire`
    // feedback patch — was already visited, so it spills onto a DFS
    // stack instead.
    for i in (0..cells.len()).rev() {
        let cell = &cells[i];
        match cell.kind {
            CellKind::Input => {
                live[i] = true;
                continue;
            }
            CellKind::Output => live[i] = true,
            _ if !live[i] => continue,
            _ => {}
        }
        for &pin in &cell.inputs {
            let driver = pin.index();
            if !live[driver] {
                live[driver] = true;
                if driver >= i {
                    stack.push(driver);
                }
            }
        }
    }
    while let Some(i) = stack.pop() {
        for &pin in &cells[i].inputs {
            let driver = pin.index();
            if !live[driver] {
                live[driver] = true;
                stack.push(driver);
            }
        }
    }
    live
}

/// Drops every dead cell/net pair and renumbers the survivors.
///
/// Cells and their output nets are created as index-aligned pairs
/// (`push_cell`), so one rank map renumbers both id spaces; the
/// pairing (`driver_of` identity) is preserved in the output. Every
/// net referenced by a live cell has a live driver (the walk marked
/// it), and every port is live, so all remaps are defined.
fn compact(
    mut cells: Vec<Cell>,
    mut nets: Vec<Net>,
    mut primary_inputs: Vec<CellId>,
    mut primary_outputs: Vec<CellId>,
    live: &[bool],
    has_forward_edges: bool,
) -> (Vec<Cell>, Vec<Net>, Vec<CellId>, Vec<CellId>) {
    debug_assert!(
        cells.iter().enumerate().all(|(i, c)| c.output.index() == i),
        "cell/net pairing violated before compaction"
    );
    // Ids before the first dead cell are unchanged, so only the tail
    // needs a rank map and shifting — in the generators the dead cells
    // sit in the late reduction/adder stages, which keeps this pass
    // inside the build-time budget (the `prune_build_wallace16` bench
    // row, `speedup_min >= 0.95`).
    let first_dead = live.iter().position(|&l| !l).unwrap_or(cells.len());
    let mut new_id = vec![u32::MAX; cells.len() - first_dead];
    let mut next = first_dead as u32;
    for (i, &keep) in live[first_dead..].iter().enumerate() {
        if keep {
            new_id[i] = next;
            next += 1;
        }
    }
    let remap = |ix: u32| -> u32 {
        if (ix as usize) < first_dead {
            ix
        } else {
            new_id[ix as usize - first_dead]
        }
    };
    // Prefix cells keep their ids and (by pairing) their output nets;
    // only input pins that forward-reference the renumbered tail (a
    // feedback `rewire`) can need rewriting, so the whole scan is
    // skipped when the builder never created a forward edge.
    if has_forward_edges {
        for cell in &mut cells[..first_dead] {
            for pin in &mut cell.inputs {
                *pin = NetId(remap(pin.0));
            }
        }
    }
    // Tail survivors shift down in place; a cell landing at position
    // `p` drives net `p` (the pairing is preserved), so outputs and
    // drivers come straight from the position counter and only input
    // pins go through the rank map.
    let tail_cells = cells.split_off(first_dead);
    for (j, mut cell) in tail_cells.into_iter().enumerate() {
        if live[first_dead + j] {
            for pin in &mut cell.inputs {
                *pin = NetId(remap(pin.0));
            }
            cell.output = NetId(cells.len() as u32);
            cells.push(cell);
        }
    }
    let tail_nets = nets.split_off(first_dead);
    for (j, mut net) in tail_nets.into_iter().enumerate() {
        if live[first_dead + j] {
            net.driver = CellId(nets.len() as u32);
            nets.push(net);
        }
    }
    for id in primary_inputs.iter_mut().chain(primary_outputs.iter_mut()) {
        *id = CellId(remap(id.0));
    }
    (cells, nets, primary_inputs, primary_outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut b = NetlistBuilder::new("half_adder");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let s = b.add_cell(CellKind::Xor2, &[x, y]);
        let c = b.add_cell(CellKind::And2, &[x, y]);
        b.add_output("s", s);
        b.add_output("c", c);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_ports() {
        let nl = half_adder();
        assert_eq!(nl.logic_cell_count(), 2);
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 2);
        assert_eq!(nl.dff_count(), 0);
        assert_eq!(nl.name(), "half_adder");
    }

    #[test]
    fn logic_mask_matches_classification() {
        let nl = half_adder();
        let mask = nl.logic_mask();
        assert_eq!(mask.len(), nl.cells().len());
        for (i, cell) in nl.cells().iter().enumerate() {
            assert_eq!(mask[i], cell.kind.is_logic(), "{}", cell.name);
        }
        assert_eq!(mask.iter().filter(|&&m| m).count(), nl.logic_cell_count());
    }

    #[test]
    fn fanout_lists() {
        let nl = half_adder();
        let x_net = nl.cell(nl.primary_inputs()[0]).output;
        // x feeds both the XOR and the AND.
        assert_eq!(nl.fanout(x_net).len(), 2);
    }

    #[test]
    fn endpoints_are_outputs_and_dff_d_pins() {
        let nl = half_adder();
        let eps: Vec<_> = nl.endpoints().collect();
        // Two primary outputs, no flops.
        assert_eq!(eps.len(), 2);
        for (cell, net) in eps {
            assert_eq!(nl.cell(cell).kind, CellKind::Output);
            assert_eq!(nl.cell(cell).inputs[0], net);
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = half_adder();
        let pos = |id: CellId| {
            nl.topo_order()
                .iter()
                .position(|&c| c == id)
                .expect("cell must appear in topo order")
        };
        for (id, cell) in nl.cells().iter().enumerate() {
            for &input in &cell.inputs {
                let driver = nl.net(input).driver;
                if !nl.cell(driver).kind.is_sequential() {
                    assert!(
                        pos(driver) < pos(CellId(id as u32)),
                        "driver must precede sink"
                    );
                }
            }
        }
    }

    #[test]
    fn arity_error_is_deferred_to_build() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.add_input("x");
        let _ = b.add_cell(CellKind::And2, &[x]); // missing a pin
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_net_detected() {
        let mut b = NetlistBuilder::new("bad");
        let _ = b.add_input("x");
        let _ = b.add_cell(CellKind::Inv, &[NetId(99)]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { .. }));
    }

    #[test]
    fn empty_netlist_rejected() {
        let err = NetlistBuilder::new("empty").build().unwrap_err();
        assert_eq!(err, NetlistError::Empty);
    }

    #[test]
    fn combinational_loop_detected() {
        // inv1 -> inv2 -> inv1 (a ring oscillator) has no topo order.
        // Build it by wiring inv1's input to inv2's (future) output net:
        // we can't reference a future net, so create the loop with a
        // 2-phase trick: inv2 reads inv1, and we retarget via a cell
        // whose input is its own output — simplest: inv reading itself.
        let mut b = NetlistBuilder::new("loop");
        // Cell 0 will drive net 0; make it read net 0 (itself).
        let net = b.add_cell(CellKind::Buf, &[NetId(0)]);
        assert_eq!(net, NetId(0));
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn dff_breaks_loops() {
        // A DFF in a feedback loop (toggle flop: q -> inv -> d) is legal.
        let mut b = NetlistBuilder::new("toggle");
        // DFF first, reading a net that its own inverted output drives.
        // Build: dff (reads inv output), inv (reads dff output).
        // Order of creation: create dff reading a forward net is not
        // possible; instead create inv reading dff, then dff reading inv:
        // that also needs a forward ref. Use self-loop through DFF:
        // dff output -> inv -> (can't). Instead test: dff whose D is
        // driven by an inv fed by the dff's q, constructed via the
        // two-step builder on indices we know in advance.
        // Cell 0 = dff reads net 1 (inv output); cell 1 = inv reads net 0.
        let d_net = b.push_cell(CellKind::Dff, "t".into(), vec![NetId(1)]);
        let _ = b.push_cell(CellKind::Inv, "n".into(), vec![d_net]);
        let nl = b.build().expect("DFF feedback must be legal");
        assert_eq!(nl.dff_count(), 1);
    }

    #[test]
    fn kind_histogram_counts() {
        let nl = half_adder();
        let hist = nl.kind_histogram();
        let get = |k: CellKind| hist.iter().find(|(kk, _)| *kk == k).map(|(_, n)| *n);
        assert_eq!(get(CellKind::Xor2), Some(1));
        assert_eq!(get(CellKind::And2), Some(1));
        assert_eq!(get(CellKind::Input), Some(2));
        assert_eq!(get(CellKind::Nand2), None);
    }

    #[test]
    fn named_cells_keep_names() {
        let mut b = NetlistBuilder::new("n");
        let x = b.add_input("x");
        let y = b.add_named_cell(CellKind::Inv, "my_inv", &[x]);
        b.add_output("y", y);
        let nl = b.build().unwrap();
        assert!(nl.cells().iter().any(|c| c.name == "my_inv"));
    }

    /// Half adder plus a dead XOR/INV cone hanging off the inputs.
    fn half_adder_with_dead_cone() -> NetlistBuilder {
        let mut b = NetlistBuilder::new("ha_dead");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let s = b.add_cell(CellKind::Xor2, &[x, y]);
        let c = b.add_cell(CellKind::And2, &[x, y]);
        let dead = b.add_named_cell(CellKind::Xor2, "dead_root", &[x, y]);
        let _ = b.add_named_cell(CellKind::Inv, "dead_leaf", &[dead]);
        b.add_output("s", s);
        b.add_output("c", c);
        b
    }

    #[test]
    fn build_pruned_removes_dead_cone() {
        let nl = half_adder_with_dead_cone().build_pruned().unwrap();
        assert_eq!(nl.logic_cell_count(), 2);
        assert!(nl.cells().iter().all(|c| !c.name.starts_with("dead_")));
        // Survivors keep their names; ids are compact and consistent.
        assert!(nl.cells().iter().any(|c| c.kind == CellKind::Xor2));
        for (i, cell) in nl.cells().iter().enumerate() {
            assert_eq!(cell.output.index(), i, "cell/net pairing preserved");
            assert_eq!(nl.net(cell.output).driver, CellId(i as u32));
        }
        // Both ports survive even though the walk starts at outputs only.
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 2);
    }

    #[test]
    fn prune_dead_cones_matches_build_pruned() {
        let builder = half_adder_with_dead_cone();
        let raw = builder.clone().build().unwrap();
        let (pruned, stats) = raw.prune_dead_cones().unwrap();
        let direct = builder.build_pruned().unwrap();
        assert_eq!(pruned.cells(), direct.cells());
        assert_eq!(pruned.nets(), direct.nets());
        assert_eq!(stats.cells_before, raw.cells().len());
        assert_eq!(stats.cells_after, pruned.cells().len());
        assert_eq!(stats.removed(), 2);
        assert_eq!(stats.removed_logic, 2);
        assert_eq!(stats.removed_dffs, 0);
    }

    #[test]
    fn prune_is_idempotent_and_identity_on_clean_netlists() {
        let clean = half_adder();
        let (same, stats) = clean.prune_dead_cones().unwrap();
        assert!(stats.is_identity());
        assert_eq!(same.cells(), clean.cells());

        let (pruned, _) = half_adder_with_dead_cone()
            .build()
            .unwrap()
            .prune_dead_cones()
            .unwrap();
        let (again, stats2) = pruned.prune_dead_cones().unwrap();
        assert!(stats2.is_identity());
        assert_eq!(again.cells(), pruned.cells());
    }

    #[test]
    fn prune_removes_dangling_dff_but_keeps_live_dff_cone() {
        let mut b = NetlistBuilder::new("flops");
        let x = b.add_input("x");
        // Live flop: its Q reaches an output, so its D-cone (the INV)
        // must survive the transparent traversal.
        let inv = b.add_cell(CellKind::Inv, &[x]);
        let q = b.add_named_cell(CellKind::Dff, "live_ff", &[inv]);
        b.add_output("q", q);
        // Dead flop: Q never read, so the DFF and its private AND die.
        let g = b.add_named_cell(CellKind::And2, "dead_and", &[x, q]);
        let _ = b.add_named_cell(CellKind::Dff, "dead_ff", &[g]);
        let raw = b.clone().build().unwrap();
        let (pruned, stats) = raw.prune_dead_cones().unwrap();
        assert_eq!(stats.removed_dffs, 1);
        assert_eq!(stats.removed_logic, 1);
        assert_eq!(pruned.dff_count(), 1);
        assert!(pruned.cells().iter().any(|c| c.name == "live_ff"));
        assert!(pruned.cells().iter().any(|c| c.kind == CellKind::Inv));
        assert!(pruned.cells().iter().all(|c| !c.name.starts_with("dead_")));
        let direct = b.build_pruned().unwrap();
        assert_eq!(direct.cells(), pruned.cells());
    }

    #[test]
    fn build_pruned_still_reports_construction_errors() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.add_input("x");
        let _ = b.add_cell(CellKind::And2, &[x]); // dead AND, but bad arity
        let err = b.build_pruned().unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }
}
