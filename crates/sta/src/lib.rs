#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod glitch;
mod lint;

pub use analysis::{PathReport, TimingAnalysis};
pub use glitch::GlitchProfile;
pub use lint::{Diagnostic, LintReport, LintRule, Severity};
