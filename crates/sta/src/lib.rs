//! Static timing analysis over `optpower-netlist` designs.
//!
//! Computes the paper's *logical depth* (`LD`): the critical-path
//! length in normalised gate units (inverter = 1) between timing
//! start points (primary inputs, DFF outputs, constants) and timing
//! endpoints (primary outputs, DFF `D` pins).
//!
//! Also exposes the **path-delay spread** statistics that explain the
//! paper's horizontal-vs-diagonal pipeline observation: a larger
//! spread of arrival times at a cell's inputs produces more glitches,
//! i.e. higher activity (Section 4).
//!
//! # Examples
//!
//! ```
//! use optpower_netlist::{CellKind, Library, NetlistBuilder};
//! use optpower_sta::TimingAnalysis;
//!
//! // Two inverters in series: depth 2 gate units.
//! let mut b = NetlistBuilder::new("chain");
//! let x = b.add_input("x0");
//! let n1 = b.add_cell(CellKind::Inv, &[x]);
//! let n2 = b.add_cell(CellKind::Inv, &[n1]);
//! b.add_output("y0", n2);
//! let nl = b.build()?;
//! let sta = TimingAnalysis::analyze(&nl, &Library::cmos13());
//! assert_eq!(sta.logical_depth(), 2.0);
//! # Ok::<(), optpower_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;

pub use analysis::{PathReport, TimingAnalysis};
