//! Arrival-time propagation and path statistics.

use optpower_netlist::{CellId, CellKind, Library, NetId, Netlist};

/// A reported timing path (for diagnostics and the Figure 3/4 report).
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// Cells along the path, start point first.
    pub cells: Vec<CellId>,
    /// Path length in gate units.
    pub length: f64,
}

/// The result of one static timing analysis.
///
/// Arrival times are measured in normalised gate units from the cycle
/// edge. Start points (primary inputs, constants, DFF outputs) arrive
/// at `0`; every combinational cell adds its library delay.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    max_arrival: Vec<f64>,
    min_arrival: Vec<f64>,
    logical_depth: f64,
    shortest_endpoint_path: f64,
    mean_input_skew: f64,
    critical_endpoint: Option<CellId>,
}

impl TimingAnalysis {
    /// Runs the analysis. Single topological pass; `O(cells + pins)`.
    pub fn analyze(netlist: &Netlist, library: &Library) -> Self {
        let n_nets = netlist.nets().len();
        let mut max_arrival = vec![0.0f64; n_nets];
        let mut min_arrival = vec![0.0f64; n_nets];

        let mut skew_sum = 0.0f64;
        let mut skew_cells = 0usize;

        for &id in netlist.topo_order() {
            let cell = netlist.cell(id);
            let out = cell.output.index();
            match cell.kind {
                // Timing start points: arrive at the cycle edge.
                CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff => {
                    max_arrival[out] = 0.0;
                    min_arrival[out] = 0.0;
                }
                // Output markers are transparent.
                CellKind::Output => {
                    let i = cell.inputs[0].index();
                    max_arrival[out] = max_arrival[i];
                    min_arrival[out] = min_arrival[i];
                }
                _ => {
                    let d = library.delay(cell.kind);
                    let mut in_max = 0.0f64;
                    let mut in_min = f64::INFINITY;
                    for &pin in &cell.inputs {
                        in_max = in_max.max(max_arrival[pin.index()]);
                        in_min = in_min.min(min_arrival[pin.index()]);
                    }
                    if cell.inputs.len() >= 2 {
                        skew_sum += in_max - in_min;
                        skew_cells += 1;
                    }
                    max_arrival[out] = in_max + d;
                    min_arrival[out] = in_min + d;
                }
            }
        }

        // Endpoints: primary outputs and DFF D pins.
        let mut logical_depth = 0.0f64;
        let mut shortest = f64::INFINITY;
        let mut critical_endpoint = None;
        let mut consider = |net: NetId, endpoint: CellId| {
            let a = max_arrival[net.index()];
            if a > logical_depth {
                logical_depth = a;
                critical_endpoint = Some(endpoint);
            }
            shortest = shortest.min(min_arrival[net.index()]);
        };
        for (i, cell) in netlist.cells().iter().enumerate() {
            match cell.kind {
                CellKind::Output | CellKind::Dff => {
                    consider(cell.inputs[0], CellId(i as u32));
                }
                _ => {}
            }
        }
        if !shortest.is_finite() {
            shortest = 0.0;
        }

        Self {
            max_arrival,
            min_arrival,
            logical_depth,
            shortest_endpoint_path: shortest,
            mean_input_skew: if skew_cells > 0 {
                skew_sum / skew_cells as f64
            } else {
                0.0
            },
            critical_endpoint,
        }
    }

    /// The paper's logical depth `LD`: the longest start-to-endpoint
    /// combinational path in gate units.
    pub fn logical_depth(&self) -> f64 {
        self.logical_depth
    }

    /// The shortest endpoint path (lower bound of the path spread).
    pub fn shortest_endpoint_path(&self) -> f64 {
        self.shortest_endpoint_path
    }

    /// `LD − shortest path`: the global path-delay spread. Larger
    /// spread ⇒ more glitch-prone (Section 4's diagonal-pipeline
    /// observation).
    pub fn path_spread(&self) -> f64 {
        self.logical_depth - self.shortest_endpoint_path
    }

    /// Mean over multi-input cells of (latest − earliest input
    /// arrival): a local glitch-proneness measure.
    pub fn mean_input_skew(&self) -> f64 {
        self.mean_input_skew
    }

    /// Latest arrival time of a net.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.max_arrival[net.index()]
    }

    /// Earliest arrival time of a net.
    pub fn min_arrival(&self, net: NetId) -> f64 {
        self.min_arrival[net.index()]
    }

    /// The endpoint cell of the critical path, if any combinational
    /// path exists.
    pub fn critical_endpoint(&self) -> Option<CellId> {
        self.critical_endpoint
    }

    /// Histogram of endpoint arrival times in `bins` uniform bins over
    /// `[0, logical_depth]`. The spread of this histogram is the
    /// glitch-proneness picture behind the paper's diagonal-pipeline
    /// observation: a wide histogram means wildly unbalanced paths.
    ///
    /// Returns an all-zero histogram for a netlist with no endpoints
    /// or zero depth.
    pub fn arrival_histogram(&self, netlist: &Netlist, bins: usize) -> Vec<usize> {
        let bins = bins.max(1);
        let mut hist = vec![0usize; bins];
        if self.logical_depth <= 0.0 {
            return hist;
        }
        for cell in netlist.cells() {
            let net = match cell.kind {
                CellKind::Output | CellKind::Dff => cell.inputs[0],
                _ => continue,
            };
            let a = self.max_arrival[net.index()];
            let ix = ((a / self.logical_depth) * bins as f64) as usize;
            hist[ix.min(bins - 1)] += 1;
        }
        hist
    }

    /// Reconstructs the critical path by walking back along
    /// worst-arrival pins from the critical endpoint.
    pub fn critical_path(&self, netlist: &Netlist, library: &Library) -> Option<PathReport> {
        let endpoint = self.critical_endpoint?;
        let mut cells = vec![endpoint];
        let mut current = netlist.cell(endpoint).inputs[0];
        loop {
            let driver = netlist.net(current).driver;
            cells.push(driver);
            let cell = netlist.cell(driver);
            let is_start = matches!(
                cell.kind,
                CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff
            );
            if is_start || cell.inputs.is_empty() {
                break;
            }
            // Follow the latest-arriving input.
            let d = library.delay(cell.kind);
            let target = self.max_arrival[cell.output.index()] - d;
            current = *cell
                .inputs
                .iter()
                .max_by(|a, b| {
                    self.max_arrival[a.index()]
                        .partial_cmp(&self.max_arrival[b.index()])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-start cells have inputs");
            debug_assert!(self.max_arrival[current.index()] <= target + 1e-9);
        }
        cells.reverse();
        Some(PathReport {
            cells,
            length: self.logical_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    #[test]
    fn chain_depth_is_sum_of_delays() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("chain");
        let x = b.add_input("x0");
        let n1 = b.add_cell(CellKind::Xor2, &[x, x]);
        let n2 = b.add_cell(CellKind::Nand2, &[n1, x]);
        b.add_output("y0", n2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let expect = lib.delay(CellKind::Xor2) + lib.delay(CellKind::Nand2);
        assert!((sta.logical_depth() - expect).abs() < 1e-12);
    }

    #[test]
    fn dff_cuts_paths() {
        // in -> inv -> DFF -> inv -> out: depth is max(1, 1) = 1 inv,
        // not 2 (the flop restarts timing).
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("cut");
        let x = b.add_input("x0");
        let n1 = b.add_cell(CellKind::Inv, &[x]);
        let q = b.add_cell(CellKind::Dff, &[n1]);
        let n2 = b.add_cell(CellKind::Inv, &[q]);
        b.add_output("y0", n2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert!((sta.logical_depth() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_tree_has_zero_skew() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("bal");
        let i0 = b.add_input("a0");
        let i1 = b.add_input("a1");
        let i2 = b.add_input("a2");
        let i3 = b.add_input("a3");
        let l = b.add_cell(CellKind::And2, &[i0, i1]);
        let r = b.add_cell(CellKind::And2, &[i2, i3]);
        let top = b.add_cell(CellKind::And2, &[l, r]);
        b.add_output("y0", top);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert!(sta.mean_input_skew().abs() < 1e-12);
        assert!(sta.path_spread().abs() < 1e-12);
    }

    #[test]
    fn unbalanced_chain_has_skew() {
        // XOR(x, buf(buf(x))): input skew = 2 buffer delays.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("skew");
        let x = b.add_input("x0");
        let d1 = b.add_cell(CellKind::Buf, &[x]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[x, d2]);
        b.add_output("y0", s);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert!((sta.mean_input_skew() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_reconstruction() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("cp");
        let x = b.add_input("x0");
        let y = b.add_input("x1");
        let slow1 = b.add_cell(CellKind::Xor2, &[x, y]);
        let slow2 = b.add_cell(CellKind::Xor2, &[slow1, y]);
        let fast = b.add_cell(CellKind::Inv, &[x]);
        let top = b.add_cell(CellKind::And2, &[slow2, fast]);
        b.add_output("y0", top);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let path = sta.critical_path(&nl, &lib).unwrap();
        // Path: input -> xor -> xor -> and -> output = 5 cells listed.
        assert_eq!(path.cells.len(), 5);
        assert!((path.length - sta.logical_depth()).abs() < 1e-12);
        // The slow XORs are on it; the fast inverter is not.
        let kinds: Vec<CellKind> = path.cells.iter().map(|&c| nl.cell(c).kind).collect();
        assert_eq!(kinds.iter().filter(|&&k| k == CellKind::Xor2).count(), 2);
        assert!(!kinds.contains(&CellKind::Inv));
    }

    #[test]
    fn pure_register_file_has_zero_depth() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("regs");
        let x = b.add_input("x0");
        let q = b.add_cell(CellKind::Dff, &[x]);
        b.add_output("y0", q);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert_eq!(sta.logical_depth(), 0.0);
        assert_eq!(sta.path_spread(), 0.0);
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    #[test]
    fn histogram_counts_endpoints() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("h");
        let x = b.add_input("x0");
        let fast = b.add_cell(CellKind::Inv, &[x]);
        let s1 = b.add_cell(CellKind::Xor2, &[x, fast]);
        let s2 = b.add_cell(CellKind::Xor2, &[s1, x]);
        b.add_output("fast", fast);
        b.add_output("slow", s2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let hist = sta.arrival_histogram(&nl, 4);
        assert_eq!(hist.iter().sum::<usize>(), 2, "two endpoints");
        // One early endpoint, one in the last bin.
        assert_eq!(hist[3], 1);
        assert_eq!(hist[0], 1);
    }

    #[test]
    fn histogram_of_registers_only_is_zero_depth() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("r");
        let x = b.add_input("x0");
        let q = b.add_cell(CellKind::Dff, &[x]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert_eq!(sta.arrival_histogram(&nl, 8), vec![0; 8]);
    }
}
