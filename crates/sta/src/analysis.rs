//! Arrival-*window* propagation and path statistics on the timed
//! engine's exact integer time base.
//!
//! Every arrival is kept as an earliest/latest pair of integer
//! tick/stride units — the same quantization
//! ([`optpower_sim::quantize_delays`]) and the same GCD stride
//! ([`optpower_sim::tick_stride`]) the event-wheel [`TimedSim`]
//! engine runs on — so the static windows are directly comparable to
//! simulated event times with `u64` equality, no epsilon. The
//! differential suite (`tests/sta_differential.rs`) holds the engine
//! to it: every event the timed engine processes lies inside the
//! static window of its net.
//!
//! [`TimedSim`]: optpower_sim::TimedSim

use optpower_netlist::{CellId, CellKind, Library, NetId, Netlist};
use optpower_sim::{quantize_delays, tick_stride, SimError, TICKS_PER_GATE};

/// A reported timing path (for diagnostics and the Figure 3/4 report).
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// Cells along the path, start point first.
    pub cells: Vec<CellId>,
    /// Path length in gate units.
    pub length: f64,
}

/// The result of one static timing analysis.
///
/// Windows are computed in integer tick/stride units and converted to
/// normalised gate units (FO4 inverter = 1.0) at the accessor
/// boundary. Start points (primary inputs, constants, DFF outputs)
/// arrive in the degenerate window `[0, 0]` — exactly the tick the
/// timed engine commits them at; every combinational cell adds its
/// quantized library delay to both bounds.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    /// Ticks per stride unit (the engine's wheel granularity).
    stride: u64,
    /// Per-cell propagation delay in stride units.
    delay_units: Vec<u64>,
    /// Per-net earliest possible arrival, in stride units.
    earliest: Vec<u64>,
    /// Per-net latest possible arrival, in stride units.
    latest: Vec<u64>,
    /// Latest endpoint arrival (the paper's `LD`), in stride units.
    depth_units: u64,
    /// Earliest endpoint arrival, in stride units.
    shortest_units: u64,
    mean_input_skew: f64,
    critical_endpoint: Option<CellId>,
}

impl TimingAnalysis {
    /// Runs the analysis. Single topological pass; `O(cells + pins)`.
    ///
    /// # Panics
    ///
    /// Panics if a library delay is invalid (not finite, negative, or
    /// above [`optpower_sim::MAX_DELAY_GATES`]); use
    /// [`TimingAnalysis::try_analyze`] for the fallible form. The
    /// built-in libraries are always valid.
    pub fn analyze(netlist: &Netlist, library: &Library) -> Self {
        Self::try_analyze(netlist, library).expect("library delays are valid")
    }

    /// Runs the analysis, surfacing invalid library delays as the same
    /// typed error the timed engine constructor reports.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDelay`] — precisely when
    /// [`optpower_sim::TimedSim::new`] would reject the same pair.
    pub fn try_analyze(netlist: &Netlist, library: &Library) -> Result<Self, SimError> {
        let ticks = quantize_delays(netlist, library)?;
        let stride = tick_stride(&ticks);
        let delay_units: Vec<u64> = ticks.iter().map(|&t| t / stride).collect();

        let n_nets = netlist.nets().len();
        let mut earliest = vec![0u64; n_nets];
        let mut latest = vec![0u64; n_nets];

        let mut skew_sum: u128 = 0;
        let mut skew_cells = 0usize;

        for &id in netlist.topo_order() {
            let cell = netlist.cell(id);
            let out = cell.output.index();
            match cell.kind {
                // Timing start points: committed exactly at the cycle
                // edge (tick 0) by the timed engine. A DFF cell may
                // appear after its readers in the topo order (DFF
                // outputs are sources, the cell is ordered by its D
                // pin) — safe here because its window equals the
                // arrays' zero initialization.
                CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff => {
                    earliest[out] = 0;
                    latest[out] = 0;
                }
                // Output markers are transparent.
                CellKind::Output => {
                    let i = cell.inputs[0].index();
                    earliest[out] = earliest[i];
                    latest[out] = latest[i];
                }
                _ => {
                    let d = delay_units[id.index()];
                    let mut in_latest = 0u64;
                    let mut in_earliest = u64::MAX;
                    for &pin in &cell.inputs {
                        in_latest = in_latest.max(latest[pin.index()]);
                        in_earliest = in_earliest.min(earliest[pin.index()]);
                    }
                    if cell.inputs.len() >= 2 {
                        skew_sum += u128::from(in_latest - in_earliest);
                        skew_cells += 1;
                    }
                    earliest[out] = in_earliest + d;
                    latest[out] = in_latest + d;
                }
            }
        }

        // Endpoints: primary outputs and DFF D pins.
        let mut depth_units = 0u64;
        let mut shortest = u64::MAX;
        let mut critical_endpoint = None;
        for (id, net) in netlist.endpoints() {
            let net = net.index();
            // Strict `>` keeps the first (lowest-CellId) endpoint on
            // ties, matching the walk's lowest-id tie-break.
            if latest[net] > depth_units {
                depth_units = latest[net];
                critical_endpoint = Some(id);
            }
            shortest = shortest.min(earliest[net]);
        }
        if shortest == u64::MAX {
            shortest = 0;
        }

        let mean_input_skew = if skew_cells > 0 {
            units_to_gates_u128(skew_sum, stride) / skew_cells as f64
        } else {
            0.0
        };

        Ok(Self {
            stride,
            delay_units,
            earliest,
            latest,
            depth_units,
            shortest_units: shortest,
            mean_input_skew,
            critical_endpoint,
        })
    }

    /// Ticks per stride unit: the granularity both this analysis and
    /// the event-wheel engine express time in. Identical to the
    /// stride `TimedSim::new` derives for the same netlist/library.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// A cell's propagation delay in stride units.
    pub fn delay_units(&self, cell: CellId) -> u64 {
        self.delay_units[cell.index()]
    }

    /// Earliest possible arrival of a net, in stride units.
    pub fn earliest_units(&self, net: NetId) -> u64 {
        self.earliest[net.index()]
    }

    /// Latest possible arrival of a net, in stride units.
    pub fn latest_units(&self, net: NetId) -> u64 {
        self.latest[net.index()]
    }

    /// The arrival window `[earliest, latest]` of a net in stride
    /// units: every event the timed engine ever schedules on this net
    /// falls inside it (locked by `tests/sta_differential.rs`).
    pub fn window_units(&self, net: NetId) -> (u64, u64) {
        (self.earliest[net.index()], self.latest[net.index()])
    }

    /// The paper's logical depth `LD`: the longest start-to-endpoint
    /// combinational path in gate units.
    pub fn logical_depth(&self) -> f64 {
        self.units_to_gates(self.depth_units)
    }

    /// The shortest endpoint path (lower bound of the path spread).
    pub fn shortest_endpoint_path(&self) -> f64 {
        self.units_to_gates(self.shortest_units)
    }

    /// `LD − shortest path`: the global path-delay spread. Larger
    /// spread ⇒ more glitch-prone (Section 4's diagonal-pipeline
    /// observation).
    pub fn path_spread(&self) -> f64 {
        self.units_to_gates(self.depth_units - self.shortest_units.min(self.depth_units))
    }

    /// Mean over multi-input cells of (latest − earliest input
    /// arrival): a local glitch-proneness measure.
    pub fn mean_input_skew(&self) -> f64 {
        self.mean_input_skew
    }

    /// Latest arrival time of a net, in gate units.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.units_to_gates(self.latest[net.index()])
    }

    /// Earliest arrival time of a net, in gate units.
    pub fn min_arrival(&self, net: NetId) -> f64 {
        self.units_to_gates(self.earliest[net.index()])
    }

    /// The endpoint cell of the critical path, if any combinational
    /// path exists.
    pub fn critical_endpoint(&self) -> Option<CellId> {
        self.critical_endpoint
    }

    /// Histogram of endpoint arrival times in `bins` uniform bins over
    /// `[0, logical_depth]`. The spread of this histogram is the
    /// glitch-proneness picture behind the paper's diagonal-pipeline
    /// observation: a wide histogram means wildly unbalanced paths.
    ///
    /// Returns an all-zero histogram for a netlist with no endpoints
    /// or zero depth.
    pub fn arrival_histogram(&self, netlist: &Netlist, bins: usize) -> Vec<usize> {
        let bins = bins.max(1);
        let mut hist = vec![0usize; bins];
        if self.depth_units == 0 {
            return hist;
        }
        for (_, net) in netlist.endpoints() {
            // Exact integer binning: bin = floor(a · bins / depth),
            // clamped so arrival == depth lands in the last bin.
            let a = u128::from(self.latest[net.index()]);
            let ix = (a * bins as u128 / u128::from(self.depth_units)) as usize;
            hist[ix.min(bins - 1)] += 1;
        }
        hist
    }

    /// Reconstructs the critical path by walking back along
    /// worst-arrival pins from the critical endpoint.
    ///
    /// Integer arrivals make the walk total and exact: at each cell
    /// the chosen pin satisfies `latest(pin) + delay == latest(out)`
    /// by `u64` equality (the old `f64` walk needed a NaN-tolerant
    /// comparator and an epsilon assertion). Ties are broken towards
    /// the lowest [`NetId`], so the reported path is deterministic
    /// across platforms.
    pub fn critical_path(&self, netlist: &Netlist, _library: &Library) -> Option<PathReport> {
        let endpoint = self.critical_endpoint?;
        let mut cells = vec![endpoint];
        let mut current = netlist.cell(endpoint).inputs[0];
        loop {
            let driver = netlist.net(current).driver;
            cells.push(driver);
            let cell = netlist.cell(driver);
            let is_start = matches!(
                cell.kind,
                CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff
            );
            if is_start || cell.inputs.is_empty() {
                break;
            }
            // Follow the latest-arriving input; lowest NetId on ties.
            let mut best: Option<NetId> = None;
            for &pin in &cell.inputs {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (a, bb) = (self.latest[pin.index()], self.latest[b.index()]);
                        a > bb || (a == bb && pin.index() < b.index())
                    }
                };
                if better {
                    best = Some(pin);
                }
            }
            current = best.expect("non-start cells have inputs");
            debug_assert_eq!(
                self.latest[current.index()] + self.delay_units[driver.index()],
                self.latest[cell.output.index()],
                "critical-path walk left the worst path"
            );
        }
        cells.reverse();
        Some(PathReport {
            cells,
            length: self.logical_depth(),
        })
    }

    /// Converts stride units to normalised gate units.
    fn units_to_gates(&self, units: u64) -> f64 {
        units_to_gates_u128(u128::from(units), self.stride)
    }
}

/// Stride units → gate units with one rounding at the very end: the
/// integer product `units × stride` is exact in `u128`, so derived
/// `f64` depths match the old per-cell `f64` sums to well below any
/// test tolerance.
fn units_to_gates_u128(units: u128, stride: u64) -> f64 {
    (units * u128::from(stride)) as f64 / TICKS_PER_GATE as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    #[test]
    fn chain_depth_is_sum_of_delays() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("chain");
        let x = b.add_input("x0");
        let n1 = b.add_cell(CellKind::Xor2, &[x, x]);
        let n2 = b.add_cell(CellKind::Nand2, &[n1, x]);
        b.add_output("y0", n2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let expect = lib.delay(CellKind::Xor2) + lib.delay(CellKind::Nand2);
        assert!((sta.logical_depth() - expect).abs() < 1e-12);
    }

    #[test]
    fn dff_cuts_paths() {
        // in -> inv -> DFF -> inv -> out: depth is max(1, 1) = 1 inv,
        // not 2 (the flop restarts timing).
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("cut");
        let x = b.add_input("x0");
        let n1 = b.add_cell(CellKind::Inv, &[x]);
        let q = b.add_cell(CellKind::Dff, &[n1]);
        let n2 = b.add_cell(CellKind::Inv, &[q]);
        b.add_output("y0", n2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert!((sta.logical_depth() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_tree_has_zero_skew() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("bal");
        let i0 = b.add_input("a0");
        let i1 = b.add_input("a1");
        let i2 = b.add_input("a2");
        let i3 = b.add_input("a3");
        let l = b.add_cell(CellKind::And2, &[i0, i1]);
        let r = b.add_cell(CellKind::And2, &[i2, i3]);
        let top = b.add_cell(CellKind::And2, &[l, r]);
        b.add_output("y0", top);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert!(sta.mean_input_skew().abs() < 1e-12);
        assert!(sta.path_spread().abs() < 1e-12);
    }

    #[test]
    fn unbalanced_chain_has_skew() {
        // XOR(x, buf(buf(x))): input skew = 2 buffer delays.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("skew");
        let x = b.add_input("x0");
        let d1 = b.add_cell(CellKind::Buf, &[x]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[x, d2]);
        b.add_output("y0", s);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert!((sta.mean_input_skew() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_reconstruction() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("cp");
        let x = b.add_input("x0");
        let y = b.add_input("x1");
        let slow1 = b.add_cell(CellKind::Xor2, &[x, y]);
        let slow2 = b.add_cell(CellKind::Xor2, &[slow1, y]);
        let fast = b.add_cell(CellKind::Inv, &[x]);
        let top = b.add_cell(CellKind::And2, &[slow2, fast]);
        b.add_output("y0", top);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let path = sta.critical_path(&nl, &lib).unwrap();
        // Path: input -> xor -> xor -> and -> output = 5 cells listed.
        assert_eq!(path.cells.len(), 5);
        assert!((path.length - sta.logical_depth()).abs() < 1e-12);
        // The slow XORs are on it; the fast inverter is not.
        let kinds: Vec<CellKind> = path.cells.iter().map(|&c| nl.cell(c).kind).collect();
        assert_eq!(kinds.iter().filter(|&&k| k == CellKind::Xor2).count(), 2);
        assert!(!kinds.contains(&CellKind::Inv));
    }

    #[test]
    fn critical_path_tie_breaks_to_lowest_net_id() {
        // Two equally slow pins into the endpoint gate: the walk must
        // deterministically pick the lower NetId.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("tie");
        let x = b.add_input("x0");
        let y = b.add_input("x1");
        let p = b.add_cell(CellKind::Inv, &[x]);
        let q = b.add_cell(CellKind::Inv, &[y]);
        let top = b.add_cell(CellKind::And2, &[q, p]);
        b.add_output("y0", top);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let path = sta.critical_path(&nl, &lib).unwrap();
        // Both inverters arrive together; `p` has the lower net id
        // even though `q` is the first pin.
        assert!(path.cells.contains(&nl.net(p).driver));
        assert!(!path.cells.contains(&nl.net(q).driver));
    }

    #[test]
    fn pure_register_file_has_zero_depth() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("regs");
        let x = b.add_input("x0");
        let q = b.add_cell(CellKind::Dff, &[x]);
        b.add_output("y0", q);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert_eq!(sta.logical_depth(), 0.0);
        assert_eq!(sta.path_spread(), 0.0);
        assert_eq!(sta.critical_endpoint(), None);
    }

    #[test]
    fn windows_are_in_engine_units() {
        // Buf chain: windows collapse to points at exact multiples of
        // the buffer delay in stride units.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("w");
        let x = b.add_input("x0");
        let d1 = b.add_cell(CellKind::Buf, &[x]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        b.add_output("y0", d2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let buf_units = (lib.delay(CellKind::Buf) * 1000.0).round() as u64 / sta.stride();
        assert_eq!(sta.window_units(x), (0, 0));
        assert_eq!(sta.window_units(d1), (buf_units, buf_units));
        assert_eq!(sta.window_units(d2), (2 * buf_units, 2 * buf_units));
    }

    #[test]
    fn invalid_delays_are_a_typed_error() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.add_input("x0");
        let y = b.add_cell(CellKind::Inv, &[x]);
        b.add_output("y0", y);
        let nl = b.build().unwrap();
        let err = TimingAnalysis::try_analyze(&nl, &Library::with_uniform_delay(f64::NAN));
        assert!(matches!(err, Err(SimError::InvalidDelay { .. })));
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    #[test]
    fn histogram_counts_endpoints() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("h");
        let x = b.add_input("x0");
        let fast = b.add_cell(CellKind::Inv, &[x]);
        let s1 = b.add_cell(CellKind::Xor2, &[x, fast]);
        let s2 = b.add_cell(CellKind::Xor2, &[s1, x]);
        b.add_output("fast", fast);
        b.add_output("slow", s2);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let hist = sta.arrival_histogram(&nl, 4);
        assert_eq!(hist.iter().sum::<usize>(), 2, "two endpoints");
        // One early endpoint, one in the last bin.
        assert_eq!(hist[3], 1);
        assert_eq!(hist[0], 1);
    }

    #[test]
    fn histogram_of_registers_only_is_zero_depth() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("r");
        let x = b.add_input("x0");
        let q = b.add_cell(CellKind::Dff, &[x]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        assert_eq!(sta.arrival_histogram(&nl, 8), vec![0; 8]);
    }
}
