//! A *provable* static upper bound on glitch activity.
//!
//! The paper's Section-4 observation is that unequal input arrival
//! times make a gate toggle more than once per data period — extra
//! transitions, extra dynamic power. This module turns the arrival
//! windows of [`TimingAnalysis`] into a per-net upper bound on the
//! transitions the timed engine can ever count in one cycle, and
//! aggregates the bounds into a **static glitch factor** comparable
//! to the measured one (`AbInitioRow::glitch_factor()`).
//!
//! The per-net bound combines two sound rules:
//!
//! * **sum rule** — each output evaluation is triggered by at least
//!   one input change, and each flush evaluates a cell once, so the
//!   output cannot change more often than its inputs combined:
//!   `bound(out) ≤ Σ bound(in)`.
//! * **window rule** — applied events on a net sit at integer stride
//!   ticks inside `[earliest, latest]`, and a cell with non-zero
//!   delay never lands two events on the same tick (an event
//!   scheduled at flush time `t` is due at `t + d > t`, so applied
//!   times are strictly increasing): `bound(out) ≤ latest − earliest
//!   + 1`. Zero-delay cells can re-fire on the same tick, so the
//!   window rule only applies when `delay ≥ 1` stride unit.
//!
//! Timing start points contribute one change per cycle (inputs and
//! DFF outputs commit exactly once, at tick 0), constants never
//! change, and `Output` markers are transparent. The differential
//! suite (`tests/sta_differential.rs`) locks the bound against the
//! timed engine: per cell, counted transitions over `C` cycles never
//! exceed `C × bound`.

use crate::TimingAnalysis;
use optpower_netlist::{CellKind, NetId, Netlist};

/// Per-net transition bounds plus their aggregate glitch factor.
#[derive(Debug, Clone)]
pub struct GlitchProfile {
    /// Per-net upper bound on counted (known↔known) transitions per
    /// cycle, indexed by `NetId`.
    bounds: Vec<u64>,
    static_factor: f64,
    mean_bound: f64,
}

impl GlitchProfile {
    /// Derives the bounds from a finished timing analysis of the same
    /// netlist. Single topological pass.
    pub fn compute(netlist: &Netlist, sta: &TimingAnalysis) -> Self {
        let mut bounds = vec![0u64; netlist.nets().len()];
        // Seed the sources first: the topo order treats DFF *outputs*
        // as sources but may place the DFF cell itself after its
        // readers (its position is ordered by its D input), so a
        // single in-order pass would read a DFF's bound before
        // writing it.
        for cell in netlist.cells() {
            if matches!(cell.kind, CellKind::Input | CellKind::Dff) {
                bounds[cell.output.index()] = 1;
            }
        }
        for &id in netlist.topo_order() {
            let cell = netlist.cell(id);
            let out = cell.output.index();
            bounds[out] = match cell.kind {
                // One committed change per cycle, at tick 0 (seeded
                // above, restated for the in-order read).
                CellKind::Input | CellKind::Dff => 1,
                CellKind::Const0 | CellKind::Const1 => 0,
                // Transparent marker: no cell of its own.
                CellKind::Output => bounds[cell.inputs[0].index()],
                _ => {
                    let sum = cell
                        .inputs
                        .iter()
                        .fold(0u64, |acc, pin| acc.saturating_add(bounds[pin.index()]));
                    let (earliest, latest) = sta.window_units(cell.output);
                    if sta.delay_units(id) >= 1 {
                        sum.min(latest - earliest + 1)
                    } else {
                        sum
                    }
                }
            };
        }

        // Aggregate over the cells the activity factor counts: logic
        // cells (gates + DFFs; ports and constants excluded). The
        // denominator is the glitch-free ceiling — every cell that can
        // toggle at all toggles at most once per cycle under
        // zero-delay semantics.
        let mut num: u128 = 0;
        let mut den: u128 = 0;
        let mut count: u128 = 0;
        for (_, cell) in netlist.logic_cells() {
            let b = bounds[cell.output.index()];
            num += u128::from(b);
            den += u128::from(b.min(1));
            count += 1;
        }
        let static_factor = if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        };
        let mean_bound = if count == 0 {
            0.0
        } else {
            num as f64 / count as f64
        };

        Self {
            bounds,
            static_factor,
            mean_bound,
        }
    }

    /// The per-cycle transition bound of one net.
    pub fn bound(&self, net: NetId) -> u64 {
        self.bounds[net.index()]
    }

    /// The static glitch factor: `Σ bound / Σ min(1, bound)` over
    /// logic cells. A fully balanced design (all windows degenerate,
    /// all delays ≥ 1 unit) scores exactly 1.0 — no glitches are even
    /// *possible*. This is the static analogue of the measured
    /// `glitch_factor()` and tracks it across architectures, but it is
    /// a ranking statistic, not a bound on the measured ratio: the
    /// measured denominator is the *actual* zero-delay activity, which
    /// can sit well below the one-toggle-per-cycle ceiling this
    /// denominator assumes. The hard guarantee lives at the
    /// transition level — see [`GlitchProfile::mean_cell_bound`].
    pub fn static_glitch_factor(&self) -> f64 {
        self.static_factor
    }

    /// The static *activity* bound: mean per-cycle transition bound
    /// per logic cell, `Σ bound / #logic cells`. Unlike the factor
    /// (whose measured counterpart divides by a *measured* zero-delay
    /// activity), this is a hard ceiling: the timed engine's measured
    /// activity per clock cycle can never exceed it.
    pub fn mean_cell_bound(&self) -> f64 {
        self.mean_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{Library, NetlistBuilder};

    #[test]
    fn balanced_design_scores_exactly_one() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("bal");
        let i0 = b.add_input("a0");
        let i1 = b.add_input("a1");
        let i2 = b.add_input("a2");
        let i3 = b.add_input("a3");
        let l = b.add_cell(CellKind::And2, &[i0, i1]);
        let r = b.add_cell(CellKind::And2, &[i2, i3]);
        let top = b.add_cell(CellKind::And2, &[l, r]);
        b.add_output("y0", top);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let g = GlitchProfile::compute(&nl, &sta);
        assert_eq!(g.bound(l), 1);
        assert_eq!(g.bound(top), 1);
        assert_eq!(g.static_glitch_factor(), 1.0);
    }

    #[test]
    fn skewed_inputs_raise_the_bound() {
        // XOR(x, buf(buf(x))): the XOR's inputs arrive 2 buffer
        // delays apart, so it may glitch — sum rule gives 2.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("skew");
        let x = b.add_input("x0");
        let d1 = b.add_cell(CellKind::Buf, &[x]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[x, d2]);
        b.add_output("y0", s);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let g = GlitchProfile::compute(&nl, &sta);
        assert_eq!(g.bound(s), 2);
        assert!(g.static_glitch_factor() > 1.0);
    }

    #[test]
    fn window_rule_caps_wide_sums() {
        // Four one-tick-apart arrivals into a 3-input gate would sum
        // to 3, but a degenerate window caps it: XOR3 of three copies
        // of the same equal-arrival net has window width 1 -> bound 1.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("cap");
        let x = b.add_input("x0");
        let y = b.add_input("x1");
        let z = b.add_input("x2");
        let s = b.add_cell(CellKind::Xor3, &[x, y, z]);
        b.add_output("y0", s);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let g = GlitchProfile::compute(&nl, &sta);
        // Sum rule alone would say 3; the window is degenerate.
        assert_eq!(g.bound(s), 1);
    }

    #[test]
    fn dff_feedback_readers_see_the_seeded_bound() {
        // The DFF's D pin comes from the XOR, so the topo order puts
        // the DFF cell *after* the XOR that reads its output. The
        // seeding pass must make the XOR see bound(q) = 1, giving the
        // skewed XOR(q, buf(buf(x))) the sum-rule bound 2 — an
        // in-order-only pass would read 0 and report 1.
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("fb");
        let x = b.add_input("x0");
        let q = b.add_cell(CellKind::Dff, &[x]);
        let d1 = b.add_cell(CellKind::Buf, &[x]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[q, d2]);
        b.rewire(q, 0, s);
        b.add_output("y0", s);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let g = GlitchProfile::compute(&nl, &sta);
        assert_eq!(g.bound(q), 1);
        assert_eq!(g.bound(s), 2);
    }

    #[test]
    fn constants_never_toggle() {
        let lib = Library::cmos13();
        let mut b = NetlistBuilder::new("c");
        let x = b.add_input("x0");
        let c = b.add_cell(CellKind::Const1, &[]);
        let a = b.add_cell(CellKind::And2, &[x, c]);
        b.add_output("y0", a);
        let nl = b.build().unwrap();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let g = GlitchProfile::compute(&nl, &sta);
        assert_eq!(g.bound(c), 0);
        assert_eq!(g.bound(a), 1);
    }
}
