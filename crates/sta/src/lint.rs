//! Structural netlist lint: seven rules with stable IDs, typed
//! severities and deterministic ordering.
//!
//! The lint pass answers "is this netlist even worth simulating?"
//! before any engine runs. Rules are purely structural — no library,
//! no stimulus — and deterministic: diagnostics are emitted in rule-ID
//! order, and within a rule in cell/net index order, so the rendered
//! report is byte-stable across platforms (golden-tested in
//! `tests/sta_differential.rs`).
//!
//! | id   | name              | severity | fires on |
//! |------|-------------------|----------|----------|
//! | L001 | unreachable-cell  | warning  | cell with no path to any endpoint (primary output or DFF `D` pin) |
//! | L002 | floating-net      | warning  | driven net with no sinks |
//! | L003 | constant-foldable | warning  | combinational cell whose inputs are all (transitively) constant |
//! | L004 | x-source          | **error**| cell unreachable from every primary input / constant: its output can never leave `X` |
//! | L005 | fanout-outlier    | warning  | combinational net with fanout ≥ 8 and > 4× the design's mean fanout (input/const/flop nets exempt) |
//! | L006 | arity-hazard      | warning  | cell with the same net on two pins |
//! | L007 | width-hazard      | warning  | gap in a port bus's bit indices (`a0`, `a2` but no `a1`) |
//!
//! Only `error`-severity diagnostics fail the [`LintReport::gate`]:
//! an X-source drives `X` into the design forever, so every simulated
//! number downstream of it is meaningless. Warnings flag waste
//! (unreachable logic still burns power in the paper's model) or
//! likely generator bugs, but leave results well-defined.

use optpower_netlist::{CellId, CellKind, NetId, Netlist};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious structure; simulation results stay well-defined.
    Warning,
    /// The netlist cannot produce meaningful results.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The seven lint rules. The enum order is the stable rule-ID order
/// diagnostics are reported in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintRule {
    /// No path from the cell to any endpoint.
    UnreachableCell,
    /// A driven net with no sinks.
    FloatingNet,
    /// A combinational cell with all-constant inputs.
    ConstantFoldable,
    /// A cell no primary input or constant can ever reach: stuck at X.
    XSource,
    /// A net with far more sinks than the rest of the design.
    FanoutOutlier,
    /// The same net wired to two pins of one cell.
    ArityHazard,
    /// A port bus with missing bit indices.
    WidthHazard,
}

impl LintRule {
    /// Every rule, in rule-ID order.
    pub const ALL: [LintRule; 7] = [
        LintRule::UnreachableCell,
        LintRule::FloatingNet,
        LintRule::ConstantFoldable,
        LintRule::XSource,
        LintRule::FanoutOutlier,
        LintRule::ArityHazard,
        LintRule::WidthHazard,
    ];

    /// Stable machine-readable rule ID (`L001`…`L007`).
    pub fn id(self) -> &'static str {
        match self {
            LintRule::UnreachableCell => "L001",
            LintRule::FloatingNet => "L002",
            LintRule::ConstantFoldable => "L003",
            LintRule::XSource => "L004",
            LintRule::FanoutOutlier => "L005",
            LintRule::ArityHazard => "L006",
            LintRule::WidthHazard => "L007",
        }
    }

    /// Human-readable kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::UnreachableCell => "unreachable-cell",
            LintRule::FloatingNet => "floating-net",
            LintRule::ConstantFoldable => "constant-foldable",
            LintRule::XSource => "x-source",
            LintRule::FanoutOutlier => "fanout-outlier",
            LintRule::ArityHazard => "arity-hazard",
            LintRule::WidthHazard => "width-hazard",
        }
    }

    /// The rule's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            LintRule::XSource => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

/// One lint finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: LintRule,
    /// Offending cell, if the finding is cell-anchored.
    pub cell: Option<CellId>,
    /// Offending net, if the finding is net-anchored.
    pub net: Option<NetId>,
    /// Human-readable explanation with names and numbers.
    pub message: String,
}

/// The result of linting one netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    name: String,
    cells: usize,
    nets: usize,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Runs all seven rules over the netlist.
    pub fn lint(netlist: &Netlist) -> Self {
        let mut diagnostics = Vec::new();
        unreachable_cells(netlist, &mut diagnostics);
        floating_nets(netlist, &mut diagnostics);
        constant_foldable(netlist, &mut diagnostics);
        x_sources(netlist, &mut diagnostics);
        fanout_outliers(netlist, &mut diagnostics);
        arity_hazards(netlist, &mut diagnostics);
        width_hazards(netlist, &mut diagnostics);
        Self {
            name: netlist.name().to_string(),
            cells: netlist.cells().len(),
            nets: netlist.nets().len(),
            diagnostics,
        }
    }

    /// Name of the linted netlist.
    pub fn netlist_name(&self) -> &str {
        &self.name
    }

    /// Cell count of the linted netlist.
    pub fn cell_count(&self) -> usize {
        self.cells
    }

    /// Net count of the linted netlist.
    pub fn net_count(&self) -> usize {
        self.nets
    }

    /// All diagnostics, in rule-ID then cell/net index order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.rule.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// No diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The preflight gate: `Ok` unless an error-severity diagnostic
    /// fired. Warnings pass — they flag waste, not wrongness.
    pub fn gate(&self) -> Result<(), &Diagnostic> {
        match self
            .diagnostics
            .iter()
            .find(|d| d.rule.severity() == Severity::Error)
        {
            Some(d) => Err(d),
            None => Ok(()),
        }
    }

    /// Renders the report as stable, human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "lint {}: {} cells, {} nets, {} error(s), {} warning(s)\n",
            self.name,
            self.cells,
            self.nets,
            self.error_count(),
            self.warning_count()
        );
        for d in &self.diagnostics {
            out.push_str(&format!(
                "  {} {} [{}] {}\n",
                d.rule.severity().label(),
                d.rule.id(),
                d.rule.name(),
                d.message
            ));
        }
        if self.diagnostics.is_empty() {
            out.push_str("  clean\n");
        }
        out
    }

    /// Renders the report as a deterministic JSON object (no external
    /// dependencies; messages are escaped).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"netlist\":{},\"cells\":{},\"nets\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            json_string(&self.name),
            self.cells,
            self.nets,
            self.error_count(),
            self.warning_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\"cell\":{},\"net\":{},\"message\":{}}}",
                d.rule.id(),
                d.rule.name(),
                d.rule.severity().label(),
                match d.cell {
                    Some(c) => c.index().to_string(),
                    None => "null".to_string(),
                },
                match d.net {
                    Some(n) => n.index().to_string(),
                    None => "null".to_string(),
                },
                json_string(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for names and messages.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// L001: reverse reachability from endpoints over input pins. A cell
/// the walk never visits influences no observable value — dead logic
/// that still burns power in the paper's model.
fn unreachable_cells(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut reached = vec![false; netlist.cells().len()];
    let mut stack: Vec<CellId> = Vec::new();
    for (cell, _) in netlist.endpoints() {
        reached[cell.index()] = true;
        stack.push(cell);
    }
    while let Some(id) = stack.pop() {
        for &pin in &netlist.cell(id).inputs {
            let driver = netlist.net(pin).driver;
            if !reached[driver.index()] {
                reached[driver.index()] = true;
                stack.push(driver);
            }
        }
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        // Ports are reported by other rules (a dangling input is a
        // floating net, not dead logic).
        if reached[i] || matches!(cell.kind, CellKind::Input | CellKind::Output) {
            continue;
        }
        out.push(Diagnostic {
            rule: LintRule::UnreachableCell,
            cell: Some(CellId(i as u32)),
            net: None,
            message: format!(
                "cell '{}' ({:?}) drives no primary output or flop",
                cell.name, cell.kind
            ),
        });
    }
}

/// L002: a driven net with no sinks. `Output` markers terminate a net
/// by design and are exempt.
fn floating_nets(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    for (i, net) in netlist.nets().iter().enumerate() {
        let id = NetId(i as u32);
        if netlist.fanout(id).is_empty() && netlist.cell(net.driver).kind != CellKind::Output {
            out.push(Diagnostic {
                rule: LintRule::FloatingNet,
                cell: Some(net.driver),
                net: Some(id),
                message: format!("net '{}' has no sinks", net.name),
            });
        }
    }
}

/// L003: transitive constant propagation. A combinational cell whose
/// inputs are all constant computes a constant — it should be a
/// `Const` cell (or folded away entirely).
fn constant_foldable(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut is_const = vec![false; netlist.nets().len()];
    for &id in netlist.topo_order() {
        let cell = netlist.cell(id);
        is_const[cell.output.index()] = match cell.kind {
            CellKind::Const0 | CellKind::Const1 => true,
            CellKind::Input | CellKind::Dff | CellKind::Output => false,
            _ => !cell.inputs.is_empty() && cell.inputs.iter().all(|p| is_const[p.index()]),
        };
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        let comb = cell.kind.is_logic() && !cell.kind.is_sequential();
        if comb && !cell.inputs.is_empty() && cell.inputs.iter().all(|p| is_const[p.index()]) {
            out.push(Diagnostic {
                rule: LintRule::ConstantFoldable,
                cell: Some(CellId(i as u32)),
                net: None,
                message: format!(
                    "cell '{}' ({:?}) computes a constant: every input is constant",
                    cell.name, cell.kind
                ),
            });
        }
    }
}

/// L004 (error): forward reachability from primary inputs and
/// constants, through DFFs. A cell outside the closure has *all*
/// inputs forever-X (three-valued eval maps all-X inputs to X for
/// every kind), so its output can never leave X — e.g. a flop
/// rewired into a self-loop with no external driver.
fn x_sources(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut reached = vec![false; netlist.cells().len()];
    let mut stack: Vec<CellId> = Vec::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if matches!(
            cell.kind,
            CellKind::Input | CellKind::Const0 | CellKind::Const1
        ) {
            reached[i] = true;
            stack.push(CellId(i as u32));
        }
    }
    while let Some(id) = stack.pop() {
        for &sink in netlist.fanout(netlist.cell(id).output) {
            if !reached[sink.index()] {
                reached[sink.index()] = true;
                stack.push(sink);
            }
        }
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        // `Output` markers are skipped: an unreached output's driver
        // is in the same unreached closure and already flagged.
        if reached[i]
            || matches!(
                cell.kind,
                CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Output
            )
        {
            continue;
        }
        out.push(Diagnostic {
            rule: LintRule::XSource,
            cell: Some(CellId(i as u32)),
            net: Some(cell.output),
            message: format!(
                "cell '{}' ({:?}) is fed by no primary input or constant: output is X forever",
                cell.name, cell.kind
            ),
        });
    }
}

/// L005: fanout outliers. Absolute floor of 8 sinks *and* 4× the
/// design mean, so small designs and uniform high-fanout designs
/// (clock-ish nets) don't false-positive. Primary-input, constant and
/// flop-output nets are exempt: an operand bit of a W-bit multiplier
/// inherently feeds ~W partial-product gates whether it arrives on a
/// port or out of a pipeline register, so the load there is a
/// property of the design boundary, not a sign of an accidentally
/// shared *combinational* net — which is what this rule hunts.
fn fanout_outliers(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut total = 0usize;
    let mut driven = 0usize;
    for i in 0..netlist.nets().len() {
        let f = netlist.fanout(NetId(i as u32)).len();
        if f > 0 {
            total += f;
            driven += 1;
        }
    }
    if driven == 0 {
        return;
    }
    for (i, net) in netlist.nets().iter().enumerate() {
        let id = NetId(i as u32);
        if matches!(
            netlist.cell(net.driver).kind,
            CellKind::Input | CellKind::Const0 | CellKind::Const1 | CellKind::Dff
        ) {
            continue;
        }
        let f = netlist.fanout(id).len();
        // f > 4·mean  ⇔  f·driven > 4·total, in exact integers.
        if f >= 8 && f * driven > 4 * total {
            out.push(Diagnostic {
                rule: LintRule::FanoutOutlier,
                cell: Some(net.driver),
                net: Some(id),
                message: format!(
                    "net '{}' drives {} sinks (design mean {:.2})",
                    net.name,
                    f,
                    total as f64 / driven as f64
                ),
            });
        }
    }
}

/// L006: the same net on two pins of one cell. Legal, but for most
/// kinds it degenerates (`Xor2(x, x) = 0`) — usually a generator bug.
fn arity_hazards(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    for (i, cell) in netlist.cells().iter().enumerate() {
        let mut dup: Option<NetId> = None;
        for (a, &pin) in cell.inputs.iter().enumerate() {
            if cell.inputs[..a].contains(&pin) {
                dup = Some(pin);
                break;
            }
        }
        if let Some(pin) = dup {
            out.push(Diagnostic {
                rule: LintRule::ArityHazard,
                cell: Some(CellId(i as u32)),
                net: Some(pin),
                message: format!(
                    "cell '{}' ({:?}) has net '{}' on more than one pin",
                    cell.name,
                    cell.kind,
                    netlist.net(pin).name
                ),
            });
        }
    }
}

/// L007: bus-index gaps on ports. Port names ending in decimal digits
/// are grouped into buses by prefix; a bus whose indices don't cover
/// `0..=max` has a hole — almost always a width bug in a generator.
fn width_hazards(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    // (prefix, indices) per port direction, insertion-ordered so the
    // report order follows first appearance.
    let mut buses: Vec<(bool, String, Vec<u32>)> = Vec::new();
    for cell in netlist.cells() {
        let is_input = match cell.kind {
            CellKind::Input => true,
            CellKind::Output => false,
            _ => continue,
        };
        let Some((prefix, index)) = split_bus_name(&cell.name) else {
            continue;
        };
        match buses
            .iter_mut()
            .find(|(i, p, _)| *i == is_input && *p == prefix)
        {
            Some((_, _, ixs)) => ixs.push(index),
            None => buses.push((is_input, prefix, vec![index])),
        }
    }
    for (is_input, prefix, mut ixs) in buses {
        ixs.sort_unstable();
        ixs.dedup();
        let max = *ixs.last().expect("bus has at least one bit");
        if ixs.len() as u32 == max + 1 {
            continue;
        }
        let missing: Vec<String> = (0..=max)
            .filter(|i| ixs.binary_search(i).is_err())
            .map(|i| i.to_string())
            .collect();
        out.push(Diagnostic {
            rule: LintRule::WidthHazard,
            cell: None,
            net: None,
            message: format!(
                "{} bus '{}' skips bit index(es) {} (width {})",
                if is_input { "input" } else { "output" },
                prefix,
                missing.join(", "),
                max + 1
            ),
        });
    }
}

/// Splits `a12` into `("a", 12)`; `None` if the name has no trailing
/// digits (scalar ports are not bus bits).
fn split_bus_name(name: &str) -> Option<(String, u32)> {
    let digits = name.len() - name.trim_end_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 || digits == name.len() {
        return None;
    }
    let (prefix, index) = name.split_at(name.len() - digits);
    index.parse().ok().map(|i| (prefix.to_string(), i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    fn clean_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("clean");
        let a = b.add_input("a0");
        let c = b.add_input("b0");
        let x = b.add_cell(CellKind::Xor2, &[a, c]);
        let g = b.add_cell(CellKind::And2, &[a, c]);
        b.add_output("p0", x);
        b.add_output("p1", g);
        b.build().unwrap()
    }

    #[test]
    fn clean_netlist_is_clean() {
        let report = LintReport::lint(&clean_netlist());
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(report.gate().is_ok());
        assert!(report.render_text().contains("clean"));
    }

    #[test]
    fn unreachable_cell_fires() {
        let mut b = NetlistBuilder::new("dead");
        let a = b.add_input("a0");
        let live = b.add_cell(CellKind::Inv, &[a]);
        let dead = b.add_cell(CellKind::Inv, &[live]);
        let _deader = b.add_cell(CellKind::Buf, &[dead]);
        b.add_output("p0", live);
        let report = LintReport::lint(&b.build().unwrap());
        let hits: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.rule == LintRule::UnreachableCell)
            .collect();
        assert_eq!(hits.len(), 2, "{}", report.render_text());
        assert!(report.gate().is_ok(), "warnings do not gate");
    }

    #[test]
    fn x_source_is_an_error_and_gates() {
        // A flop rewired into a self-loop: no input or constant ever
        // reaches it, so q is X forever.
        let mut b = NetlistBuilder::new("xloop");
        let a = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[a]);
        b.rewire(q, 0, q);
        b.add_output("p0", q);
        let report = LintReport::lint(&b.build().unwrap());
        assert_eq!(report.error_count(), 1, "{}", report.render_text());
        let gate = report.gate().unwrap_err();
        assert_eq!(gate.rule, LintRule::XSource);
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let report = LintReport::lint(&clean_netlist());
        let json = report.to_json();
        assert!(json.starts_with("{\"netlist\":\"clean\""));
        assert!(json.ends_with("\"diagnostics\":[]}"));
        assert_eq!(json, LintReport::lint(&clean_netlist()).to_json());
    }

    #[test]
    fn fanout_outlier_skips_input_nets() {
        // An input and a flop each feeding nine buffers directly
        // (both exempt: operand bits legitimately broadcast, whether
        // from a port or a pipeline register) and one combinational
        // hub feeding nine more (fires: an internal net with 9 sinks
        // against a low mean is an outlier).
        let mut b = NetlistBuilder::new("fanout");
        let a = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[a]);
        let hub = b.add_cell(CellKind::Inv, &[a]);
        for i in 0..9 {
            let d = b.add_cell(CellKind::Buf, &[a]);
            let r = b.add_cell(CellKind::Buf, &[q]);
            let h = b.add_cell(CellKind::Buf, &[hub]);
            b.add_output(format!("p{i}"), d);
            b.add_output(format!("q{i}"), r);
            b.add_output(format!("r{i}"), h);
        }
        let report = LintReport::lint(&b.build().unwrap());
        let hits: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.rule == LintRule::FanoutOutlier)
            .collect();
        assert_eq!(hits.len(), 1, "{}", report.render_text());
        assert!(hits[0].message.contains("inv_2__o"), "{}", hits[0].message);
    }

    #[test]
    fn bus_gap_fires() {
        let mut b = NetlistBuilder::new("gap");
        let a0 = b.add_input("a0");
        let a2 = b.add_input("a2");
        let x = b.add_cell(CellKind::Or2, &[a0, a2]);
        b.add_output("p0", x);
        let report = LintReport::lint(&b.build().unwrap());
        let hit = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == LintRule::WidthHazard)
            .expect("gap must fire");
        assert!(hit.message.contains("'a'"), "{}", hit.message);
        assert!(hit.message.contains('1'), "{}", hit.message);
    }

    #[test]
    fn rule_ids_are_stable_and_ordered() {
        let ids: Vec<_> = LintRule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            ["L001", "L002", "L003", "L004", "L005", "L006", "L007"]
        );
        let mut sorted = LintRule::ALL;
        sorted.sort();
        assert_eq!(sorted, LintRule::ALL, "enum order is rule-ID order");
    }
}
