//! 1-D root finding: bisection and Brent's method.

use crate::NumericError;

const MAX_ITER: usize = 200;

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Robust and derivative-free; linear convergence. Used where the
/// bracket is cheap to establish and the objective may be stiff
/// (e.g. inverting exponential leakage terms).
///
/// # Errors
///
/// * [`NumericError::InvalidBracket`] if `a >= b` or `f(a)` and `f(b)`
///   do not straddle zero,
/// * [`NumericError::NonFinite`] if the objective returns NaN/∞,
/// * [`NumericError::NoConvergence`] if the interval does not shrink to
///   `tol` within the iteration limit.
///
/// # Examples
///
/// ```
/// let root = optpower_numeric::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), optpower_numeric::NumericError>(())
/// ```
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<f64, NumericError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
    if !(a < b) {
        return Err(NumericError::InvalidBracket {
            a,
            b,
            reason: "a must be strictly less than b",
        });
    }
    let (mut lo, mut hi) = (a, b);
    let mut flo = f(lo);
    let fhi = f(hi);
    if !flo.is_finite() || !fhi.is_finite() {
        return Err(NumericError::NonFinite);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericError::InvalidBracket {
            a,
            b,
            reason: "f(a) and f(b) must have opposite signs",
        });
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if !fmid.is_finite() {
            return Err(NumericError::NonFinite);
        }
        if fmid == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumericError::NoConvergence {
        iterations: MAX_ITER,
    })
}

/// Finds a root of `f` in `[a, b]` with Brent's method.
///
/// Combines bisection, secant, and inverse quadratic interpolation;
/// superlinear convergence with bisection's robustness. This is the
/// default root finder for the reverse-calibration solves.
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// # Examples
///
/// ```
/// let root = optpower_numeric::brent(|x| x.cos() - x, 0.0, 1.0, 1e-14)?;
/// assert!((root - 0.7390851332151607).abs() < 1e-12);
/// # Ok::<(), optpower_numeric::NumericError>(())
/// ```
pub fn brent(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64, NumericError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
    if !(a < b) {
        return Err(NumericError::InvalidBracket {
            a,
            b,
            reason: "a must be strictly less than b",
        });
    }
    let (mut xa, mut xb) = (a, b);
    let mut fa = f(xa);
    let mut fb = f(xb);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(NumericError::NonFinite);
    }
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::InvalidBracket {
            a,
            b,
            reason: "f(a) and f(b) must have opposite signs",
        });
    }
    // Ensure |f(xb)| <= |f(xa)| so xb is the best estimate.
    if fa.abs() < fb.abs() {
        core::mem::swap(&mut xa, &mut xb);
        core::mem::swap(&mut fa, &mut fb);
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut mflag = true;
    let mut xd = 0.0;

    for _ in 0..MAX_ITER {
        if fb == 0.0 || (xb - xa).abs() < tol {
            return Ok(xb);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            xa * fb * fc / ((fa - fb) * (fa - fc))
                + xb * fa * fc / ((fb - fa) * (fb - fc))
                + xc * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            xb - fb * (xb - xa) / (fb - fa)
        };

        let lo = (3.0 * xa + xb) / 4.0;
        let in_bounds = if lo < xb {
            s > lo && s < xb
        } else {
            s > xb && s < lo
        };
        let cond_prev = if mflag {
            (s - xb).abs() >= (xb - xc).abs() / 2.0
        } else {
            (s - xb).abs() >= (xc - xd).abs() / 2.0
        };
        let cond_tol = if mflag {
            (xb - xc).abs() < tol
        } else {
            (xc - xd).abs() < tol
        };
        if !in_bounds || cond_prev || cond_tol {
            s = 0.5 * (xa + xb);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        if !fs.is_finite() {
            return Err(NumericError::NonFinite);
        }
        xd = xc;
        xc = xb;
        fc = fb;
        if fa.signum() != fs.signum() {
            xb = s;
            fb = fs;
        } else {
            xa = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            core::mem::swap(&mut xa, &mut xb);
            core::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericError::NoConvergence {
        iterations: MAX_ITER,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 1.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_same_sign() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, NumericError::InvalidBracket { .. }));
    }

    #[test]
    fn bisect_rejects_reversed_bracket() {
        let err = bisect(|x| x, 1.0, 0.0, 1e-9).unwrap_err();
        assert!(matches!(err, NumericError::InvalidBracket { .. }));
    }

    #[test]
    fn bisect_detects_nan() {
        let err = bisect(|_| f64::NAN, 0.0, 1.0, 1e-9).unwrap_err();
        assert_eq!(err, NumericError::NonFinite);
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x| x.exp() - 3.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - 3f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn brent_stiff_exponential() {
        // The shape of leakage-calibration solves: exp(-x/small) - c.
        let r = brent(|x| (-x / 0.0344).exp() - 1e-3, 0.0, 1.5, 1e-14).unwrap();
        assert!((r - 0.0344 * (1e-3f64).ln().abs()).abs() < 1e-9);
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.powi(3) - x - 2.0;
        let rb = bisect(f, 1.0, 2.0, 1e-13).unwrap();
        let rr = brent(f, 1.0, 2.0, 1e-13).unwrap();
        assert!((rb - rr).abs() < 1e-10);
    }

    #[test]
    fn brent_rejects_same_sign() {
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, NumericError::InvalidBracket { .. }));
    }
}
