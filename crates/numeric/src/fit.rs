//! Least-squares line fitting (the Eq. 7 linearisation backend).

use crate::NumericError;

/// Result of a least-squares straight-line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope (the paper's `A` when fitting `Vdd^{1/α}`).
    pub slope: f64,
    /// Fitted intercept (the paper's `B`).
    pub intercept: f64,
    /// Root-mean-square residual of the fit.
    pub rms_error: f64,
    /// Largest absolute residual over the samples.
    pub max_error: f64,
}

impl LineFit {
    /// Evaluates the fitted line at `x`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use optpower_numeric::fit_line;
    /// let fit = fit_line(&[(0.0, 1.0), (1.0, 3.0)])?;
    /// assert!((fit.eval(2.0) - 5.0).abs() < 1e-12);
    /// # Ok::<(), optpower_numeric::NumericError>(())
    /// ```
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope·x + intercept` to `(x, y)` samples by least squares.
///
/// Uses the centred closed form (`slope = cov(x,y)/var(x)`), which is
/// numerically stable for the narrow voltage ranges used here.
///
/// # Errors
///
/// * [`NumericError::InsufficientData`] with fewer than two samples,
/// * [`NumericError::NonFinite`] if any sample is NaN/∞ or all `x`
///   coincide (zero variance).
///
/// # Examples
///
/// ```
/// use optpower_numeric::fit_line;
/// // Perfect line: residuals vanish.
/// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
/// let fit = fit_line(&pts)?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.max_error < 1e-12);
/// # Ok::<(), optpower_numeric::NumericError>(())
/// ```
pub fn fit_line(samples: &[(f64, f64)]) -> Result<LineFit, NumericError> {
    if samples.len() < 2 {
        return Err(NumericError::InsufficientData {
            got: samples.len(),
            need: 2,
        });
    }
    if samples
        .iter()
        .any(|(x, y)| !x.is_finite() || !y.is_finite())
    {
        return Err(NumericError::NonFinite);
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = samples.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in samples {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx == 0.0 {
        return Err(NumericError::NonFinite);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let mut sq_sum = 0.0;
    let mut max_error: f64 = 0.0;
    for &(x, y) in samples {
        let r = (slope * x + intercept - y).abs();
        sq_sum += r * r;
        max_error = max_error.max(r);
    }
    Ok(LineFit {
        slope,
        intercept,
        rms_error: (sq_sum / n).sqrt(),
        max_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linspace;

    #[test]
    fn fits_exact_line() {
        let pts: Vec<_> = linspace(-3.0, 3.0, 50)
            .into_iter()
            .map(|x| (x, -0.5 * x + 4.0))
            .collect();
        let fit = fit_line(&pts).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert!(fit.rms_error < 1e-12);
    }

    #[test]
    fn fits_vdd_power_curve_like_paper() {
        // Eq. 7 shape for alpha = 1.5 over 0.3..0.9 V (Figure 2).
        let alpha = 1.5;
        let pts: Vec<_> = linspace(0.3, 0.9, 601)
            .into_iter()
            .map(|v| (v, v.powf(1.0 / alpha)))
            .collect();
        let fit = fit_line(&pts).unwrap();
        // The curve is concave; fit must sit within a few percent.
        assert!(fit.max_error < 0.02, "max err {}", fit.max_error);
        assert!(fit.slope > 0.0 && fit.intercept > 0.0);
    }

    #[test]
    fn rejects_single_point() {
        let err = fit_line(&[(1.0, 1.0)]).unwrap_err();
        assert!(matches!(err, NumericError::InsufficientData { .. }));
    }

    #[test]
    fn rejects_vertical_data() {
        let err = fit_line(&[(1.0, 1.0), (1.0, 2.0)]).unwrap_err();
        assert_eq!(err, NumericError::NonFinite);
    }

    #[test]
    fn rejects_nan_sample() {
        let err = fit_line(&[(0.0, 0.0), (f64::NAN, 1.0)]).unwrap_err();
        assert_eq!(err, NumericError::NonFinite);
    }

    #[test]
    fn residual_stats_consistent() {
        let pts = [(0.0, 0.0), (1.0, 1.2), (2.0, 1.8)];
        let fit = fit_line(&pts).unwrap();
        assert!(fit.max_error >= fit.rms_error);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fitting noiseless lines recovers slope and intercept exactly.
        #[test]
        fn recovers_noiseless_lines(m in -10.0f64..10.0, b in -10.0f64..10.0) {
            let pts: Vec<_> = (0..20).map(|i| {
                let x = i as f64 * 0.37;
                (x, m * x + b)
            }).collect();
            let fit = fit_line(&pts).unwrap();
            prop_assert!((fit.slope - m).abs() < 1e-8);
            prop_assert!((fit.intercept - b).abs() < 1e-8);
        }

        /// Least squares never beats itself: perturbing (slope, intercept)
        /// can only raise the sum of squared residuals.
        #[test]
        fn is_least_squares_optimal(seed in 0u64..1000) {
            let pts: Vec<_> = (0..15).map(|i| {
                let x = i as f64;
                let noise = (((seed.wrapping_mul(6364136223846793005).wrapping_add(i)) % 100) as f64) / 50.0 - 1.0;
                (x, 0.7 * x + noise)
            }).collect();
            let fit = fit_line(&pts).unwrap();
            let sse = |s: f64, c: f64| pts.iter().map(|&(x, y)| (s * x + c - y).powi(2)).sum::<f64>();
            let best = sse(fit.slope, fit.intercept);
            prop_assert!(best <= sse(fit.slope + 0.01, fit.intercept) + 1e-9);
            prop_assert!(best <= sse(fit.slope - 0.01, fit.intercept) + 1e-9);
            prop_assert!(best <= sse(fit.slope, fit.intercept + 0.01) + 1e-9);
            prop_assert!(best <= sse(fit.slope, fit.intercept - 0.01) + 1e-9);
        }
    }
}
