//! Numerical routines backing the `optpower` model crates.
//!
//! Everything the paper's calculations need and nothing more:
//!
//! * [`bisect`] and [`brent`] — 1-D root finding (used to invert the
//!   timing-closure constraint and for reverse calibration),
//! * [`golden_section_min`] and [`grid_min`] — 1-D minimisation (the
//!   optimal-Vdd search along the constraint curve; the grid variant
//!   mirrors the paper's "all reasonable Vdd/Vth couples" sweep),
//! * [`fit_line`] — closed-form least-squares line fit (the Eq. 7
//!   linearisation `Vdd^(1/α) ≈ A·Vdd + B`),
//! * [`linspace`] — uniform sampling helper shared by fits and sweeps.
//!
//! # Examples
//!
//! ```
//! use optpower_numeric::golden_section_min;
//! let m = golden_section_min(|x| (x - 2.0).powi(2), 0.0, 5.0, 1e-12)?;
//! assert!((m.x - 2.0).abs() < 1e-6);
//! # Ok::<(), optpower_numeric::NumericError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod minimize;
mod roots;

pub use fit::{fit_line, LineFit};
pub use minimize::{golden_section_min, grid_min, Minimum};
pub use roots::{bisect, brent};

use core::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// The supplied bracket `[a, b]` does not satisfy the routine's
    /// precondition (e.g. `a >= b`, or no sign change for root finding).
    InvalidBracket {
        /// Lower end of the offending bracket.
        a: f64,
        /// Upper end of the offending bracket.
        b: f64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The iteration limit was reached before the tolerance was met.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The objective or its inputs produced a non-finite value.
    NonFinite,
    /// Not enough samples to perform the requested fit.
    InsufficientData {
        /// Samples provided.
        got: usize,
        /// Samples required.
        need: usize,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBracket { a, b, reason } => {
                write!(f, "invalid bracket [{a}, {b}]: {reason}")
            }
            Self::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            Self::NonFinite => write!(f, "objective produced a non-finite value"),
            Self::InsufficientData { got, need } => {
                write!(f, "insufficient data: got {got} samples, need {need}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

/// `n` uniformly spaced samples covering `[a, b]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` — a "range" of fewer than two samples is a logic
/// error at every call site in this workspace.
///
/// # Examples
///
/// ```
/// let xs = optpower_numeric::linspace(0.0, 1.0, 5);
/// assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace requires at least 2 samples, got {n}");
    let step = (b - a) / (n - 1) as f64;
    (0..n)
        .map(|i| if i == n - 1 { b } else { a + step * i as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_exact() {
        let xs = linspace(0.3, 1.0, 701);
        assert_eq!(xs.len(), 701);
        assert_eq!(xs[0], 0.3);
        assert_eq!(*xs.last().unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn linspace_rejects_single_sample() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = NumericError::InvalidBracket {
            a: 1.0,
            b: 0.0,
            reason: "a >= b",
        };
        assert!(e.to_string().contains("invalid bracket"));
        assert!(NumericError::NonFinite.to_string().contains("non-finite"));
    }
}
