//! 1-D minimisation: golden-section search and exhaustive grid sweep.

use crate::{linspace, NumericError};

/// Result of a 1-D minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Abscissa of the minimum.
    pub x: f64,
    /// Objective value at [`Minimum::x`].
    pub value: f64,
}

const INV_PHI: f64 = 0.618_033_988_749_894_9; // (sqrt(5) - 1) / 2
const MAX_ITER: usize = 400;

/// Minimises a unimodal `f` over `[a, b]` by golden-section search.
///
/// This is the production path for the optimal-Vdd search: the total
/// power along the timing-closure curve is unimodal in Vdd (convex
/// dynamic term plus a decreasing-then-flat exponential static term).
///
/// # Errors
///
/// * [`NumericError::InvalidBracket`] if `a >= b`,
/// * [`NumericError::NonFinite`] if `f` returns NaN/∞ inside the bracket,
/// * [`NumericError::NoConvergence`] if the bracket fails to shrink to
///   `tol` (practically unreachable: the bracket shrinks geometrically).
///
/// # Examples
///
/// ```
/// use optpower_numeric::golden_section_min;
/// let m = golden_section_min(|x| (x - 0.478).powi(2) + 1.0, 0.1, 1.2, 1e-10)?;
/// assert!((m.x - 0.478).abs() < 1e-6);
/// assert!((m.value - 1.0).abs() < 1e-10);
/// # Ok::<(), optpower_numeric::NumericError>(())
/// ```
pub fn golden_section_min(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<Minimum, NumericError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
    if !(a < b) {
        return Err(NumericError::InvalidBracket {
            a,
            b,
            reason: "a must be strictly less than b",
        });
    }
    let (mut lo, mut hi) = (a, b);
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    if !f1.is_finite() || !f2.is_finite() {
        return Err(NumericError::NonFinite);
    }
    let mut iterations = 0;
    while (hi - lo) > tol {
        iterations += 1;
        if iterations > MAX_ITER {
            return Err(NumericError::NoConvergence {
                iterations: MAX_ITER,
            });
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
            if !f1.is_finite() {
                return Err(NumericError::NonFinite);
            }
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
            if !f2.is_finite() {
                return Err(NumericError::NonFinite);
            }
        }
    }
    let x = 0.5 * (lo + hi);
    Ok(Minimum { x, value: f(x) })
}

/// Minimises `f` over `[a, b]` by evaluating `n` uniform grid points.
///
/// Mirrors the paper's numerical procedure ("calculating the total
/// power for all reasonable Vdd/Vth couples") and is used in the
/// ablation benches to quantify the grid-resolution error of that
/// approach against [`golden_section_min`]. Non-finite objective values
/// are skipped, so a partially-defined objective (e.g. negative
/// gate overdrive at very low Vdd) is acceptable.
///
/// # Errors
///
/// * [`NumericError::InvalidBracket`] if `a >= b`,
/// * [`NumericError::InsufficientData`] if `n < 2`,
/// * [`NumericError::NonFinite`] if *every* grid point is non-finite.
///
/// # Examples
///
/// ```
/// use optpower_numeric::grid_min;
/// let m = grid_min(|x| (x - 0.5).abs(), 0.0, 1.0, 101)?;
/// assert_eq!(m.x, 0.5);
/// # Ok::<(), optpower_numeric::NumericError>(())
/// ```
pub fn grid_min(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    n: usize,
) -> Result<Minimum, NumericError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
    if !(a < b) {
        return Err(NumericError::InvalidBracket {
            a,
            b,
            reason: "a must be strictly less than b",
        });
    }
    if n < 2 {
        return Err(NumericError::InsufficientData { got: n, need: 2 });
    }
    let mut best: Option<Minimum> = None;
    for x in linspace(a, b, n) {
        let value = f(x);
        if !value.is_finite() {
            continue;
        }
        if best.is_none_or(|m| value < m.value) {
            best = Some(Minimum { x, value });
        }
    }
    best.ok_or(NumericError::NonFinite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_parabola() {
        let m = golden_section_min(|x| (x - 2.0).powi(2), -5.0, 5.0, 1e-12).unwrap();
        assert!((m.x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn golden_asymmetric_objective() {
        // Shaped like Ptot(Vdd): quadratic + decaying exponential.
        let f = |v: f64| v * v + 0.3 * (-v / 0.05).exp();
        let m = golden_section_min(f, 0.05, 1.2, 1e-12).unwrap();
        // Analytic stationary point: 2v = 6 exp(-v/0.05).
        let g = |v: f64| 2.0 * v - 6.0 * (-v / 0.05).exp();
        let root = crate::bisect(g, 0.05, 1.2, 1e-13).unwrap();
        assert!((m.x - root).abs() < 1e-6, "m.x={} root={}", m.x, root);
    }

    #[test]
    fn golden_rejects_bad_bracket() {
        let err = golden_section_min(|x| x, 1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, NumericError::InvalidBracket { .. }));
    }

    #[test]
    fn golden_propagates_nan() {
        let err = golden_section_min(|_| f64::NAN, 0.0, 1.0, 1e-9).unwrap_err();
        assert_eq!(err, NumericError::NonFinite);
    }

    #[test]
    fn grid_finds_endpoint_minimum() {
        let m = grid_min(|x| x, 0.0, 1.0, 11).unwrap();
        assert_eq!(m.x, 0.0);
        assert_eq!(m.value, 0.0);
    }

    #[test]
    fn grid_skips_non_finite_points() {
        // Objective undefined (NaN) below 0.3 — like negative overdrive.
        let f = |x: f64| if x < 0.3 { f64::NAN } else { (x - 0.5).powi(2) };
        let m = grid_min(f, 0.0, 1.0, 1001).unwrap();
        assert!((m.x - 0.5).abs() < 1e-3);
    }

    #[test]
    fn grid_all_nan_is_error() {
        let err = grid_min(|_| f64::NAN, 0.0, 1.0, 11).unwrap_err();
        assert_eq!(err, NumericError::NonFinite);
    }

    #[test]
    fn grid_approaches_golden_with_resolution() {
        let f = |x: f64| (x - 0.333).powi(2);
        let g = golden_section_min(f, 0.0, 1.0, 1e-12).unwrap();
        let coarse = grid_min(f, 0.0, 1.0, 11).unwrap();
        let fine = grid_min(f, 0.0, 1.0, 100_001).unwrap();
        assert!((fine.x - g.x).abs() < (coarse.x - g.x).abs());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Golden-section must locate the vertex of any parabola within the bracket.
        #[test]
        fn golden_finds_parabola_vertex(c in -4.9f64..4.9) {
            let m = golden_section_min(|x| (x - c).powi(2), -5.0, 5.0, 1e-12).unwrap();
            prop_assert!((m.x - c).abs() < 1e-6);
        }

        /// Grid minimum is never above the objective at any grid point we re-evaluate.
        #[test]
        fn grid_min_is_global_over_grid(c in -0.9f64..0.9, n in 3usize..300) {
            let f = |x: f64| (x - c).powi(2) + 0.1 * x;
            let m = grid_min(f, -1.0, 1.0, n).unwrap();
            for x in crate::linspace(-1.0, 1.0, n) {
                prop_assert!(m.value <= f(x) + 1e-15);
            }
        }
    }
}
