//! [`PowerModel`]: one architecture, one technology, one frequency —
//! and everything the paper computes about that combination.

use optpower_numeric::{golden_section_min, grid_min};
use optpower_tech::{Linearization, Technology};
use optpower_units::{Hertz, Volts, Watts};

use crate::{ArchParams, ClosedFormSolution, ModelError, PowerBreakdown, TimingConstraint};

/// One working point on the timing-closure curve, with its power split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    vdd: Volts,
    vth: Volts,
    breakdown: PowerBreakdown,
}

impl OperatingPoint {
    /// Supply voltage of this working point.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Threshold voltage of this working point.
    pub fn vth(&self) -> Volts {
        self.vth
    }

    /// Dynamic/static power split at this point.
    pub fn breakdown(&self) -> PowerBreakdown {
        self.breakdown
    }

    /// Total power at this point (Eq. 1).
    pub fn ptot(&self) -> Watts {
        self.breakdown.total()
    }

    /// Energy per data item at throughput `f`: `Ptot / f`, in joules.
    ///
    /// The figure of merit used when comparing designs across
    /// frequencies (power alone penalises faster clocks).
    pub fn energy_per_item(&self, f: Hertz) -> f64 {
        self.breakdown.total().value() / f.value()
    }
}

impl core::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Vdd = {}, Vth = {}, Ptot = {} (dyn/stat = {:.2})",
            self.vdd,
            self.vth,
            self.breakdown.total(),
            self.breakdown.dyn_static_ratio()
        )
    }
}

/// Search-window configuration for [`PowerModel::optimize_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Lower end of the Vdd search window.
    pub vdd_min: Volts,
    /// Upper end of the Vdd search window.
    pub vdd_max: Volts,
    /// Absolute Vdd tolerance of the golden-section refinement.
    pub tolerance: f64,
    /// Number of coarse bracketing samples before refinement.
    pub coarse_samples: usize,
}

impl Default for OptimizerConfig {
    /// Covers 50 mV up to 1.5 V at sub-µV resolution — wide enough for
    /// every architecture/technology combination in the paper
    /// (the slowest design, the basic sequential multiplier, optimises
    /// at 0.824 V).
    fn default() -> Self {
        Self {
            vdd_min: Volts::new(0.05),
            vdd_max: Volts::new(1.5),
            tolerance: 1e-7,
            coarse_samples: 512,
        }
    }
}

/// The paper's model for one circuit: Eq. 1 total power constrained by
/// the Eq. 5 timing-closure curve.
///
/// Build it either from first principles ([`PowerModel::from_technology`],
/// which derives `χ` from Eq. 6) or from a known optimal point via the
/// calibration helpers in [`crate::calibrate`].
#[derive(Debug, Clone)]
pub struct PowerModel {
    tech: Technology,
    arch: ArchParams,
    freq: Hertz,
    constraint: TimingConstraint,
    lin: Linearization,
}

impl PowerModel {
    /// Builds a model deriving the timing constraint from the
    /// technology's `ζ`, `Io` and `α` (Eq. 6).
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidFrequency`] for a non-positive frequency,
    /// * [`ModelError::Numeric`] if the Eq. 7 linearisation fails
    ///   (cannot happen for valid `α`).
    pub fn from_technology(
        tech: Technology,
        arch: ArchParams,
        freq: Hertz,
    ) -> Result<Self, ModelError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
        if !(freq.value() > 0.0) || !freq.value().is_finite() {
            return Err(ModelError::InvalidFrequency {
                hertz: freq.value(),
            });
        }
        let constraint = TimingConstraint::from_technology(&tech, arch.logical_depth(), freq);
        Self::with_constraint(tech, arch, freq, constraint)
    }

    /// Builds a model from an explicit (typically calibrated) timing
    /// constraint, bypassing Eq. 6.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PowerModel::from_technology`].
    pub fn with_constraint(
        tech: Technology,
        arch: ArchParams,
        freq: Hertz,
        constraint: TimingConstraint,
    ) -> Result<Self, ModelError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
        if !(freq.value() > 0.0) || !freq.value().is_finite() {
            return Err(ModelError::InvalidFrequency {
                hertz: freq.value(),
            });
        }
        let lin = Linearization::fit_paper_range(constraint.alpha())?;
        Self::with_linearization(tech, arch, freq, constraint, lin)
    }

    /// Builds a model from an explicit constraint *and* a pre-fitted
    /// Eq. 7 linearisation.
    ///
    /// [`Linearization::fit_paper_range`] is a pure function of the
    /// constraint's `α`, so callers evaluating many models that share a
    /// technology (the parallel exploration engine in
    /// `optpower-explore`) can fit once per `α` and reuse the result —
    /// the model produced is bit-identical to the one
    /// [`PowerModel::with_constraint`] would build.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidFrequency`] for a non-positive frequency,
    /// * [`ModelError::InvalidCalibration`] if `lin` was fitted for a
    ///   different `α` than the constraint's.
    pub fn with_linearization(
        tech: Technology,
        arch: ArchParams,
        freq: Hertz,
        constraint: TimingConstraint,
        lin: Linearization,
    ) -> Result<Self, ModelError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
        if !(freq.value() > 0.0) || !freq.value().is_finite() {
            return Err(ModelError::InvalidFrequency {
                hertz: freq.value(),
            });
        }
        if lin.alpha() != constraint.alpha() {
            return Err(ModelError::InvalidCalibration {
                reason: "linearization alpha does not match the timing constraint",
            });
        }
        Ok(Self {
            tech,
            arch,
            freq,
            constraint,
            lin,
        })
    }

    /// The technology this model evaluates in.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The architecture parameter set.
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// The throughput frequency `f`.
    pub fn freq(&self) -> Hertz {
        self.freq
    }

    /// The timing-closure constraint in effect.
    pub fn constraint(&self) -> TimingConstraint {
        self.constraint
    }

    /// The Eq. 7 linearisation used by the closed form.
    pub fn linearization(&self) -> Linearization {
        self.lin
    }

    /// Evaluates Eq. 1 at an arbitrary `(Vdd, Vth)` couple:
    /// `Ptot = N·a·C·f·Vdd² + N·Vdd·Io·exp(−Vth/(n·Ut))`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use optpower::{ArchParams, PowerModel};
    /// # use optpower_tech::{Flavor, Technology};
    /// # use optpower_units::{Farads, Hertz, Volts};
    /// # let arch = ArchParams::builder("RCA").cells(608).activity(0.5056)
    /// #     .logical_depth(61.0).cap_per_cell(Farads::new(70.5e-15)).build()?;
    /// # let m = PowerModel::from_technology(
    /// #     Technology::stm_cmos09(Flavor::LowLeakage), arch, Hertz::new(31.25e6))?;
    /// let p = m.power_at(Volts::new(1.2), Volts::new(0.354));
    /// assert!(p.pdyn().value() > 0.0 && p.pstat().value() > 0.0);
    /// # Ok::<(), optpower::ModelError>(())
    /// ```
    pub fn power_at(&self, vdd: Volts, vth: Volts) -> PowerBreakdown {
        let a = self.arch.activity();
        let n = self.arch.cells();
        let c = self.arch.cap_per_cell().value();
        let pdyn = n * a * c * self.freq.value() * vdd.value() * vdd.value();
        let pstat = n * vdd.value() * self.tech.off_current(vth).value();
        PowerBreakdown::new(Watts::new(pdyn), Watts::new(pstat))
    }

    /// Evaluates Eq. 1 on the timing-closure curve at `vdd`
    /// (i.e. with `Vth = Vth(Vdd)` from Eq. 5).
    pub fn power_on_curve(&self, vdd: Volts) -> PowerBreakdown {
        self.power_at(vdd, self.constraint.vth_at(vdd))
    }

    /// The working point on the timing-closure curve at `vdd`.
    pub fn point_on_curve(&self, vdd: Volts) -> OperatingPoint {
        let vth = self.constraint.vth_at(vdd);
        OperatingPoint {
            vdd,
            vth,
            breakdown: self.power_at(vdd, vth),
        }
    }

    /// Finds the optimal working point numerically with the default
    /// search window.
    ///
    /// This is the reference computation the paper validates Eq. 13
    /// against: coarse bracketing over the window followed by
    /// golden-section refinement of the (unimodal) total power along
    /// the constraint curve.
    ///
    /// # Errors
    ///
    /// [`ModelError::Numeric`] if the search window is degenerate or
    /// the objective is non-finite everywhere in it.
    pub fn optimize(&self) -> Result<OperatingPoint, ModelError> {
        self.optimize_with(OptimizerConfig::default())
    }

    /// [`PowerModel::optimize`] with an explicit search window.
    ///
    /// # Errors
    ///
    /// See [`PowerModel::optimize`].
    pub fn optimize_with(&self, config: OptimizerConfig) -> Result<OperatingPoint, ModelError> {
        let objective = |v: f64| self.power_on_curve(Volts::new(v)).total().value();
        // Coarse pass to bracket the basin, robust to any residual
        // non-unimodality at the window edges.
        let coarse = grid_min(
            objective,
            config.vdd_min.value(),
            config.vdd_max.value(),
            config.coarse_samples.max(3),
        )?;
        let step =
            (config.vdd_max - config.vdd_min).value() / (config.coarse_samples.max(3) - 1) as f64;
        let lo = (coarse.x - 2.0 * step).max(config.vdd_min.value());
        let hi = (coarse.x + 2.0 * step).min(config.vdd_max.value());
        let refined = golden_section_min(objective, lo, hi, config.tolerance)?;
        Ok(self.point_on_curve(Volts::new(refined.x)))
    }

    /// Paper-style exhaustive sweep: evaluates Eq. 1 on a 2-D grid of
    /// `(Vdd, Vth)` couples, keeping only couples that close timing
    /// (`LD·t_gate ≤ 1/f`), and returns the cheapest.
    ///
    /// This mirrors the paper's "calculating the total power for all
    /// reasonable Vdd/Vth couples" and is used by the ablation bench to
    /// quantify grid-resolution error versus [`PowerModel::optimize`].
    ///
    /// Note: timing feasibility is checked with the *technology* delay
    /// model (Eqs. 4–6 via `χ`), so the result is consistent with the
    /// curve-based optimiser by construction.
    ///
    /// # Errors
    ///
    /// [`ModelError::Numeric`] if no grid point closes timing.
    pub fn optimize_grid2d(
        &self,
        n_vdd: usize,
        n_vth: usize,
        config: OptimizerConfig,
    ) -> Result<OperatingPoint, ModelError> {
        let mut best: Option<OperatingPoint> = None;
        for vdd in
            optpower_numeric::linspace(config.vdd_min.value(), config.vdd_max.value(), n_vdd.max(2))
        {
            let vdd_v = Volts::new(vdd);
            // Timing closes iff vth <= vth_curve(vdd).
            let vth_max = self.constraint.vth_at(vdd_v).value();
            for vth in optpower_numeric::linspace(-0.2, 0.6, n_vth.max(2)) {
                if vth > vth_max {
                    continue;
                }
                let bd = self.power_at(vdd_v, Volts::new(vth));
                if !bd.total().value().is_finite() {
                    continue;
                }
                if best.is_none_or(|b| bd.total().value() < b.ptot().value()) {
                    best = Some(OperatingPoint {
                        vdd: vdd_v,
                        vth: Volts::new(vth),
                        breakdown: bd,
                    });
                }
            }
        }
        best.ok_or(ModelError::Numeric(
            optpower_numeric::NumericError::NonFinite,
        ))
    }

    /// The closed-form solution (Eqs. 9, 10 and 13).
    ///
    /// # Errors
    ///
    /// * [`ModelError::ArchitectureTooSlow`] when `χ·A ≥ 1` — the
    ///   architecture cannot close timing anywhere in the linearised
    ///   voltage range,
    /// * [`ModelError::DegenerateLogArgument`] when the Eq. 10
    ///   logarithm argument is non-positive.
    pub fn closed_form(&self) -> Result<ClosedFormSolution, ModelError> {
        ClosedFormSolution::solve(self)
    }

    /// Sweeps `Ptot(Vdd)` along the timing-closure curve — the data
    /// behind each Figure 1 curve.
    ///
    /// Returns `(Vdd, PowerBreakdown)` pairs at `n` uniform samples.
    pub fn sweep_curve(&self, lo: Volts, hi: Volts, n: usize) -> Vec<(Volts, PowerBreakdown)> {
        optpower_numeric::linspace(lo.value(), hi.value(), n.max(2))
            .into_iter()
            .map(|v| (Volts::new(v), self.power_on_curve(Volts::new(v))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_tech::Flavor;
    use optpower_units::Farads;

    fn rca_model() -> PowerModel {
        let arch = ArchParams::builder("RCA")
            .cells(608)
            .activity(0.5056)
            .logical_depth(61.0)
            .cap_per_cell(Farads::new(70.5e-15))
            .build()
            .unwrap();
        PowerModel::from_technology(
            Technology::stm_cmos09(Flavor::LowLeakage),
            arch,
            Hertz::new(31.25e6),
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_frequency() {
        let arch = rca_model().arch().clone();
        let err = PowerModel::from_technology(
            Technology::stm_cmos09(Flavor::LowLeakage),
            arch,
            Hertz::new(0.0),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidFrequency { .. }));
    }

    #[test]
    fn eq1_evaluates_both_terms() {
        let m = rca_model();
        let p = m.power_at(Volts::new(1.2), Volts::new(0.354));
        // Pdyn = N a C f Vdd^2.
        let expect = 608.0 * 0.5056 * 70.5e-15 * 31.25e6 * 1.44;
        assert!((p.pdyn().value() - expect).abs() / expect < 1e-12);
        assert!(p.pstat().value() > 0.0);
    }

    #[test]
    fn dynamic_power_quadratic_in_vdd() {
        let m = rca_model();
        let p1 = m.power_at(Volts::new(0.5), Volts::new(0.3));
        let p2 = m.power_at(Volts::new(1.0), Volts::new(0.3));
        assert!((p2.pdyn().value() / p1.pdyn().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn optimum_is_interior_and_stationary() {
        let m = rca_model();
        let opt = m.optimize().unwrap();
        let cfg = OptimizerConfig::default();
        assert!(opt.vdd() > cfg.vdd_min && opt.vdd() < cfg.vdd_max);
        // Neighbouring points on the curve are no cheaper.
        let eps = 1e-4;
        let left = m.power_on_curve(opt.vdd() - Volts::new(eps)).total();
        let right = m.power_on_curve(opt.vdd() + Volts::new(eps)).total();
        assert!(opt.ptot().value() <= left.value() + 1e-15);
        assert!(opt.ptot().value() <= right.value() + 1e-15);
    }

    #[test]
    fn optimum_beats_nominal_point() {
        // The whole premise: the optimal point consumes far less than
        // running at nominal voltages.
        let m = rca_model();
        let opt = m.optimize().unwrap();
        let nominal = m.power_at(m.tech().vdd_nom(), m.tech().vth0_nom());
        assert!(opt.ptot().value() < nominal.total().value());
    }

    #[test]
    fn lower_activity_lowers_optimal_power_and_raises_vdd_vth() {
        // Figure 1's observation: reducing activity reduces Ptot while
        // increasing the optimal Vdd and Vth.
        let m = rca_model();
        let arch_low = m.arch().clone().with_activity(0.05056).unwrap();
        let m_low = PowerModel::from_technology(*m.tech(), arch_low, m.freq()).unwrap();
        let opt = m.optimize().unwrap();
        let opt_low = m_low.optimize().unwrap();
        assert!(opt_low.ptot().value() < opt.ptot().value());
        assert!(opt_low.vdd() > opt.vdd());
        assert!(opt_low.vth() > opt.vth());
    }

    #[test]
    fn grid2d_agrees_with_curve_optimizer() {
        let m = rca_model();
        let opt = m.optimize().unwrap();
        let grid = m
            .optimize_grid2d(400, 400, OptimizerConfig::default())
            .unwrap();
        let rel = (grid.ptot().value() - opt.ptot().value()) / opt.ptot().value();
        // Grid can only be >= the continuous optimum, and close to it.
        assert!(rel >= -1e-9, "rel = {rel}");
        assert!(rel < 0.02, "rel = {rel}");
    }

    #[test]
    fn grid2d_optimal_vth_sits_on_constraint() {
        // At the 2-D optimum there is no slack: Vth is (one grid step
        // below) the timing-closure curve.
        let m = rca_model();
        let grid = m
            .optimize_grid2d(300, 300, OptimizerConfig::default())
            .unwrap();
        let vth_curve = m.constraint().vth_at(grid.vdd());
        let step = 0.8 / 299.0;
        assert!(grid.vth().value() <= vth_curve.value() + 1e-12);
        assert!(grid.vth().value() > vth_curve.value() - 2.0 * step);
    }

    #[test]
    fn sweep_curve_contains_minimum() {
        let m = rca_model();
        let opt = m.optimize().unwrap();
        let sweep = m.sweep_curve(Volts::new(0.2), Volts::new(1.2), 2001);
        let min_sweep = sweep
            .iter()
            .map(|(_, p)| p.total().value())
            .fold(f64::INFINITY, f64::min);
        assert!((min_sweep - opt.ptot().value()) / opt.ptot().value() < 1e-4);
    }

    #[test]
    fn with_linearization_is_bit_identical_to_with_constraint() {
        let m = rca_model();
        let cached = PowerModel::with_linearization(
            *m.tech(),
            m.arch().clone(),
            m.freq(),
            m.constraint(),
            m.linearization(),
        )
        .unwrap();
        assert_eq!(m.optimize().unwrap(), cached.optimize().unwrap());
        assert_eq!(m.closed_form().unwrap(), cached.closed_form().unwrap());
    }

    #[test]
    fn with_linearization_rejects_alpha_mismatch() {
        let m = rca_model();
        let other = Linearization::fit_paper_range(m.constraint().alpha() * 1.1).unwrap();
        let err = PowerModel::with_linearization(
            *m.tech(),
            m.arch().clone(),
            m.freq(),
            m.constraint(),
            other,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCalibration { .. }));
    }

    #[test]
    fn accessors() {
        let m = rca_model();
        assert_eq!(m.freq(), Hertz::new(31.25e6));
        assert_eq!(m.arch().name(), "RCA");
        assert!(m.constraint().chi() > 0.0);
        assert!(m.linearization().a() > 0.0);
    }

    #[test]
    fn energy_per_item_is_power_over_frequency() {
        let m = rca_model();
        let opt = m.optimize().unwrap();
        let e = opt.energy_per_item(m.freq());
        assert!((e - opt.ptot().value() / 31.25e6).abs() < 1e-24);
        // Around a few pJ/multiply at the optimum — the right order for
        // a 16-bit multiplier in 0.13 um.
        assert!(e > 1e-13 && e < 1e-10, "E = {e}");
    }

    #[test]
    fn operating_point_display() {
        let m = rca_model();
        let opt = m.optimize().unwrap();
        let s = opt.to_string();
        assert!(s.contains("Vdd") && s.contains("Ptot"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use optpower_tech::Flavor;
    use optpower_units::Farads;
    use proptest::prelude::*;

    fn model(activity: f64, ld: f64, cap_ff: f64) -> PowerModel {
        let arch = ArchParams::builder("prop")
            .cells(1000)
            .activity(activity)
            .logical_depth(ld)
            .cap_per_cell(Farads::new(cap_ff * 1e-15))
            .build()
            .unwrap();
        PowerModel::from_technology(
            Technology::stm_cmos09(Flavor::LowLeakage),
            arch,
            Hertz::new(31.25e6),
        )
        .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The numerical optimum is a global minimum over a fine sweep
        /// of the constraint curve, for a wide parameter family.
        #[test]
        fn optimum_is_global_on_curve(
            activity in 0.05f64..2.0,
            ld in 4.0f64..200.0,
            cap_ff in 10.0f64..120.0,
        ) {
            let m = model(activity, ld, cap_ff);
            let opt = m.optimize().unwrap();
            for (_, p) in m.sweep_curve(Volts::new(0.06), Volts::new(1.45), 500) {
                prop_assert!(opt.ptot().value() <= p.total().value() * (1.0 + 1e-9));
            }
        }

        /// Optimal total power increases monotonically with activity
        /// (first factor of Eq. 13).
        #[test]
        fn ptot_monotonic_in_activity(a1 in 0.05f64..0.9, ld in 8.0f64..100.0) {
            let a2 = a1 * 1.5;
            let m1 = model(a1, ld, 60.0);
            let m2 = model(a2, ld, 60.0);
            let p1 = m1.optimize().unwrap().ptot().value();
            let p2 = m2.optimize().unwrap().ptot().value();
            prop_assert!(p2 > p1);
        }

        /// A deeper logical depth (larger chi) can never reduce the
        /// optimal total power, all else equal.
        #[test]
        fn ptot_monotonic_in_depth(ld in 4.0f64..150.0) {
            let m1 = model(0.3, ld, 60.0);
            let m2 = model(0.3, ld * 1.5, 60.0);
            let p1 = m1.optimize().unwrap().ptot().value();
            let p2 = m2.optimize().unwrap().ptot().value();
            prop_assert!(p2 > p1);
        }
    }
}
