//! The total-power equation (Eq. 1) and its dynamic/static breakdown.

use optpower_units::Watts;

/// Dynamic + static power at one `(Vdd, Vth)` working point.
///
/// # Examples
///
/// ```
/// use optpower::PowerBreakdown;
/// use optpower_units::Watts;
///
/// let p = PowerBreakdown::new(Watts::new(154.86e-6), Watts::new(36.57e-6));
/// assert!((p.total().value() - 191.43e-6).abs() < 1e-9);
/// assert!((p.dyn_static_ratio() - 4.234).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    pdyn: Watts,
    pstat: Watts,
}

impl PowerBreakdown {
    /// Bundles a dynamic and a static power figure.
    pub fn new(pdyn: Watts, pstat: Watts) -> Self {
        Self { pdyn, pstat }
    }

    /// Dynamic (switching) power `N·a·C·f·Vdd²`.
    pub fn pdyn(&self) -> Watts {
        self.pdyn
    }

    /// Static (sub-threshold leakage) power `N·Vdd·Io·exp(−Vth/(n·Ut))`.
    pub fn pstat(&self) -> Watts {
        self.pstat
    }

    /// Total power `Pdyn + Pstat` (Eq. 1).
    pub fn total(&self) -> Watts {
        self.pdyn + self.pstat
    }

    /// The `Pdyn/Pstat` ratio annotated on Figure 1's optimal points.
    pub fn dyn_static_ratio(&self) -> f64 {
        self.pdyn.value() / self.pstat.value()
    }

    /// Fraction of the total that is static, in `[0, 1]`.
    pub fn static_fraction(&self) -> f64 {
        self.pstat.value() / self.total().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum() {
        let p = PowerBreakdown::new(Watts::new(3.0e-6), Watts::new(1.0e-6));
        assert!((p.total().value() - 4.0e-6).abs() < 1e-18);
    }

    #[test]
    fn ratio_and_fraction_consistent() {
        let p = PowerBreakdown::new(Watts::new(3.0), Watts::new(1.0));
        assert!((p.dyn_static_ratio() - 3.0).abs() < 1e-12);
        assert!((p.static_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table1_rca_breakdown() {
        // RCA row: Pdyn = 154.86 uW, Pstat = 36.57 uW, Ptot = 191.44 uW.
        let p = PowerBreakdown::new(Watts::new(154.86e-6), Watts::new(36.57e-6));
        assert!((p.total().value() * 1e6 - 191.43).abs() < 0.02);
        // The paper's Figure 1 annotates ratios around 4-5 at optimum.
        assert!(p.dyn_static_ratio() > 3.0 && p.dyn_static_ratio() < 6.0);
    }
}
