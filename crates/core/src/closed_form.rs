//! The closed-form optimal working point: Eqs. 9–13.
//!
//! Derivation recap (Section 3 of the paper): linearising
//! `Vdd^{1/α} ≈ A·Vdd + B` (Eq. 7) turns the timing-closure curve into
//! `Vth ≈ Vdd·(1−χA) − χB` (Eq. 8). Setting `dPtot/dVdd = 0` under the
//! `Vdd ≫ n·Ut` approximation yields
//!
//! ```text
//! Io·exp(−Vth_opt/(n·Ut)) = 2·a·C·f·n·Ut / (1−χA)          (Eq. 9)
//! Vdd_opt = [n·Ut·ln(Io·(1−χA)/(2aCf·n·Ut)) + χB] / (1−χA) (Eq. 10)
//! Ptot_opt ≈ aCNf/(1−χA)² · [n·Ut·(ln(·)+1) + χB]²          (Eq. 13)
//! ```

use optpower_units::{Volts, Watts};

use crate::{ModelError, PowerModel};

/// The closed-form optimum of Eqs. 9, 10 and 13, with the intermediate
/// quantities exposed for inspection (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedFormSolution {
    /// Optimal supply voltage, Eq. 10.
    pub vdd: Volts,
    /// Optimal threshold voltage, from Eq. 9 (`Vth_opt = n·Ut·ln(arg)`).
    pub vth: Volts,
    /// Optimal total power, Eq. 13.
    pub ptot: Watts,
    /// Total power by Eq. 11 (`NaCf·Vdd·(Vdd + 2nUt/(1−χA))`),
    /// the pre-`Vdd ≫ n·Ut` form, evaluated at [`ClosedFormSolution::vdd`].
    pub ptot_eq11: Watts,
    /// Total power by Eq. 12 (`NaCf·(Vdd + nUt/(1−χA))²`), evaluated at
    /// [`ClosedFormSolution::vdd`].
    pub ptot_eq12: Watts,
    /// The timing coefficient `χ` used.
    pub chi: f64,
    /// Linearisation slope `A` (Eq. 7).
    pub a: f64,
    /// Linearisation intercept `B` (Eq. 7).
    pub b: f64,
    /// The denominator factor `1 − χA`; the architecture-speed measure
    /// Section 4 reasons with (small ⇒ slow architecture, penalised
    /// quadratically).
    pub one_minus_chi_a: f64,
    /// The Eq. 10 logarithm argument `Io·(1−χA)/(2aCf·n·Ut)`.
    pub log_argument: f64,
}

impl ClosedFormSolution {
    pub(crate) fn solve(model: &PowerModel) -> Result<Self, ModelError> {
        let lin = model.linearization();
        let chi = model.constraint().chi();
        let (a_lin, b_lin) = (lin.a(), lin.b());
        let one_minus_chi_a = 1.0 - chi * a_lin;
        if one_minus_chi_a <= 0.0 {
            return Err(ModelError::ArchitectureTooSlow { chi_a: chi * a_lin });
        }

        let tech = model.tech();
        let arch = model.arch();
        let n_ut = tech.n_ut().value();
        let acf = arch.activity() * arch.cap_per_cell().value() * model.freq().value();
        let log_argument = tech.io().value() * one_minus_chi_a / (2.0 * acf * n_ut);
        if log_argument <= 0.0 || !log_argument.is_finite() {
            return Err(ModelError::DegenerateLogArgument {
                argument: log_argument,
            });
        }
        let ln = log_argument.ln();
        let chi_b = chi * b_lin;

        // Eq. 10.
        let vdd = (n_ut * ln + chi_b) / one_minus_chi_a;
        // Eq. 9 rearranged: Vth_opt = n·Ut·ln(arg).
        let vth = n_ut * ln;
        // Eq. 13.
        let bracket = n_ut * (ln + 1.0) + chi_b;
        let prefactor = acf * arch.cells() / (one_minus_chi_a * one_minus_chi_a);
        let ptot = prefactor * bracket * bracket;
        // Eq. 11 / Eq. 12 at the same Vdd_opt (ablation references).
        let nacf = arch.cells() * acf;
        let ptot_eq11 = nacf * vdd * (vdd + 2.0 * n_ut / one_minus_chi_a);
        let half = vdd + n_ut / one_minus_chi_a;
        let ptot_eq12 = nacf * half * half;

        Ok(Self {
            vdd: Volts::new(vdd),
            vth: Volts::new(vth),
            ptot: Watts::new(ptot),
            ptot_eq11: Watts::new(ptot_eq11),
            ptot_eq12: Watts::new(ptot_eq12),
            chi,
            a: a_lin,
            b: b_lin,
            one_minus_chi_a,
            log_argument,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchParams, PowerModel, TimingConstraint};
    use optpower_tech::{Flavor, Technology};
    use optpower_units::{Amps, Farads, Hertz};

    /// A calibrated RCA model matching Table 1 row 1 (see DESIGN.md §2:
    /// chi from the printed optimal point, C from Pdyn, io_eff from Pstat).
    fn calibrated_rca() -> PowerModel {
        let tech = Technology::stm_cmos09(Flavor::LowLeakage);
        let (vdd, vth) = (Volts::new(0.478), Volts::new(0.213));
        let n = 608.0;
        let a = 0.5056;
        let f = 31.25e6;
        // C from Pdyn = N a C f Vdd^2.
        let c = 154.86e-6 / (n * a * f * vdd.value() * vdd.value());
        // io_eff from Pstat = N Vdd Io exp(-Vth/nUt).
        let io = 36.57e-6 / (n * vdd.value() * (-vth.value() / tech.n_ut().value()).exp());
        let arch = ArchParams::builder("RCA")
            .cells(608)
            .activity(a)
            .logical_depth(61.0)
            .cap_per_cell(Farads::new(c))
            .build()
            .unwrap();
        let constraint = TimingConstraint::from_optimal_point(vdd, vth, tech.alpha());
        PowerModel::with_constraint(tech.with_io(Amps::new(io)), arch, Hertz::new(f), constraint)
            .unwrap()
    }

    #[test]
    fn reproduces_table1_rca_eq13_column() {
        // Paper: Eq. 13 gives 191.09 uW for the RCA (numerical 191.44).
        let cf = calibrated_rca().closed_form().unwrap();
        let uw = cf.ptot.value() * 1e6;
        assert!((uw - 191.09).abs() < 2.0, "Eq13 Ptot = {uw} uW");
    }

    #[test]
    fn eq13_error_vs_numerical_below_3_percent() {
        let m = calibrated_rca();
        let cf = m.closed_form().unwrap();
        let num = m.optimize().unwrap();
        let err = (cf.ptot.value() - num.ptot().value()) / num.ptot().value();
        assert!(err.abs() < 0.03, "err = {}", err * 100.0);
    }

    #[test]
    fn closed_form_vdd_near_numerical() {
        let m = calibrated_rca();
        let cf = m.closed_form().unwrap();
        let num = m.optimize().unwrap();
        assert!(
            (cf.vdd.value() - num.vdd().value()).abs() < 0.02,
            "cf {} vs num {}",
            cf.vdd,
            num.vdd()
        );
    }

    #[test]
    fn eq9_identity_holds() {
        // Io·exp(−Vth_opt/nUt) == 2aCf·nUt/(1−χA) by construction.
        let m = calibrated_rca();
        let cf = m.closed_form().unwrap();
        let tech = m.tech();
        let lhs = tech.io().value() * (-cf.vth.value() / tech.n_ut().value()).exp();
        let rhs = 2.0
            * m.arch().activity()
            * m.arch().cap_per_cell().value()
            * m.freq().value()
            * tech.n_ut().value()
            / cf.one_minus_chi_a;
        assert!(((lhs - rhs) / rhs).abs() < 1e-9);
    }

    #[test]
    fn eq8_linearized_point_consistent() {
        // Vth_opt ≈ Vdd_opt (1−χA) − χB by Eq. 8.
        let cf = calibrated_rca().closed_form().unwrap();
        let vth_lin = cf.vdd.value() * cf.one_minus_chi_a - cf.chi * cf.b;
        assert!((vth_lin - cf.vth.value()).abs() < 1e-12);
    }

    #[test]
    fn eq11_12_13_agree_within_approximation_error() {
        // Eqs. 11→12→13 differ only by the Vdd >> nUt approximation at
        // the same point: they must agree to a few percent.
        let cf = calibrated_rca().closed_form().unwrap();
        let (p11, p12, p13) = (cf.ptot_eq11.value(), cf.ptot_eq12.value(), cf.ptot.value());
        assert!(((p12 - p11) / p11).abs() < 0.02);
        assert!(((p13 - p12) / p12).abs() < 1e-9); // Eq.13 = Eq.12 at Vdd_opt
        assert!(((p13 - p11) / p11).abs() < 0.02);
    }

    #[test]
    fn too_slow_architecture_is_detected() {
        // Enormous logical depth at high frequency → chi*A >= 1.
        let tech = Technology::stm_cmos09(Flavor::LowLeakage);
        let arch = ArchParams::builder("glacial")
            .cells(100)
            .activity(0.5)
            .logical_depth(10_000.0)
            .cap_per_cell(Farads::new(60e-15))
            .build()
            .unwrap();
        let m = PowerModel::from_technology(tech, arch, Hertz::new(500e6)).unwrap();
        let err = m.closed_form().unwrap_err();
        assert!(matches!(err, ModelError::ArchitectureTooSlow { .. }));
    }

    #[test]
    fn exposes_intermediates() {
        let cf = calibrated_rca().closed_form().unwrap();
        assert!(cf.chi > 0.0);
        assert!(cf.a > 0.0 && cf.b > 0.0);
        assert!(cf.one_minus_chi_a > 0.0 && cf.one_minus_chi_a < 1.0);
        assert!(cf.log_argument > 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use crate::{ArchParams, PowerModel};
    use optpower_tech::{Flavor, Technology};
    use optpower_units::{Farads, Hertz};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The paper's headline claim, generalised: for physically
        /// plausible parameter combinations where the closed form is
        /// defined and its Vdd lands inside the linearisation range,
        /// Eq. 13 tracks the numerical optimum within a few percent.
        #[test]
        fn closed_form_tracks_numerical(
            activity in 0.08f64..1.2,
            ld in 8.0f64..120.0,
            cap_ff in 20.0f64..100.0,
            flavor_ix in 0usize..3,
        ) {
            let tech = Technology::stm_cmos09(Flavor::ALL[flavor_ix]);
            let arch = ArchParams::builder("prop")
                .cells(800)
                .activity(activity)
                .logical_depth(ld)
                .cap_per_cell(Farads::new(cap_ff * 1e-15))
                .build()
                .unwrap();
            let m = PowerModel::from_technology(tech, arch, Hertz::new(31.25e6)).unwrap();
            if let Ok(cf) = m.closed_form() {
                let num = m.optimize().unwrap();
                // Only score cases where the approximations apply: both
                // optima comfortably inside the Eq. 7 linearisation
                // range (the error grows toward the 0.3 V edge, where
                // both the fit residual and the Vdd >> n·Ut assumption
                // degrade; the paper's designs sit in 0.33-0.83 V).
                let in_range = |v: f64| (0.36..=1.0).contains(&v);
                if in_range(cf.vdd.value()) && in_range(num.vdd().value()) {
                    let err = (cf.ptot.value() - num.ptot().value()) / num.ptot().value();
                    prop_assert!(err.abs() < 0.08,
                        "err {}% at vdd_cf={} vdd_num={}",
                        err * 100.0, cf.vdd, num.vdd());
                }
            }
        }
    }
}
