//! Analytic sensitivities of the closed-form optimal power (Eq. 13).
//!
//! Section 4 reasons qualitatively about "the influence of architecture
//! on optimal power"; this module makes that quantitative: the
//! logarithmic sensitivities `S_x = ∂ln(Ptot)/∂ln(x)` of Eq. 13 with
//! respect to every architectural and technology parameter. A
//! sensitivity of 1 means "1 % more x costs 1 % more power".
//!
//! Derivation: write Eq. 13 as `Ptot = K·B²/(1−χA)²` with
//! `K = a·C·N·f`, `B = n·Ut·(ln(arg)+1) + χB_lin` and
//! `arg = Io·(1−χA)/(2·a·C·f·n·Ut)`. Then e.g. for the activity `a`
//! (which appears in `K` and in `arg`):
//!
//! ```text
//! S_a = 1 − 2·n·Ut / B
//! ```
//!
//! and for χ (through which `LD`, `f` and `ζ` act):
//!
//! ```text
//! dPtot/dχ = Ptot·[ 2A/(1−χA) + 2·(B_lin − n·Ut·A/(1−χA))/B ]
//! ```

use crate::{ClosedFormSolution, ModelError, PowerModel};

/// Logarithmic sensitivities of the Eq. 13 optimal power.
///
/// Each field is `∂ln(Ptot_opt)/∂ln(parameter)` evaluated at the
/// current model point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivities {
    /// To the activity `a` (also the per-cell capacitance `C`, which
    /// enters identically).
    pub activity: f64,
    /// To the cell count `N` (enters only the prefactor).
    pub cells: f64,
    /// To the logical depth `LD` (through `χ ∝ LD^{1/α}`).
    pub logical_depth: f64,
    /// To the frequency `f` (prefactor, log argument, and `χ`).
    pub frequency: f64,
    /// To the off-current `Io` (log argument and `χ`).
    pub io: f64,
}

impl Sensitivities {
    /// Computes the sensitivities at a model's closed-form optimum.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the closed form.
    pub fn at(model: &PowerModel) -> Result<Self, ModelError> {
        let cf = model.closed_form()?;
        Ok(Self::from_solution(model, &cf))
    }

    /// Computes the sensitivities from an existing solution.
    pub fn from_solution(model: &PowerModel, cf: &ClosedFormSolution) -> Self {
        let n_ut = model.tech().n_ut().value();
        let alpha = model.constraint().alpha();
        let chi = cf.chi;
        let a_lin = cf.a;
        let b_lin = cf.b;
        let one = cf.one_minus_chi_a;
        // The Eq. 13 bracket B = n·Ut·(ln(arg)+1) + χ·B_lin.
        let bracket = n_ut * (cf.log_argument.ln() + 1.0) + chi * b_lin;

        // d ln Ptot / d chi (χ enters 1/(1−χA)² and the bracket).
        let dln_dchi = 2.0 * a_lin / one + 2.0 * (b_lin - n_ut * a_lin / one) / bracket;

        // Activity (and C): prefactor exponent 1; arg ∝ 1/a.
        let s_activity = 1.0 - 2.0 * n_ut / bracket;
        // Cells: prefactor only.
        let s_cells = 1.0;
        // LD: only through chi, with chi ∝ LD^{1/α}.
        let s_ld = dln_dchi * chi / alpha;
        // Frequency: prefactor 1, arg ∝ 1/f, chi ∝ f^{1/α}.
        let s_f = 1.0 - 2.0 * n_ut / bracket + dln_dchi * chi / alpha;
        // Io: arg ∝ Io, chi ∝ Io^{-1/α}.
        let s_io = 2.0 * n_ut / bracket - dln_dchi * chi / alpha;

        Self {
            activity: s_activity,
            cells: s_cells,
            logical_depth: s_ld,
            frequency: s_f,
            io: s_io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchParams;
    use optpower_tech::{Flavor, Technology};
    use optpower_units::{Amps, Farads, Hertz};

    fn model(activity: f64, ld: f64) -> PowerModel {
        let arch = ArchParams::builder("sens")
            .cells(700)
            .activity(activity)
            .logical_depth(ld)
            .cap_per_cell(Farads::new(60e-15))
            .build()
            .unwrap();
        PowerModel::from_technology(
            Technology::stm_cmos09(Flavor::LowLeakage),
            arch,
            Hertz::new(31.25e6),
        )
        .unwrap()
    }

    /// Central finite difference of ln(Ptot) w.r.t. ln(x) using a
    /// model-rebuilding closure.
    fn fd(build: impl Fn(f64) -> PowerModel, x0: f64) -> f64 {
        let h = 1e-5;
        let hi = build(x0 * (1.0 + h)).closed_form().unwrap().ptot.value();
        let lo = build(x0 * (1.0 - h)).closed_form().unwrap().ptot.value();
        (hi.ln() - lo.ln()) / (2.0 * h)
    }

    #[test]
    fn activity_sensitivity_matches_finite_difference() {
        let m = model(0.5, 40.0);
        let s = Sensitivities::at(&m).unwrap();
        let num = fd(|a| model(a, 40.0), 0.5);
        assert!((s.activity - num).abs() < 1e-3, "{} vs {num}", s.activity);
    }

    #[test]
    fn depth_sensitivity_matches_finite_difference() {
        let m = model(0.5, 40.0);
        let s = Sensitivities::at(&m).unwrap();
        let num = fd(|ld| model(0.5, ld), 40.0);
        assert!(
            (s.logical_depth - num).abs() < 1e-3,
            "{} vs {num}",
            s.logical_depth
        );
    }

    #[test]
    fn frequency_sensitivity_matches_finite_difference() {
        let s = Sensitivities::at(&model(0.5, 40.0)).unwrap();
        let build = |f: f64| {
            let arch = ArchParams::builder("sens")
                .cells(700)
                .activity(0.5)
                .logical_depth(40.0)
                .cap_per_cell(Farads::new(60e-15))
                .build()
                .unwrap();
            PowerModel::from_technology(
                Technology::stm_cmos09(Flavor::LowLeakage),
                arch,
                Hertz::new(f),
            )
            .unwrap()
        };
        let num = fd(build, 31.25e6);
        assert!((s.frequency - num).abs() < 1e-3, "{} vs {num}", s.frequency);
    }

    #[test]
    fn io_sensitivity_matches_finite_difference() {
        let s = Sensitivities::at(&model(0.5, 40.0)).unwrap();
        let build = |io: f64| {
            let arch = ArchParams::builder("sens")
                .cells(700)
                .activity(0.5)
                .logical_depth(40.0)
                .cap_per_cell(Farads::new(60e-15))
                .build()
                .unwrap();
            let tech = Technology::stm_cmos09(Flavor::LowLeakage).with_io(Amps::new(io));
            // Keep chi fixed at the datasheet value: Io acts on the
            // leakage only in `with_io`, so compare against the
            // analytic formula's log-argument term alone.
            PowerModel::from_technology(tech, arch, Hertz::new(31.25e6)).unwrap()
        };
        let num = fd(build, 3.34e-6);
        // with_io changes chi too (from_technology re-derives), so this
        // matches the full formula including the chi term.
        assert!((s.io - num).abs() < 1e-3, "{} vs {num}", s.io);
    }

    #[test]
    fn cells_sensitivity_is_exactly_one() {
        let s = Sensitivities::at(&model(0.3, 30.0)).unwrap();
        assert!((s.cells - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qualitative_signs() {
        // More activity, depth, cells or frequency always costs power;
        // Io's sign depends on the leakage/speed trade: at the paper's
        // operating point more Io (faster gates) *reduces* chi more
        // than it adds leakage pressure.
        let s = Sensitivities::at(&model(0.5, 61.0)).unwrap();
        assert!(s.activity > 0.0);
        assert!(s.logical_depth > 0.0);
        assert!(s.frequency > 0.0);
        assert!(s.frequency > s.activity, "f acts through chi as well");
    }

    #[test]
    fn slow_architectures_are_depth_dominated() {
        // As chi*A -> 1 the depth sensitivity blows up — the paper's
        // "penalizing the total power ... in a square form on the
        // denominator".
        let shallow = Sensitivities::at(&model(0.5, 10.0)).unwrap();
        let deep = Sensitivities::at(&model(0.5, 200.0)).unwrap();
        assert!(deep.logical_depth > 3.0 * shallow.logical_depth);
    }
}
