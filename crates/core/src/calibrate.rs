//! Reverse calibration: recovering the paper's unpublished
//! per-architecture parameters from its published optimal points.
//!
//! The paper calibrated each architecture "starting from the values of
//! static and dynamic power at the nominal supply voltage" obtained
//! from a proprietary Synopsys/ModelSIM/ELDO flow. Those nominal values
//! are not printed — but every *optimal point* is. Because the optimal
//! point is a stationary point of Eq. 1 along the Eq. 5 curve, the
//! printed `(Vdd*, Vth*, …)` rows over-determine the per-architecture
//! unknowns, which can therefore be recovered exactly:
//!
//! * `χ` from Eq. 5 at the point: `χ = (Vdd*−Vth*)/Vdd*^{1/α}`,
//! * with the power **breakdown** printed (Table 1):
//!   `C = Pdyn/(N·a·f·Vdd*²)` and `io_eff = Pstat/(N·Vdd*·e^{−Vth*/nUt})`,
//! * with only the **total** printed (Tables 3–4): solve the 2×2 system
//!   {stationarity, `Pdyn+Pstat = Ptot`} for `(C, io_eff)` — closed
//!   form, see [`from_total`].

use optpower_tech::Technology;
use optpower_units::{Amps, Farads, Hertz, Volts, Watts};

use crate::{ArchParams, ModelError, PowerModel, TimingConstraint};

/// Per-architecture parameters recovered by reverse calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Equivalent per-cell capacitance `C`.
    pub cap_per_cell: Farads,
    /// Effective per-cell off-current absorbing the paper's
    /// unpublished leakage calibration (see DESIGN.md §2).
    pub io_eff: Amps,
    /// The timing-closure constraint through the published point.
    pub constraint: TimingConstraint,
}

/// Calibrates from a printed optimal point *with* its power breakdown
/// (the Table 1 situation).
///
/// # Errors
///
/// [`ModelError::InvalidCalibration`] if any power is non-positive or
/// the point does not satisfy `Vdd > Vth`.
///
/// # Examples
///
/// ```
/// use optpower::calibrate::from_breakdown;
/// use optpower_tech::{Flavor, Technology};
/// use optpower_units::{Hertz, Volts, Watts};
///
/// // Table 1, RCA row.
/// let cal = from_breakdown(
///     &Technology::stm_cmos09(Flavor::LowLeakage),
///     Volts::new(0.478), Volts::new(0.213),
///     Watts::new(154.86e-6), Watts::new(36.57e-6),
///     608.0, 0.5056, Hertz::new(31.25e6),
/// )?;
/// // Per-cell switched capacitance lands in the tens of fF.
/// assert!(cal.cap_per_cell.value() > 10e-15 && cal.cap_per_cell.value() < 200e-15);
/// # Ok::<(), optpower::ModelError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn from_breakdown(
    tech: &Technology,
    vdd: Volts,
    vth: Volts,
    pdyn: Watts,
    pstat: Watts,
    cells: f64,
    activity: f64,
    freq: Hertz,
) -> Result<Calibration, ModelError> {
    if pdyn.value() <= 0.0 || pstat.value() <= 0.0 {
        return Err(ModelError::InvalidCalibration {
            reason: "pdyn and pstat must be positive",
        });
    }
    if vdd.value() <= 0.0 || vdd <= vth {
        return Err(ModelError::InvalidCalibration {
            reason: "optimal point must satisfy vdd > vth and vdd > 0",
        });
    }
    let constraint = TimingConstraint::from_optimal_point(vdd, vth, tech.alpha());
    let c = pdyn.value() / (cells * activity * freq.value() * vdd.value() * vdd.value());
    let io = pstat.value() / (cells * vdd.value() * (-vth.value() / tech.n_ut().value()).exp());
    Ok(Calibration {
        cap_per_cell: Farads::new(c),
        io_eff: Amps::new(io),
        constraint,
    })
}

/// Calibrates from a printed optimal point with only the *total* power
/// (the Tables 3–4 situation).
///
/// Solves the 2×2 system in `(K, W)` with `K = N·a·C·f`, `W = N·io_eff`:
///
/// ```text
/// stationarity: 2·K·Vdd* + W·E·g = 0,   E = e^{−Vth*/nUt},
///                                        g = 1 − Vdd*·Vth'(Vdd*)/nUt
/// total:        K·Vdd*² + W·Vdd*·E = Ptot
/// ```
///
/// which gives `W = Ptot / (Vdd*·E·(1 − g/2))` and `K = −W·E·g/(2·Vdd*)`.
///
/// # Errors
///
/// [`ModelError::InvalidCalibration`] if `ptot` is non-positive, the
/// point is inverted, or `g ≥ 0` (the point cannot be a stationary
/// point of any Eq. 1 instance — leakage is not falling fast enough
/// along the curve there).
pub fn from_total(
    tech: &Technology,
    vdd: Volts,
    vth: Volts,
    ptot: Watts,
    cells: f64,
    activity: f64,
    freq: Hertz,
) -> Result<Calibration, ModelError> {
    if ptot.value() <= 0.0 {
        return Err(ModelError::InvalidCalibration {
            reason: "ptot must be positive",
        });
    }
    if vdd.value() <= 0.0 || vdd <= vth {
        return Err(ModelError::InvalidCalibration {
            reason: "optimal point must satisfy vdd > vth and vdd > 0",
        });
    }
    let constraint = TimingConstraint::from_optimal_point(vdd, vth, tech.alpha());
    let n_ut = tech.n_ut().value();
    let e_term = (-vth.value() / n_ut).exp();
    let g = 1.0 - vdd.value() * constraint.dvth_dvdd(vdd) / n_ut;
    if g >= 0.0 {
        return Err(ModelError::InvalidCalibration {
            reason: "point is not a stationary point of any Eq.1 instance (g >= 0)",
        });
    }
    let w = ptot.value() / (vdd.value() * e_term * (1.0 - g / 2.0));
    let k = -w * e_term * g / (2.0 * vdd.value());
    Ok(Calibration {
        cap_per_cell: Farads::new(k / (cells * activity * freq.value())),
        io_eff: Amps::new(w / cells),
        constraint,
    })
}

/// Assembles a ready-to-solve [`PowerModel`] from a calibration.
///
/// The returned model uses `tech.with_io(cal.io_eff)`, the calibrated
/// capacitance, and the calibrated timing constraint — so its
/// [`PowerModel::optimize`] lands back on (a refinement of) the
/// published optimal point.
///
/// # Errors
///
/// Propagates [`ModelError`] from the model constructors.
pub fn build_model(
    tech: Technology,
    arch: ArchParams,
    freq: Hertz,
    cal: Calibration,
) -> Result<PowerModel, ModelError> {
    PowerModel::with_constraint(
        tech.with_io(cal.io_eff),
        arch.with_cap_per_cell(cal.cap_per_cell),
        freq,
        cal.constraint,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_tech::Flavor;

    const F: f64 = 31.25e6;

    fn ll() -> Technology {
        Technology::stm_cmos09(Flavor::LowLeakage)
    }

    fn rca_arch() -> ArchParams {
        ArchParams::builder("RCA")
            .cells(608)
            .activity(0.5056)
            .logical_depth(61.0)
            .cap_per_cell(Farads::new(1e-15)) // replaced by calibration
            .build()
            .unwrap()
    }

    #[test]
    fn breakdown_calibration_reproduces_powers() {
        let cal = from_breakdown(
            &ll(),
            Volts::new(0.478),
            Volts::new(0.213),
            Watts::new(154.86e-6),
            Watts::new(36.57e-6),
            608.0,
            0.5056,
            Hertz::new(F),
        )
        .unwrap();
        let m = build_model(ll(), rca_arch(), Hertz::new(F), cal).unwrap();
        let p = m.power_at(Volts::new(0.478), Volts::new(0.213));
        assert!((p.pdyn().value() * 1e6 - 154.86).abs() < 1e-6);
        assert!((p.pstat().value() * 1e6 - 36.57).abs() < 1e-6);
    }

    #[test]
    fn breakdown_calibrated_optimum_lands_near_published_point() {
        let cal = from_breakdown(
            &ll(),
            Volts::new(0.478),
            Volts::new(0.213),
            Watts::new(154.86e-6),
            Watts::new(36.57e-6),
            608.0,
            0.5056,
            Hertz::new(F),
        )
        .unwrap();
        let m = build_model(ll(), rca_arch(), Hertz::new(F), cal).unwrap();
        let opt = m.optimize().unwrap();
        // The paper's grid resolution is a few mV; the published split
        // is also rounded, so allow ~15 mV.
        assert!(
            (opt.vdd().value() - 0.478).abs() < 0.015,
            "vdd {}",
            opt.vdd()
        );
        assert!((opt.ptot().value() * 1e6 - 191.44).abs() < 2.0);
    }

    #[test]
    fn total_calibration_is_exactly_stationary() {
        // from_total imposes stationarity, so the optimizer must return
        // the published point to optimizer tolerance.
        let cal = from_total(
            &ll(),
            Volts::new(0.478),
            Volts::new(0.213),
            Watts::new(191.44e-6),
            608.0,
            0.5056,
            Hertz::new(F),
        )
        .unwrap();
        let m = build_model(ll(), rca_arch(), Hertz::new(F), cal).unwrap();
        let opt = m.optimize().unwrap();
        assert!(
            (opt.vdd().value() - 0.478).abs() < 1e-4,
            "vdd {}",
            opt.vdd()
        );
        assert!(
            (opt.vth().value() - 0.213).abs() < 1e-3,
            "vth {}",
            opt.vth()
        );
        assert!((opt.ptot().value() * 1e6 - 191.44).abs() < 0.01);
    }

    #[test]
    fn total_and_breakdown_calibrations_agree() {
        // On Table 1 data both paths must recover similar parameters
        // (they differ only by the paper's rounding).
        let bd = from_breakdown(
            &ll(),
            Volts::new(0.478),
            Volts::new(0.213),
            Watts::new(154.86e-6),
            Watts::new(36.57e-6),
            608.0,
            0.5056,
            Hertz::new(F),
        )
        .unwrap();
        let tot = from_total(
            &ll(),
            Volts::new(0.478),
            Volts::new(0.213),
            Watts::new(191.44e-6),
            608.0,
            0.5056,
            Hertz::new(F),
        )
        .unwrap();
        let c_rel = (bd.cap_per_cell.value() - tot.cap_per_cell.value()) / tot.cap_per_cell.value();
        let io_rel = (bd.io_eff.value() - tot.io_eff.value()) / tot.io_eff.value();
        assert!(c_rel.abs() < 0.06, "C rel diff {c_rel}");
        assert!(io_rel.abs() < 0.25, "io rel diff {io_rel}");
    }

    #[test]
    fn rejects_non_positive_power() {
        assert!(from_breakdown(
            &ll(),
            Volts::new(0.5),
            Volts::new(0.2),
            Watts::new(0.0),
            Watts::new(1e-6),
            100.0,
            0.5,
            Hertz::new(F)
        )
        .is_err());
        assert!(from_total(
            &ll(),
            Volts::new(0.5),
            Volts::new(0.2),
            Watts::new(-1.0),
            100.0,
            0.5,
            Hertz::new(F)
        )
        .is_err());
    }

    #[test]
    fn rejects_inverted_point() {
        let err = from_breakdown(
            &ll(),
            Volts::new(0.2),
            Volts::new(0.3),
            Watts::new(1e-6),
            Watts::new(1e-6),
            100.0,
            0.5,
            Hertz::new(F),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidCalibration { .. }));
    }

    #[test]
    fn io_eff_exceeds_datasheet_io() {
        // The documented observation (DESIGN.md §2): the effective
        // off-current absorbing the authors' calibration is well above
        // the Table 2 datasheet value.
        let cal = from_breakdown(
            &ll(),
            Volts::new(0.478),
            Volts::new(0.213),
            Watts::new(154.86e-6),
            Watts::new(36.57e-6),
            608.0,
            0.5056,
            Hertz::new(F),
        )
        .unwrap();
        assert!(cal.io_eff.value() > ll().io().value());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use optpower_tech::Flavor;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Round-trip: synthesise a model, optimise it, calibrate from
        /// the optimum total — the recovered parameters reproduce the
        /// original optimum.
        #[test]
        fn total_calibration_roundtrip(
            activity in 0.1f64..1.0,
            ld in 10.0f64..100.0,
            cap_ff in 30.0f64..90.0,
        ) {
            let tech = Technology::stm_cmos09(Flavor::LowLeakage);
            let arch = ArchParams::builder("rt")
                .cells(500)
                .activity(activity)
                .logical_depth(ld)
                .cap_per_cell(Farads::new(cap_ff * 1e-15))
                .build().unwrap();
            let m = PowerModel::from_technology(tech, arch.clone(), Hertz::new(31.25e6)).unwrap();
            let opt = m.optimize().unwrap();
            let cal = from_total(
                &tech, opt.vdd(), opt.vth(), opt.ptot(),
                500.0, activity, Hertz::new(31.25e6),
            ).unwrap();
            // Recovered C and io match the originals.
            prop_assert!(
                ((cal.cap_per_cell.value() - cap_ff * 1e-15) / (cap_ff * 1e-15)).abs() < 1e-3,
                "C recovered {} vs {}", cal.cap_per_cell.value(), cap_ff * 1e-15);
            prop_assert!(
                ((cal.io_eff.value() - tech.io().value()) / tech.io().value()).abs() < 1e-3,
                "io recovered {} vs {}", cal.io_eff.value(), tech.io().value());
        }
    }
}
