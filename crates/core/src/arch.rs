//! Architectural parameters of a circuit: the `N`, `a`, `LD`, `C` set
//! that Eq. 13 consumes.

use optpower_units::{Farads, SquareMicrons};

use crate::ModelError;

/// The architectural parameter set of one circuit implementation.
///
/// * `cells` — number of cells `N`,
/// * `activity` — average cell activity `a` (switching cells per clock
///   cycle over total cells, *with respect to the throughput clock*, so
///   sequential architectures can legitimately exceed 1, cf. the basic
///   sequential multiplier's a = 2.9152 in Table 1),
/// * `logical_depth` — effective logical depth `LD` in gate delays
///   (fractional values arise from averaging over pipeline stages,
///   e.g. 15.75 for RCA parallel-4),
/// * `cap_per_cell` — equivalent cell capacitance `C` (includes the
///   lumped short-circuit contribution, per the paper's Eq. 1 note),
/// * `area` — optional silicon area, reported in Table 1 but not used
///   by the power model.
///
/// # Examples
///
/// ```
/// use optpower::ArchParams;
/// use optpower_units::Farads;
///
/// let wallace = ArchParams::builder("Wallace")
///     .cells(729)
///     .activity(0.2976)
///     .logical_depth(17.0)
///     .cap_per_cell(Farads::new(60.0e-15))
///     .build()?;
/// assert_eq!(wallace.cells(), 729.0);
/// # Ok::<(), optpower::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchParams {
    name: String,
    cells: f64,
    activity: f64,
    logical_depth: f64,
    cap_per_cell: Farads,
    area: Option<SquareMicrons>,
}

impl ArchParams {
    /// Starts building an [`ArchParams`] for the named architecture.
    pub fn builder(name: impl Into<String>) -> ArchParamsBuilder {
        ArchParamsBuilder {
            name: name.into(),
            cells: 0.0,
            activity: 0.0,
            logical_depth: 0.0,
            cap_per_cell: Farads::ZERO,
            area: None,
        }
    }

    /// Architecture name (e.g. `"RCA hor.pipe2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell count `N`.
    pub fn cells(&self) -> f64 {
        self.cells
    }

    /// Average cell activity `a` relative to the throughput clock.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Effective logical depth `LD` in gate delays.
    pub fn logical_depth(&self) -> f64 {
        self.logical_depth
    }

    /// Equivalent per-cell capacitance `C`.
    pub fn cap_per_cell(&self) -> Farads {
        self.cap_per_cell
    }

    /// Silicon area, if known.
    pub fn area(&self) -> Option<SquareMicrons> {
        self.area
    }

    /// Total switched capacitance per cycle, `N·a·C`.
    pub fn switched_cap(&self) -> Farads {
        self.cap_per_cell * (self.cells * self.activity)
    }

    /// Returns a copy with a different per-cell capacitance (used by
    /// the calibration flow, which solves for `C` after the structural
    /// parameters are known).
    pub fn with_cap_per_cell(mut self, cap: Farads) -> Self {
        self.cap_per_cell = cap;
        self
    }

    /// Returns a copy with a different activity (Figure 1 sweeps the
    /// activity of a fixed architecture).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidArchParameter`] if `activity` is not a
    /// positive finite number.
    pub fn with_activity(mut self, activity: f64) -> Result<Self, ModelError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
        if !(activity > 0.0) || !activity.is_finite() {
            return Err(ModelError::InvalidArchParameter {
                field: "activity",
                value: activity,
            });
        }
        self.activity = activity;
        Ok(self)
    }
}

/// Builder for [`ArchParams`]; see [`ArchParams::builder`].
#[derive(Debug, Clone)]
pub struct ArchParamsBuilder {
    name: String,
    cells: f64,
    activity: f64,
    logical_depth: f64,
    cap_per_cell: Farads,
    area: Option<SquareMicrons>,
}

impl ArchParamsBuilder {
    /// Sets the cell count `N`.
    pub fn cells(mut self, cells: u32) -> Self {
        self.cells = f64::from(cells);
        self
    }

    /// Sets the average cell activity `a`. Values above 1 are legal for
    /// sequential architectures (internal clock faster than throughput).
    pub fn activity(mut self, activity: f64) -> Self {
        self.activity = activity;
        self
    }

    /// Sets the effective logical depth `LD` (may be fractional).
    pub fn logical_depth(mut self, ld: f64) -> Self {
        self.logical_depth = ld;
        self
    }

    /// Sets the equivalent per-cell capacitance `C`.
    pub fn cap_per_cell(mut self, cap: Farads) -> Self {
        self.cap_per_cell = cap;
        self
    }

    /// Sets the (optional, informational) silicon area.
    pub fn area(mut self, area: SquareMicrons) -> Self {
        self.area = Some(area);
        self
    }

    /// Validates and builds the [`ArchParams`].
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidArchParameter`] when any of `cells`,
    /// `activity`, `logical_depth` or `cap_per_cell` is not a positive
    /// finite number, or `activity > 16` (an activity larger than the
    /// 16 internal cycles of the widest sequential design in scope is
    /// certainly a bug).
    pub fn build(self) -> Result<ArchParams, ModelError> {
        let check = |ok: bool, field: &'static str, value: f64| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(ModelError::InvalidArchParameter { field, value })
            }
        };
        check(self.cells >= 1.0, "cells", self.cells)?;
        check(
            self.activity > 0.0 && self.activity <= 16.0,
            "activity",
            self.activity,
        )?;
        check(
            self.logical_depth >= 1.0,
            "logical_depth",
            self.logical_depth,
        )?;
        check(
            self.cap_per_cell.value() > 0.0,
            "cap_per_cell",
            self.cap_per_cell.value(),
        )?;
        Ok(ArchParams {
            name: self.name,
            cells: self.cells,
            activity: self.activity,
            logical_depth: self.logical_depth,
            cap_per_cell: self.cap_per_cell,
            area: self.area,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rca() -> ArchParams {
        ArchParams::builder("RCA")
            .cells(608)
            .activity(0.5056)
            .logical_depth(61.0)
            .cap_per_cell(Farads::new(70.5e-15))
            .area(SquareMicrons::new(11038.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let a = rca();
        assert_eq!(a.name(), "RCA");
        assert_eq!(a.cells(), 608.0);
        assert_eq!(a.activity(), 0.5056);
        assert_eq!(a.logical_depth(), 61.0);
        assert_eq!(a.cap_per_cell(), Farads::new(70.5e-15));
        assert_eq!(a.area(), Some(SquareMicrons::new(11038.0)));
    }

    #[test]
    fn switched_cap_product() {
        let a = rca();
        let expect = 608.0 * 0.5056 * 70.5e-15;
        assert!((a.switched_cap().value() - expect).abs() < 1e-24);
    }

    #[test]
    fn sequential_activity_above_one_is_legal() {
        // Table 1: basic sequential multiplier has a = 2.9152.
        let a = ArchParams::builder("Sequential")
            .cells(290)
            .activity(2.9152)
            .logical_depth(224.0)
            .cap_per_cell(Farads::new(50.0e-15))
            .build();
        assert!(a.is_ok());
    }

    #[test]
    fn rejects_zero_activity() {
        let err = ArchParams::builder("x")
            .cells(10)
            .activity(0.0)
            .logical_depth(5.0)
            .cap_per_cell(Farads::new(1e-15))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidArchParameter {
                field: "activity",
                ..
            }
        ));
    }

    #[test]
    fn rejects_absurd_activity() {
        let err = ArchParams::builder("x")
            .cells(10)
            .activity(20.0)
            .logical_depth(5.0)
            .cap_per_cell(Farads::new(1e-15))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidArchParameter { .. }));
    }

    #[test]
    fn rejects_zero_cells_and_depth() {
        assert!(ArchParams::builder("x")
            .cells(0)
            .activity(0.5)
            .logical_depth(5.0)
            .cap_per_cell(Farads::new(1e-15))
            .build()
            .is_err());
        assert!(ArchParams::builder("x")
            .cells(10)
            .activity(0.5)
            .logical_depth(0.5)
            .cap_per_cell(Farads::new(1e-15))
            .build()
            .is_err());
    }

    #[test]
    fn rejects_nan_capacitance() {
        let err = ArchParams::builder("x")
            .cells(10)
            .activity(0.5)
            .logical_depth(5.0)
            .cap_per_cell(Farads::new(f64::NAN))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidArchParameter {
                field: "cap_per_cell",
                ..
            }
        ));
    }

    #[test]
    fn with_activity_validates() {
        let a = rca();
        assert!(a.clone().with_activity(0.25).is_ok());
        assert!(a.clone().with_activity(-0.1).is_err());
        assert!(a.with_activity(f64::NAN).is_err());
    }
}
