//! The paper's published evaluation data (Tables 1–4) and constants.
//!
//! These are the reproduction targets: every row is transcribed from
//! the paper so the experiment harness (`optpower-report`) can print
//! paper-vs-measured columns, and the test suite can assert the
//! headline ±3 % Eq. 13 accuracy claim row by row.

use optpower_tech::Flavor;
use optpower_units::{Farads, Hertz, SquareMicrons};

use crate::{ArchParams, ModelError};

/// The throughput frequency of every experiment in the paper:
/// 31.25 MHz (a 32 ns data period; the sequential multipliers run an
/// internal clock 16× faster).
pub const PAPER_FREQUENCY: Hertz = Hertz::new(31.25e6);

/// The paper's printed linearisation constants for the LL flavour
/// (α = 1.86, fitted on 0.3–1.0 V): `A = 0.671`, `B = 0.347`.
pub const PAPER_A: f64 = 0.671;

/// See [`PAPER_A`].
pub const PAPER_B: f64 = 0.347;

/// One row of Table 1 (13 multipliers, LL flavour, optimal points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Architecture name as printed.
    pub name: &'static str,
    /// Cell count `N`.
    pub cells: u32,
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Average activity `a` w.r.t. the throughput clock.
    pub activity: f64,
    /// Effective logical depth.
    pub ld_eff: f64,
    /// Optimal supply voltage in volts.
    pub vdd: f64,
    /// Optimal threshold voltage in volts.
    pub vth: f64,
    /// Dynamic power at the optimum in µW.
    pub pdyn_uw: f64,
    /// Static power at the optimum in µW.
    pub pstat_uw: f64,
    /// Total power at the optimum (numerical) in µW.
    pub ptot_uw: f64,
    /// Total power by Eq. 13 in µW.
    pub eq13_uw: f64,
    /// Printed Eq. 13 error in percent.
    pub eq13_err_pct: f64,
}

/// Table 1: all thirteen 16-bit multipliers (ST LL, f = 31.25 MHz).
pub const TABLE1: [Table1Row; 13] = [
    Table1Row {
        name: "RCA",
        cells: 608,
        area_um2: 11038.0,
        activity: 0.5056,
        ld_eff: 61.0,
        vdd: 0.478,
        vth: 0.213,
        pdyn_uw: 154.86,
        pstat_uw: 36.57,
        ptot_uw: 191.44,
        eq13_uw: 191.09,
        eq13_err_pct: 0.182,
    },
    Table1Row {
        name: "RCA parallel",
        cells: 1256,
        area_um2: 22223.0,
        activity: 0.2624,
        ld_eff: 30.5,
        vdd: 0.395,
        vth: 0.233,
        pdyn_uw: 117.20,
        pstat_uw: 30.37,
        ptot_uw: 147.57,
        eq13_uw: 150.29,
        eq13_err_pct: -1.844,
    },
    Table1Row {
        name: "RCA parallel 4",
        cells: 2455,
        area_um2: 43735.0,
        activity: 0.1344,
        ld_eff: 15.75,
        vdd: 0.359,
        vth: 0.256,
        pdyn_uw: 100.51,
        pstat_uw: 26.39,
        ptot_uw: 126.90,
        eq13_uw: 129.93,
        eq13_err_pct: -2.384,
    },
    Table1Row {
        name: "RCA hor.pipe2",
        cells: 672,
        area_um2: 12458.0,
        activity: 0.3904,
        ld_eff: 40.0,
        vdd: 0.423,
        vth: 0.225,
        pdyn_uw: 100.51,
        pstat_uw: 25.27,
        ptot_uw: 125.78,
        eq13_uw: 127.25,
        eq13_err_pct: -1.166,
    },
    Table1Row {
        name: "RCA hor.pipe4",
        cells: 800,
        area_um2: 15298.0,
        activity: 0.2944,
        ld_eff: 28.0,
        vdd: 0.394,
        vth: 0.238,
        pdyn_uw: 81.54,
        pstat_uw: 20.94,
        ptot_uw: 102.48,
        eq13_uw: 104.34,
        eq13_err_pct: -1.819,
    },
    Table1Row {
        name: "RCA diagpipe2",
        cells: 670,
        area_um2: 12684.0,
        activity: 0.4064,
        ld_eff: 26.0,
        vdd: 0.407,
        vth: 0.224,
        pdyn_uw: 98.65,
        pstat_uw: 25.50,
        ptot_uw: 124.15,
        eq13_uw: 126.11,
        eq13_err_pct: -1.581,
    },
    Table1Row {
        name: "RCA diagpipe4",
        cells: 812,
        area_um2: 15762.0,
        activity: 0.3456,
        ld_eff: 14.0,
        vdd: 0.366,
        vth: 0.233,
        pdyn_uw: 82.83,
        pstat_uw: 22.52,
        ptot_uw: 105.35,
        eq13_uw: 108.04,
        eq13_err_pct: -2.559,
    },
    Table1Row {
        name: "Wallace",
        cells: 729,
        area_um2: 11928.0,
        activity: 0.2976,
        ld_eff: 17.0,
        vdd: 0.372,
        vth: 0.236,
        pdyn_uw: 56.69,
        pstat_uw: 15.17,
        ptot_uw: 71.86,
        eq13_uw: 73.56,
        eq13_err_pct: -2.376,
    },
    Table1Row {
        name: "Wallace parallel",
        cells: 1465,
        area_um2: 23993.0,
        activity: 0.1568,
        ld_eff: 8.0,
        vdd: 0.341,
        vth: 0.256,
        pdyn_uw: 55.64,
        pstat_uw: 15.06,
        ptot_uw: 70.69,
        eq13_uw: 72.58,
        eq13_err_pct: -2.676,
    },
    Table1Row {
        name: "Wallace par4",
        cells: 2939,
        area_um2: 47271.0,
        activity: 0.0832,
        ld_eff: 4.75,
        vdd: 0.333,
        vth: 0.277,
        pdyn_uw: 58.04,
        pstat_uw: 15.26,
        ptot_uw: 73.30,
        eq13_uw: 75.01,
        eq13_err_pct: -2.335,
    },
    Table1Row {
        name: "Sequential",
        cells: 290,
        area_um2: 4954.0,
        activity: 2.9152,
        ld_eff: 224.0,
        vdd: 0.824,
        vth: 0.173,
        pdyn_uw: 1134.00,
        pstat_uw: 184.48,
        ptot_uw: 1318.48,
        eq13_uw: 1318.94,
        eq13_err_pct: -0.035,
    },
    Table1Row {
        name: "Seq4_16",
        cells: 351,
        area_um2: 6132.0,
        activity: 0.2464,
        ld_eff: 120.0,
        vdd: 0.711,
        vth: 0.228,
        pdyn_uw: 184.69,
        pstat_uw: 31.59,
        ptot_uw: 216.29,
        eq13_uw: 212.62,
        eq13_err_pct: 1.696,
    },
    Table1Row {
        name: "Seq parallel",
        cells: 322,
        area_um2: 7276.0,
        activity: 1.3280,
        ld_eff: 168.0,
        vdd: 0.817,
        vth: 0.192,
        pdyn_uw: 888.19,
        pstat_uw: 142.07,
        ptot_uw: 1030.26,
        eq13_uw: 1028.97,
        eq13_err_pct: 0.124,
    },
];

/// One row of Table 3 or Table 4 (Wallace family on ULL/HS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallaceFlavorRow {
    /// Architecture name as printed.
    pub name: &'static str,
    /// Optimal supply voltage in volts.
    pub vdd: f64,
    /// Optimal threshold voltage in volts.
    pub vth: f64,
    /// Total power at the optimum (numerical) in µW.
    pub ptot_uw: f64,
    /// Total power by Eq. 13 in µW.
    pub eq13_uw: f64,
    /// Printed Eq. 13 error in percent.
    pub eq13_err_pct: f64,
}

/// Table 3: Wallace family on the ULL flavour (f = 31.25 MHz).
pub const TABLE3_ULL: [WallaceFlavorRow; 3] = [
    WallaceFlavorRow {
        name: "Wallace",
        vdd: 0.409,
        vth: 0.231,
        ptot_uw: 84.79,
        eq13_uw: 86.03,
        eq13_err_pct: -1.47,
    },
    WallaceFlavorRow {
        name: "Wallace par",
        vdd: 0.363,
        vth: 0.253,
        ptot_uw: 76.24,
        eq13_uw: 78.02,
        eq13_err_pct: -2.33,
    },
    WallaceFlavorRow {
        name: "Wallace par4",
        vdd: 0.360,
        vth: 0.281,
        ptot_uw: 80.61,
        eq13_uw: 82.21,
        eq13_err_pct: -1.98,
    },
];

/// Table 4: Wallace family on the HS flavour (f = 31.25 MHz).
pub const TABLE4_HS: [WallaceFlavorRow; 3] = [
    WallaceFlavorRow {
        name: "Wallace",
        vdd: 0.398,
        vth: 0.328,
        ptot_uw: 99.56,
        eq13_uw: 100.33,
        eq13_err_pct: -0.78,
    },
    WallaceFlavorRow {
        name: "Wallace par",
        vdd: 0.383,
        vth: 0.349,
        ptot_uw: 110.27,
        eq13_uw: 111.39,
        eq13_err_pct: -1.01,
    },
    WallaceFlavorRow {
        name: "Wallace par4",
        vdd: 0.390,
        vth: 0.376,
        ptot_uw: 118.89,
        eq13_uw: 119.99,
        eq13_err_pct: -0.93,
    },
];

/// The Wallace-family rows of Table 1 (the LL counterparts of
/// Tables 3–4), for flavour comparisons.
pub fn wallace_ll_rows() -> [Table1Row; 3] {
    [TABLE1[7], TABLE1[8], TABLE1[9]]
}

/// Returns the structural parameters (cells, activity, LD) of a
/// Wallace-family architecture by its position (0 = basic,
/// 1 = parallel, 2 = parallel-4); shared across flavour tables.
pub fn wallace_structure(index: usize) -> &'static Table1Row {
    &TABLE1[7 + index]
}

/// The thirteen Table 1 architectures as [`ArchParams`], with the
/// per-cell capacitance back-computed from each row's published
/// dynamic power: `C = Pdyn / (N·a·f·Vdd²)` at the paper's frequency.
///
/// This is the canonical "full Table 1 grid" axis used by the
/// design-space exploration engine, its equivalence tests and the
/// sweep benchmarks.
///
/// # Errors
///
/// Propagates [`ModelError`] from the builder (cannot happen for the
/// published data).
pub fn table1_arch_params() -> Result<Vec<ArchParams>, ModelError> {
    TABLE1
        .iter()
        .map(|row| {
            let c = row.pdyn_uw * 1e-6
                / (f64::from(row.cells)
                    * row.activity
                    * PAPER_FREQUENCY.value()
                    * row.vdd
                    * row.vdd);
            ArchParams::builder(row.name)
                .cells(row.cells)
                .activity(row.activity)
                .logical_depth(row.ld_eff)
                .cap_per_cell(Farads::new(c))
                .area(SquareMicrons::new(row.area_um2))
                .build()
        })
        .collect()
}

/// The flavour each published table corresponds to.
pub fn table_flavor(table: u8) -> Option<Flavor> {
    match table {
        1 => Some(Flavor::LowLeakage),
        3 => Some(Flavor::UltraLowLeakage),
        4 => Some(Flavor::HighSpeed),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_thirteen_architectures() {
        assert_eq!(TABLE1.len(), 13);
        let mut names: Vec<_> = TABLE1.iter().map(|r| r.name).collect();
        names.dedup();
        assert_eq!(names.len(), 13, "names must be distinct");
    }

    #[test]
    fn table1_rows_internally_consistent() {
        for row in &TABLE1 {
            // Ptot = Pdyn + Pstat to the printed rounding.
            let sum = row.pdyn_uw + row.pstat_uw;
            assert!(
                (sum - row.ptot_uw).abs() < 0.02,
                "{}: {} + {} != {}",
                row.name,
                row.pdyn_uw,
                row.pstat_uw,
                row.ptot_uw
            );
            // Printed error column matches the two power columns:
            // err = (Ptot - Eq13)/Eq13 (the paper's sign convention).
            let err = (row.ptot_uw - row.eq13_uw) / row.eq13_uw * 100.0;
            assert!(
                (err - row.eq13_err_pct).abs() < 0.15,
                "{}: err {} vs printed {}",
                row.name,
                err,
                row.eq13_err_pct
            );
            assert!(row.vdd > row.vth);
        }
    }

    #[test]
    fn headline_claim_all_errors_below_3_percent() {
        for row in &TABLE1 {
            assert!(
                row.eq13_err_pct.abs() < 3.0,
                "{}: {}",
                row.name,
                row.eq13_err_pct
            );
        }
    }

    #[test]
    fn flavor_tables_consistent() {
        for row in TABLE3_ULL.iter().chain(TABLE4_HS.iter()) {
            let err = (row.ptot_uw - row.eq13_uw) / row.eq13_uw * 100.0;
            assert!((err - row.eq13_err_pct).abs() < 0.1, "{}", row.name);
            assert!(row.vdd > row.vth);
        }
    }

    #[test]
    fn section5_orderings_hold_in_published_data() {
        // LL beats ULL and HS for every Wallace variant.
        let ll = wallace_ll_rows();
        for i in 0..3 {
            assert!(ll[i].ptot_uw < TABLE3_ULL[i].ptot_uw, "LL < ULL at {i}");
            assert!(ll[i].ptot_uw < TABLE4_HS[i].ptot_uw, "LL < HS at {i}");
        }
        // On HS, parallelisation *hurts* (Section 5's key observation).
        assert!(TABLE4_HS[1].ptot_uw > TABLE4_HS[0].ptot_uw);
        // On LL/ULL, par2 helps but par4 over-shoots.
        assert!(ll[1].ptot_uw < ll[0].ptot_uw && ll[2].ptot_uw > ll[1].ptot_uw);
        assert!(TABLE3_ULL[1].ptot_uw < TABLE3_ULL[0].ptot_uw);
        assert!(TABLE3_ULL[2].ptot_uw > TABLE3_ULL[1].ptot_uw);
    }

    #[test]
    fn section4_orderings_hold_in_published_data() {
        let by_name = |n: &str| TABLE1.iter().find(|r| r.name == n).unwrap();
        // Sequential architectures are the worst by far.
        assert!(by_name("Sequential").ptot_uw > 5.0 * by_name("RCA").ptot_uw);
        // Pipelining and parallelisation help the RCA.
        assert!(by_name("RCA hor.pipe2").ptot_uw < by_name("RCA").ptot_uw);
        assert!(by_name("RCA parallel").ptot_uw < by_name("RCA").ptot_uw);
        // Horizontal pipeline beats diagonal at the same depth count
        // (the glitch/activity effect) — hor.pipe4 vs diagpipe4.
        assert!(by_name("RCA hor.pipe4").ptot_uw < by_name("RCA diagpipe4").ptot_uw);
        // Diagonal pipelines have higher activity despite shorter LD.
        assert!(by_name("RCA diagpipe2").activity > by_name("RCA hor.pipe2").activity);
        assert!(by_name("RCA diagpipe2").ld_eff < by_name("RCA hor.pipe2").ld_eff);
    }

    #[test]
    fn table_flavor_mapping() {
        assert_eq!(table_flavor(1), Some(Flavor::LowLeakage));
        assert_eq!(table_flavor(3), Some(Flavor::UltraLowLeakage));
        assert_eq!(table_flavor(4), Some(Flavor::HighSpeed));
        assert_eq!(table_flavor(2), None);
    }

    #[test]
    fn wallace_structure_indexing() {
        assert_eq!(wallace_structure(0).name, "Wallace");
        assert_eq!(wallace_structure(1).name, "Wallace parallel");
        assert_eq!(wallace_structure(2).name, "Wallace par4");
    }

    #[test]
    fn table1_arch_params_back_compute_published_pdyn() {
        let archs = table1_arch_params().unwrap();
        assert_eq!(archs.len(), 13);
        for (arch, row) in archs.iter().zip(TABLE1.iter()) {
            assert_eq!(arch.name(), row.name);
            // C was solved from Pdyn = N·a·C·f·Vdd²; plugging it back
            // must reproduce the published dynamic power exactly.
            let pdyn = arch.cells()
                * arch.activity()
                * arch.cap_per_cell().value()
                * PAPER_FREQUENCY.value()
                * row.vdd
                * row.vdd;
            let rel = (pdyn - row.pdyn_uw * 1e-6) / (row.pdyn_uw * 1e-6);
            assert!(rel.abs() < 1e-12, "{}: {rel}", row.name);
        }
    }
}
