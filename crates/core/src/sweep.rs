//! Parameter sweeps and technology-selection studies built on the
//! optimal-power model — the quantitative form of Section 5.
//!
//! The primitives here ([`log_frequency_axis`], [`sample_at`],
//! [`optimal_ptot`], [`SweepOutcome::classify`]) are shared with the
//! parallel exploration engine (`optpower-explore`), which guarantees
//! the parallel sweeps are bit-identical to the serial ones: both paths
//! evaluate exactly the same functions at exactly the same points.

use optpower_numeric::{bisect, linspace};
use optpower_tech::Technology;
use optpower_units::{Hertz, Volts};

use crate::{ArchParams, ModelError, OperatingPoint, OptimizerConfig, PowerModel};

/// Width of the guard band inside the `[vdd_min, vdd_max]` search
/// window within which an optimum is treated as pinned to the search
/// boundary rather than interior.
///
/// With the default [`OptimizerConfig`] (`vdd_max` = 1.5 V) this puts
/// the upper boundary at 1.45 V — the historical cut-off the serial
/// sweep used before outcomes were made explicit. The lower wall is
/// guarded too: far past the closable frequency range the constraint
/// curve flips (`dVth/dVdd < 0` everywhere) and the optimiser walks
/// into `vdd_min` instead, producing an astronomically leaky
/// pseudo-optimum that must not be mistaken for timing closure.
pub const BOUNDARY_MARGIN: Volts = Volts::new(0.05);

/// What happened when optimising one `(tech, arch, f)` point.
///
/// The distinction between [`SweepOutcome::BoundaryPinned`] and
/// [`SweepOutcome::Failed`] matters to design-space consumers:
/// boundary-pinned means *timing cannot close in the search window*
/// (the optimiser ran fine but walked into the `vdd_max` wall chasing
/// an ever-lower leakage), while failed means the optimiser itself
/// errored out.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome {
    /// The optimiser found an interior optimum: timing closes.
    Closed(OperatingPoint),
    /// The optimiser pinned at the search boundary: timing effectively
    /// cannot close at this frequency. The point is reported for
    /// diagnostics but is not a usable optimum.
    BoundaryPinned(OperatingPoint),
    /// Model building or optimisation failed outright.
    Failed(ModelError),
}

impl SweepOutcome {
    /// Classifies an optimiser result against the search window of
    /// `config`: an optimum within [`BOUNDARY_MARGIN`] of `vdd_max` is
    /// [`SweepOutcome::BoundaryPinned`].
    pub fn classify(result: Result<OperatingPoint, ModelError>, config: &OptimizerConfig) -> Self {
        match result {
            Ok(opt)
                if opt.vdd() < config.vdd_max - BOUNDARY_MARGIN
                    && opt.vdd() > config.vdd_min + BOUNDARY_MARGIN =>
            {
                Self::Closed(opt)
            }
            Ok(opt) => Self::BoundaryPinned(opt),
            Err(e) => Self::Failed(e),
        }
    }

    /// The interior optimum, if timing closed.
    pub fn closed(&self) -> Option<OperatingPoint> {
        match self {
            Self::Closed(opt) => Some(*opt),
            _ => None,
        }
    }

    /// True when the optimum pinned at the search boundary.
    pub fn is_boundary_pinned(&self) -> bool {
        matches!(self, Self::BoundaryPinned(_))
    }

    /// The operating point the optimiser produced, interior or pinned.
    pub fn point(&self) -> Option<OperatingPoint> {
        match self {
            Self::Closed(opt) | Self::BoundaryPinned(opt) => Some(*opt),
            Self::Failed(_) => None,
        }
    }

    /// Machine-readable status tag (`closed`, `boundary_pinned`,
    /// `failed`) — the single definition shared by every CSV/JSON
    /// export and the workload artifact envelope, so wire formats
    /// cannot drift per consumer.
    pub fn status(&self) -> &'static str {
        match self {
            Self::Closed(_) => "closed",
            Self::BoundaryPinned(_) => "boundary_pinned",
            Self::Failed(_) => "failed",
        }
    }
}

/// One sample of a frequency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencySample {
    /// The swept frequency.
    pub frequency: Hertz,
    /// What the optimiser did at that frequency.
    pub outcome: SweepOutcome,
}

impl FrequencySample {
    /// The optimal working point at this frequency, if timing closes.
    ///
    /// Boundary-pinned and failed points both yield `None`; inspect
    /// [`FrequencySample::outcome`] to tell them apart.
    pub fn optimum(&self) -> Option<OperatingPoint> {
        self.outcome.closed()
    }
}

/// The logarithmic frequency axis a sweep evaluates: `points` samples
/// (at least 2) uniform in `log10 f` over `[f_lo, f_hi]`.
///
/// # Errors
///
/// [`ModelError::InvalidFrequency`] if the range is non-positive or
/// inverted.
pub fn log_frequency_axis(
    f_lo: Hertz,
    f_hi: Hertz,
    points: usize,
) -> Result<Vec<Hertz>, ModelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
    if !(f_lo.value() > 0.0) || !(f_hi.value() > f_lo.value()) || !f_hi.value().is_finite() {
        return Err(ModelError::InvalidFrequency {
            hertz: if f_hi.value().is_finite() {
                f_lo.value()
            } else {
                f_hi.value()
            },
        });
    }
    let lo = f_lo.value().log10();
    let hi = f_hi.value().log10();
    Ok(linspace(lo, hi, points.max(2))
        .into_iter()
        .map(|exp| Hertz::new(10f64.powf(exp)))
        .collect())
}

/// Evaluates one `(tech, arch, f)` point with the default optimiser
/// window and classifies the outcome.
///
/// This is the unit of work of both the serial [`frequency_sweep`] and
/// the parallel engine in `optpower-explore`.
pub fn sample_at(tech: Technology, arch: &ArchParams, f: Hertz) -> FrequencySample {
    let result = PowerModel::from_technology(tech, arch.clone(), f).and_then(|m| m.optimize());
    FrequencySample {
        frequency: f,
        outcome: SweepOutcome::classify(result, &OptimizerConfig::default()),
    }
}

/// Sweeps the optimal working point of `(tech, arch)` across a
/// logarithmic frequency range.
///
/// Frequencies where the optimiser pins at the search boundary (timing
/// effectively cannot close) are reported as
/// [`SweepOutcome::BoundaryPinned`]; outright failures as
/// [`SweepOutcome::Failed`].
///
/// # Errors
///
/// [`ModelError::InvalidFrequency`] if the range is non-positive or
/// inverted.
pub fn frequency_sweep(
    tech: Technology,
    arch: &ArchParams,
    f_lo: Hertz,
    f_hi: Hertz,
    points: usize,
) -> Result<Vec<FrequencySample>, ModelError> {
    Ok(log_frequency_axis(f_lo, f_hi, points)?
        .into_iter()
        .map(|f| sample_at(tech, arch, f))
        .collect())
}

/// Optimal total power of `(tech, arch)` at `f`, in watts; `None` when
/// timing cannot close in the search window.
pub fn optimal_ptot(tech: Technology, arch: &ArchParams, f: Hertz) -> Option<f64> {
    sample_at(tech, arch, f)
        .optimum()
        .map(|opt| opt.ptot().value())
}

/// Finds the frequency at which two technologies' optimal powers cross
/// for the same architecture, if one exists in `[f_lo, f_hi]`.
///
/// Below the crossover the first technology is cheaper; above it the
/// second is (or vice versa — check the sign at the ends). This
/// quantifies Section 5's "extreme technology flavors are penalized"
/// into an actual operating-regime boundary.
///
/// Returns `None` when either technology fails to close timing over
/// part of the range or the difference does not change sign.
pub fn flavor_crossover(
    tech_a: Technology,
    tech_b: Technology,
    arch: &ArchParams,
    f_lo: Hertz,
    f_hi: Hertz,
) -> Option<Hertz> {
    let diff = |log_f: f64| -> f64 {
        let f = Hertz::new(10f64.powf(log_f));
        match (optimal_ptot(tech_a, arch, f), optimal_ptot(tech_b, arch, f)) {
            (Some(pa), Some(pb)) => pa - pb,
            _ => f64::NAN,
        }
    };
    let lo = f_lo.value().log10();
    let hi = f_hi.value().log10();
    let (d_lo, d_hi) = (diff(lo), diff(hi));
    if !d_lo.is_finite() || !d_hi.is_finite() || d_lo.signum() == d_hi.signum() {
        return None;
    }
    bisect(diff, lo, hi, 1e-6)
        .ok()
        .map(|log_f| Hertz::new(10f64.powf(log_f)))
}

/// Result of ranking several technologies for one architecture at one
/// frequency.
#[derive(Debug, Clone)]
pub struct TechnologyRanking {
    /// `(technology name, optimal Ptot in watts)`, cheapest first;
    /// technologies that cannot close timing are omitted.
    pub ranking: Vec<(&'static str, f64)>,
}

impl TechnologyRanking {
    /// The winning technology's name, if any closed timing.
    pub fn winner(&self) -> Option<&'static str> {
        self.ranking.first().map(|(name, _)| *name)
    }

    /// Sorts `(name, Ptot)` pairs cheapest-first into a ranking.
    ///
    /// Shared with the parallel counterpart in `optpower-explore` so
    /// both paths order ties identically (stable sort on total order).
    pub fn from_pairs(mut ranking: Vec<(&'static str, f64)>) -> Self {
        ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
        TechnologyRanking { ranking }
    }
}

/// Ranks `techs` by optimal total power for `(arch, f)` — the paper's
/// technology-selection use case as an API.
pub fn rank_technologies(techs: &[Technology], arch: &ArchParams, f: Hertz) -> TechnologyRanking {
    TechnologyRanking::from_pairs(
        techs
            .iter()
            .filter_map(|t| optimal_ptot(*t, arch, f).map(|p| (t.name(), p)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_tech::Flavor;
    use optpower_units::Farads;

    fn wallace_arch() -> ArchParams {
        // The basic Wallace structure of Table 1 with its
        // back-computed capacitance.
        let c = 56.69e-6 / (729.0 * 0.2976 * 31.25e6 * 0.372 * 0.372);
        ArchParams::builder("Wallace")
            .cells(729)
            .activity(0.2976)
            .logical_depth(17.0)
            .cap_per_cell(Farads::new(c))
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_power_increases_with_frequency() {
        let sweep = frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(1e6),
            Hertz::new(200e6),
            12,
        )
        .unwrap();
        let powers: Vec<f64> = sweep
            .iter()
            .filter_map(|s| s.optimum().map(|o| o.ptot().value()))
            .collect();
        assert!(powers.len() >= 10, "most points close timing");
        for pair in powers.windows(2) {
            assert!(pair[1] > pair[0], "Ptot must grow with f");
        }
    }

    #[test]
    fn sweep_vth_decreases_with_frequency() {
        // Eq. 9: Vth_opt = n·Ut·ln(Io(1−χA)/(2aCf·nUt)) falls with f
        // through both the log argument and (1−χA). (Vdd_opt is NOT
        // monotone: the χB/(1−χA) term pushes up while the log pushes
        // down — which is why this test pins Vth, not Vdd.)
        let sweep = frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(1e6),
            Hertz::new(200e6),
            8,
        )
        .unwrap();
        let vths: Vec<f64> = sweep
            .iter()
            .filter_map(|s| s.optimum().map(|o| o.vth().value()))
            .collect();
        for pair in vths.windows(2) {
            assert!(pair[1] < pair[0], "vth must fall with f: {vths:?}");
        }
    }

    #[test]
    fn sweep_rejects_bad_range() {
        for (lo, hi) in [
            (10e6, 1e6),
            (0.0, 1e6),
            (1e6, f64::INFINITY),
            (1e6, f64::NAN),
        ] {
            let err = frequency_sweep(
                Technology::stm_cmos09(Flavor::LowLeakage),
                &wallace_arch(),
                Hertz::new(lo),
                Hertz::new(hi),
                4,
            )
            .unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidFrequency { .. }),
                "({lo}, {hi})"
            );
        }
    }

    #[test]
    fn boundary_pinning_is_distinguished_from_failure() {
        // Push the Wallace multiplier far beyond any closable
        // frequency: the optimiser walks into the vdd_max wall chasing
        // lower leakage. That must surface as BoundaryPinned — the
        // optimiser itself worked — not as Failed, and not be silently
        // conflated with "no optimum".
        let sweep = frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(5e9),
            Hertz::new(50e9),
            4,
        )
        .unwrap();
        for s in &sweep {
            assert!(
                s.outcome.is_boundary_pinned(),
                "expected BoundaryPinned at {:?}, got {:?}",
                s.frequency,
                s.outcome
            );
            assert_eq!(s.optimum(), None, "pinned points expose no optimum");
            // The pinned point itself is still reported, at a wall.
            let pinned = s.outcome.point().expect("pinned point is reported");
            let cfg = OptimizerConfig::default();
            assert!(
                pinned.vdd() >= cfg.vdd_max - BOUNDARY_MARGIN
                    || pinned.vdd() <= cfg.vdd_min + BOUNDARY_MARGIN
            );
        }
    }

    #[test]
    fn classify_splits_interior_boundary_failed() {
        let cfg = OptimizerConfig::default();
        let m = PowerModel::from_technology(
            Technology::stm_cmos09(Flavor::LowLeakage),
            wallace_arch(),
            Hertz::new(31.25e6),
        )
        .unwrap();
        let interior = m.optimize().unwrap();
        assert!(matches!(
            SweepOutcome::classify(Ok(interior), &cfg),
            SweepOutcome::Closed(_)
        ));
        let wall = m.point_on_curve(cfg.vdd_max);
        assert!(SweepOutcome::classify(Ok(wall), &cfg).is_boundary_pinned());
        let failed =
            SweepOutcome::classify(Err(ModelError::InvalidFrequency { hertz: -1.0 }), &cfg);
        assert!(matches!(failed, SweepOutcome::Failed(_)));
        assert_eq!(failed.point(), None);
    }

    #[test]
    fn ull_vs_hs_crossover_exists() {
        // ULL wins at very low f (leakage-dominated), HS wins at high f
        // (speed-dominated): a crossover must exist between them.
        let x = flavor_crossover(
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
            &wallace_arch(),
            Hertz::new(0.2e6),
            Hertz::new(200e6),
        );
        let f = x.expect("ULL/HS crossover exists").value();
        assert!(f > 0.2e6 && f < 200e6, "crossover at {f}");
    }

    #[test]
    fn ranking_orders_by_power() {
        let techs = [
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
        ];
        let ranking = rank_technologies(&techs, &wallace_arch(), Hertz::new(31.25e6));
        assert_eq!(ranking.ranking.len(), 3);
        for pair in ranking.ranking.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        // ULL never wins at the paper's operating point.
        assert_ne!(ranking.winner(), Some("STM CMOS09 ULL"));
    }

    #[test]
    fn ull_wins_at_very_low_frequency() {
        let techs = [
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
        ];
        let ranking = rank_technologies(&techs, &wallace_arch(), Hertz::new(0.2e6));
        assert_eq!(ranking.winner(), Some("STM CMOS09 ULL"));
    }
}
