//! Parameter sweeps and technology-selection studies built on the
//! optimal-power model — the quantitative form of Section 5.

use optpower_numeric::{bisect, linspace};
use optpower_tech::Technology;
use optpower_units::Hertz;

use crate::{ArchParams, ModelError, OperatingPoint, PowerModel};

/// One sample of a frequency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencySample {
    /// The swept frequency.
    pub frequency: Hertz,
    /// The optimal working point at that frequency, if timing closes.
    pub optimum: Option<OperatingPoint>,
}

/// Sweeps the optimal working point of `(tech, arch)` across a
/// logarithmic frequency range.
///
/// Frequencies where the optimiser fails (or the optimum pins at the
/// search boundary, i.e. timing effectively cannot close) yield
/// `optimum: None`.
///
/// # Errors
///
/// [`ModelError::InvalidFrequency`] if the range is non-positive or
/// inverted.
pub fn frequency_sweep(
    tech: Technology,
    arch: &ArchParams,
    f_lo: Hertz,
    f_hi: Hertz,
    points: usize,
) -> Result<Vec<FrequencySample>, ModelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
    if !(f_lo.value() > 0.0) || !(f_hi.value() > f_lo.value()) {
        return Err(ModelError::InvalidFrequency {
            hertz: f_lo.value(),
        });
    }
    let lo = f_lo.value().log10();
    let hi = f_hi.value().log10();
    let mut out = Vec::with_capacity(points.max(2));
    for exp in linspace(lo, hi, points.max(2)) {
        let f = Hertz::new(10f64.powf(exp));
        let optimum = PowerModel::from_technology(tech, arch.clone(), f)
            .and_then(|m| m.optimize())
            .ok()
            .filter(|opt| opt.vdd().value() < 1.45); // boundary = no close
        out.push(FrequencySample {
            frequency: f,
            optimum,
        });
    }
    Ok(out)
}

/// Optimal total power of `(tech, arch)` at `f`, in watts; `None` when
/// timing cannot close in the search window.
fn ptot_at(tech: Technology, arch: &ArchParams, f: Hertz) -> Option<f64> {
    PowerModel::from_technology(tech, arch.clone(), f)
        .and_then(|m| m.optimize())
        .ok()
        .filter(|opt| opt.vdd().value() < 1.45)
        .map(|opt| opt.ptot().value())
}

/// Finds the frequency at which two technologies' optimal powers cross
/// for the same architecture, if one exists in `[f_lo, f_hi]`.
///
/// Below the crossover the first technology is cheaper; above it the
/// second is (or vice versa — check the sign at the ends). This
/// quantifies Section 5's "extreme technology flavors are penalized"
/// into an actual operating-regime boundary.
///
/// Returns `None` when either technology fails to close timing over
/// part of the range or the difference does not change sign.
pub fn flavor_crossover(
    tech_a: Technology,
    tech_b: Technology,
    arch: &ArchParams,
    f_lo: Hertz,
    f_hi: Hertz,
) -> Option<Hertz> {
    let diff = |log_f: f64| -> f64 {
        let f = Hertz::new(10f64.powf(log_f));
        match (ptot_at(tech_a, arch, f), ptot_at(tech_b, arch, f)) {
            (Some(pa), Some(pb)) => pa - pb,
            _ => f64::NAN,
        }
    };
    let lo = f_lo.value().log10();
    let hi = f_hi.value().log10();
    let (d_lo, d_hi) = (diff(lo), diff(hi));
    if !d_lo.is_finite() || !d_hi.is_finite() || d_lo.signum() == d_hi.signum() {
        return None;
    }
    bisect(diff, lo, hi, 1e-6)
        .ok()
        .map(|log_f| Hertz::new(10f64.powf(log_f)))
}

/// Result of ranking several technologies for one architecture at one
/// frequency.
#[derive(Debug, Clone)]
pub struct TechnologyRanking {
    /// `(technology name, optimal Ptot in watts)`, cheapest first;
    /// technologies that cannot close timing are omitted.
    pub ranking: Vec<(&'static str, f64)>,
}

impl TechnologyRanking {
    /// The winning technology's name, if any closed timing.
    pub fn winner(&self) -> Option<&'static str> {
        self.ranking.first().map(|(name, _)| *name)
    }
}

/// Ranks `techs` by optimal total power for `(arch, f)` — the paper's
/// technology-selection use case as an API.
pub fn rank_technologies(techs: &[Technology], arch: &ArchParams, f: Hertz) -> TechnologyRanking {
    let mut ranking: Vec<(&'static str, f64)> = techs
        .iter()
        .filter_map(|t| ptot_at(*t, arch, f).map(|p| (t.name(), p)))
        .collect();
    ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
    TechnologyRanking { ranking }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_tech::Flavor;
    use optpower_units::Farads;

    fn wallace_arch() -> ArchParams {
        // The basic Wallace structure of Table 1 with its
        // back-computed capacitance.
        let c = 56.69e-6 / (729.0 * 0.2976 * 31.25e6 * 0.372 * 0.372);
        ArchParams::builder("Wallace")
            .cells(729)
            .activity(0.2976)
            .logical_depth(17.0)
            .cap_per_cell(Farads::new(c))
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_power_increases_with_frequency() {
        let sweep = frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(1e6),
            Hertz::new(200e6),
            12,
        )
        .unwrap();
        let powers: Vec<f64> = sweep
            .iter()
            .filter_map(|s| s.optimum.map(|o| o.ptot().value()))
            .collect();
        assert!(powers.len() >= 10, "most points close timing");
        for pair in powers.windows(2) {
            assert!(pair[1] > pair[0], "Ptot must grow with f");
        }
    }

    #[test]
    fn sweep_vth_decreases_with_frequency() {
        // Eq. 9: Vth_opt = n·Ut·ln(Io(1−χA)/(2aCf·nUt)) falls with f
        // through both the log argument and (1−χA). (Vdd_opt is NOT
        // monotone: the χB/(1−χA) term pushes up while the log pushes
        // down — which is why this test pins Vth, not Vdd.)
        let sweep = frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(1e6),
            Hertz::new(200e6),
            8,
        )
        .unwrap();
        let vths: Vec<f64> = sweep
            .iter()
            .filter_map(|s| s.optimum.map(|o| o.vth().value()))
            .collect();
        for pair in vths.windows(2) {
            assert!(pair[1] < pair[0], "vth must fall with f: {vths:?}");
        }
    }

    #[test]
    fn sweep_rejects_bad_range() {
        let err = frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(10e6),
            Hertz::new(1e6),
            4,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidFrequency { .. }));
    }

    #[test]
    fn ull_vs_hs_crossover_exists() {
        // ULL wins at very low f (leakage-dominated), HS wins at high f
        // (speed-dominated): a crossover must exist between them.
        let x = flavor_crossover(
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
            &wallace_arch(),
            Hertz::new(0.2e6),
            Hertz::new(200e6),
        );
        let f = x.expect("ULL/HS crossover exists").value();
        assert!(f > 0.2e6 && f < 200e6, "crossover at {f}");
    }

    #[test]
    fn ranking_orders_by_power() {
        let techs = [
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
        ];
        let ranking = rank_technologies(&techs, &wallace_arch(), Hertz::new(31.25e6));
        assert_eq!(ranking.ranking.len(), 3);
        for pair in ranking.ranking.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        // ULL never wins at the paper's operating point.
        assert_ne!(ranking.winner(), Some("STM CMOS09 ULL"));
    }

    #[test]
    fn ull_wins_at_very_low_frequency() {
        let techs = [
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
        ];
        let ranking = rank_technologies(&techs, &wallace_arch(), Hertz::new(0.2e6));
        assert_eq!(ranking.winner(), Some("STM CMOS09 ULL"));
    }
}
