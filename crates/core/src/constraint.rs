//! The timing-closure constraint (Eqs. 5–6) tying Vth to Vdd.
//!
//! At the optimal working point the critical-path delay must exactly
//! match the clock period ("a positive slack would allow further
//! reducing Vdd ... a negative slack would correspond to a non working
//! device"). Substituting the gate-delay model (Eq. 4) into
//! `LD · t_gate = 1/f` yields
//!
//! ```text
//! Vth(Vdd) = Vdd − χ · Vdd^{1/α},    χ = (α·n·Ut/e) · (f·LD·ζ/Io)^{1/α}
//! ```

use optpower_tech::Technology;
use optpower_units::{Hertz, Volts};

/// The timing-closure curve `Vth(Vdd)` for one architecture in one
/// technology at one frequency.
///
/// # Examples
///
/// ```
/// use optpower::TimingConstraint;
/// use optpower_tech::{Flavor, Technology};
/// use optpower_units::{Hertz, Volts};
///
/// let ll = Technology::stm_cmos09(Flavor::LowLeakage);
/// let tc = TimingConstraint::from_technology(&ll, 61.0, Hertz::new(31.25e6));
/// // Raising Vdd relaxes timing, allowing a higher (less leaky) Vth.
/// let vth_lo = tc.vth_at(Volts::new(0.45));
/// let vth_hi = tc.vth_at(Volts::new(0.55));
/// assert!(vth_hi > vth_lo);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConstraint {
    chi: f64,
    alpha: f64,
}

impl TimingConstraint {
    /// Builds the constraint from an explicit `χ` and `α`.
    ///
    /// # Panics
    ///
    /// Panics if `chi` or `alpha` is not positive and finite — both are
    /// derived quantities and a non-physical value is a logic error.
    pub fn new(chi: f64, alpha: f64) -> Self {
        assert!(
            chi > 0.0 && chi.is_finite(),
            "chi must be positive and finite, got {chi}"
        );
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be positive and finite, got {alpha}"
        );
        Self { chi, alpha }
    }

    /// Derives `χ` from technology parameters via Eq. 6:
    /// `χ = (α·n·Ut/e)·(f·LD·ζ/Io)^{1/α}`, with `ζ` taken per gate
    /// ([`Technology::zeta_per_gate`], the documented ring-chain
    /// normalisation of the printed Table 2 values).
    pub fn from_technology(tech: &Technology, logical_depth: f64, f: Hertz) -> Self {
        let alpha = tech.alpha();
        let x = f.value() * logical_depth * tech.zeta_per_gate().value() / tech.io().value();
        let chi = (alpha * tech.n_ut().value() / core::f64::consts::E) * x.powf(1.0 / alpha);
        Self::new(chi, alpha)
    }

    /// Recovers `χ` from a known optimal point `(Vdd*, Vth*)` by
    /// inverting Eq. 5: `χ = (Vdd − Vth)/Vdd^{1/α}`.
    ///
    /// This is the calibration path for reproducing the paper's tables
    /// (DESIGN.md §2): the published optimal points necessarily lie on
    /// the timing-closure curve their optimiser used.
    ///
    /// # Panics
    ///
    /// Panics if `vdd <= vth` or `vdd <= 0` — such a point cannot lie
    /// on any timing-closure curve.
    pub fn from_optimal_point(vdd: Volts, vth: Volts, alpha: f64) -> Self {
        assert!(
            vdd.value() > 0.0 && vdd > vth,
            "optimal point must satisfy vdd > vth > -inf and vdd > 0, got vdd={vdd}, vth={vth}"
        );
        let chi = (vdd - vth).value() / vdd.value().powf(1.0 / alpha);
        Self::new(chi, alpha)
    }

    /// The constraint coefficient `χ`.
    pub fn chi(&self) -> f64 {
        self.chi
    }

    /// The alpha-power exponent the curve was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The threshold voltage that exactly closes timing at `vdd`
    /// (Eq. 5). May be negative at very low supply voltages — the
    /// device would need to be depletion-mode, which simply means such
    /// a `Vdd` is not usable in practice (its leakage is astronomical,
    /// so the optimiser never selects it).
    pub fn vth_at(&self, vdd: Volts) -> Volts {
        Volts::new(vdd.value() - self.chi * vdd.value().powf(1.0 / self.alpha))
    }

    /// Derivative `dVth/dVdd = 1 − (χ/α)·Vdd^{1/α − 1}` of the curve,
    /// used by the stationarity condition in reverse calibration.
    pub fn dvth_dvdd(&self, vdd: Volts) -> f64 {
        1.0 - (self.chi / self.alpha) * vdd.value().powf(1.0 / self.alpha - 1.0)
    }

    /// The supply voltage below which the required `Vth` goes negative:
    /// `Vdd_min = χ^{α/(α−1)}` (from `Vdd = χ·Vdd^{1/α}`).
    ///
    /// Only defined for `α > 1` (always true in this model's range).
    pub fn vdd_floor(&self) -> Volts {
        Volts::new(self.chi.powf(self.alpha / (self.alpha - 1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_tech::Flavor;

    #[test]
    fn roundtrip_chi_through_optimal_point() {
        // Extract chi from a synthetic point and verify vth_at returns
        // exactly the original vth.
        let tc = TimingConstraint::new(0.394, 1.86);
        let vdd = Volts::new(0.478);
        let vth = tc.vth_at(vdd);
        let tc2 = TimingConstraint::from_optimal_point(vdd, vth, 1.86);
        assert!((tc2.chi() - tc.chi()).abs() < 1e-12);
    }

    #[test]
    fn table1_rca_point_chi() {
        // RCA row of Table 1: (0.478, 0.213) with alpha = 1.86.
        let tc = TimingConstraint::from_optimal_point(Volts::new(0.478), Volts::new(0.213), 1.86);
        assert!((tc.chi() - 0.394).abs() < 0.001, "chi = {}", tc.chi());
    }

    #[test]
    fn vth_curve_monotonic_in_vdd() {
        let tc = TimingConstraint::new(0.3, 1.86);
        let mut prev = tc.vth_at(Volts::new(0.2));
        for i in 1..100 {
            let v = Volts::new(0.2 + 0.01 * f64::from(i));
            let vth = tc.vth_at(v);
            assert!(vth > prev, "vth must increase with vdd");
            prev = vth;
        }
    }

    #[test]
    fn chi_grows_with_logical_depth() {
        let ll = Technology::stm_cmos09(Flavor::LowLeakage);
        let f = Hertz::new(31.25e6);
        let shallow = TimingConstraint::from_technology(&ll, 17.0, f);
        let deep = TimingConstraint::from_technology(&ll, 61.0, f);
        assert!(deep.chi() > shallow.chi());
        // chi scales as LD^{1/alpha}.
        let expect = (61.0f64 / 17.0).powf(1.0 / ll.alpha());
        assert!((deep.chi() / shallow.chi() - expect).abs() < 1e-9);
    }

    #[test]
    fn chi_grows_with_frequency() {
        let ll = Technology::stm_cmos09(Flavor::LowLeakage);
        let slow = TimingConstraint::from_technology(&ll, 61.0, Hertz::new(10e6));
        let fast = TimingConstraint::from_technology(&ll, 61.0, Hertz::new(100e6));
        assert!(fast.chi() > slow.chi());
    }

    #[test]
    fn vdd_floor_is_the_zero_crossing() {
        let tc = TimingConstraint::new(0.394, 1.86);
        let floor = tc.vdd_floor();
        assert!(tc.vth_at(floor).value().abs() < 1e-9);
        assert!(tc.vth_at(floor * 1.01).value() > 0.0);
        assert!(tc.vth_at(floor * 0.99).value() < 0.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let tc = TimingConstraint::new(0.25, 1.7);
        let v = Volts::new(0.6);
        let h = 1e-7;
        let fd =
            (tc.vth_at(Volts::new(0.6 + h)) - tc.vth_at(Volts::new(0.6 - h))).value() / (2.0 * h);
        assert!((tc.dvth_dvdd(v) - fd).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "chi must be positive")]
    fn rejects_negative_chi() {
        let _ = TimingConstraint::new(-0.1, 1.86);
    }

    #[test]
    #[should_panic(expected = "optimal point must satisfy")]
    fn rejects_inverted_point() {
        let _ = TimingConstraint::from_optimal_point(Volts::new(0.2), Volts::new(0.3), 1.86);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// chi extraction and curve evaluation are mutual inverses for
        /// any physical point.
        #[test]
        fn point_roundtrip(vdd in 0.2f64..1.2, frac in 0.05f64..0.95, alpha in 1.2f64..2.5) {
            let vth = vdd * frac;
            let tc = TimingConstraint::from_optimal_point(
                Volts::new(vdd), Volts::new(vth), alpha);
            let back = tc.vth_at(Volts::new(vdd));
            prop_assert!((back.value() - vth).abs() < 1e-12);
        }

        /// The timing-closure curve always sits strictly below Vdd
        /// (some positive overdrive is always consumed by the gates).
        #[test]
        fn vth_below_vdd(chi in 0.01f64..1.5, alpha in 1.2f64..2.5, vdd in 0.05f64..1.3) {
            let tc = TimingConstraint::new(chi, alpha);
            prop_assert!(tc.vth_at(Volts::new(vdd)).value() < vdd);
        }
    }
}
