//! Optimal total power consumption under joint Vdd/Vth scaling.
//!
//! This crate is a faithful implementation of
//! *"Architectural and Technology Influence on the Optimal Total Power
//! Consumption"* (Schuster, Nagel, Piguet, Farine — DATE 2006).
//!
//! For a CMOS circuit that must sustain a throughput frequency `f`,
//! lowering the supply voltage `Vdd` cuts dynamic power quadratically
//! but slows the gates; restoring speed by lowering the threshold
//! voltage `Vth` raises sub-threshold leakage exponentially. Exactly
//! one `(Vdd, Vth)` pair minimises the *total* power. This crate
//! computes that optimum two ways:
//!
//! 1. **Numerically** ([`PowerModel::optimize`]) — minimising the exact
//!    Eq. 1 total power along the timing-closure curve of Eq. 5, as the
//!    paper does for its reference columns;
//! 2. **In closed form** ([`PowerModel::closed_form`]) — the paper's
//!    headline Eq. 13, which agrees with the numerical optimum to
//!    within ±3 % across all thirteen 16-bit multipliers of Table 1.
//!
//! The paper's proprietary calibration inputs (Synopsys/ELDO data) are
//! replaced by [`calibrate`] — an exact reverse-calibration from the
//! published optimal points — and by the ab-initio netlist flow in the
//! companion crates (`optpower-mult`, `optpower-sim`, `optpower-sta`).
//!
//! # Quickstart
//!
//! ```
//! use optpower::{ArchParams, PowerModel};
//! use optpower_tech::{Flavor, Technology};
//! use optpower_units::{Farads, Hertz};
//!
//! // The basic 16-bit ripple-carry array multiplier of Table 1.
//! let arch = ArchParams::builder("RCA")
//!     .cells(608)
//!     .activity(0.5056)
//!     .logical_depth(61.0)
//!     .cap_per_cell(Farads::new(70.5e-15))
//!     .build()?;
//!
//! let model = PowerModel::from_technology(
//!     Technology::stm_cmos09(Flavor::LowLeakage),
//!     arch,
//!     Hertz::new(31.25e6),
//! )?;
//!
//! let opt = model.optimize()?;          // full numerical optimum
//! let cf = model.closed_form()?;        // Eq. 13
//! let err = (cf.ptot.value() - opt.ptot().value()) / opt.ptot().value();
//! // Closed form tracks the numerical optimum to a few percent (the
//! // paper reports ±3 % on its calibrated data; see EXPERIMENTS.md).
//! assert!(err.abs() < 0.08);
//! # Ok::<(), optpower::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
pub mod calibrate;
mod closed_form;
mod constraint;
mod error;
mod model;
mod power;
pub mod reference;
mod sensitivity;
pub mod sweep;

pub use arch::{ArchParams, ArchParamsBuilder};
pub use closed_form::ClosedFormSolution;
pub use constraint::TimingConstraint;
pub use error::ModelError;
pub use model::{OperatingPoint, OptimizerConfig, PowerModel};
pub use power::PowerBreakdown;
pub use sensitivity::Sensitivities;
