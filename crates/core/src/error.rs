//! Error type shared by the model-building and solving APIs.

use core::fmt;

use optpower_numeric::NumericError;
use optpower_tech::TechError;

/// Errors from building or solving a [`crate::PowerModel`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An architectural parameter is out of its physical range.
    InvalidArchParameter {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The requested frequency is not positive.
    InvalidFrequency {
        /// The offending value in hertz.
        hertz: f64,
    },
    /// The closed form requires `χ·A < 1`; the architecture is too slow
    /// for the requested frequency in this technology (`1 − χA` would
    /// be zero or negative, cf. the denominator of Eq. 13).
    ArchitectureTooSlow {
        /// The χ·A product that violated the bound.
        chi_a: f64,
    },
    /// The closed form's logarithm argument is not positive — leakage
    /// calibration and dynamic load are inconsistent.
    DegenerateLogArgument {
        /// The non-positive argument value.
        argument: f64,
    },
    /// A numerical routine failed.
    Numeric(NumericError),
    /// A device-model evaluation failed.
    Tech(TechError),
    /// A calibration input is inconsistent (e.g. non-positive power).
    InvalidCalibration {
        /// Human-readable description of the inconsistency.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidArchParameter { field, value } => {
                write!(f, "invalid architecture parameter {field} = {value}")
            }
            Self::InvalidFrequency { hertz } => {
                write!(f, "invalid frequency {hertz} Hz")
            }
            Self::ArchitectureTooSlow { chi_a } => write!(
                f,
                "architecture too slow for the closed form: chi*A = {chi_a} >= 1"
            ),
            Self::DegenerateLogArgument { argument } => write!(
                f,
                "degenerate closed-form logarithm argument {argument} <= 0"
            ),
            Self::Numeric(e) => write!(f, "numerical failure: {e}"),
            Self::Tech(e) => write!(f, "device model failure: {e}"),
            Self::InvalidCalibration { reason } => {
                write!(f, "invalid calibration input: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numeric(e) => Some(e),
            Self::Tech(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for ModelError {
    fn from(e: NumericError) -> Self {
        Self::Numeric(e)
    }
}

impl From<TechError> for ModelError {
    fn from(e: TechError) -> Self {
        Self::Tech(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<ModelError> = vec![
            ModelError::InvalidArchParameter {
                field: "activity",
                value: -1.0,
            },
            ModelError::InvalidFrequency { hertz: 0.0 },
            ModelError::ArchitectureTooSlow { chi_a: 1.2 },
            ModelError::DegenerateLogArgument { argument: -0.5 },
            ModelError::Numeric(NumericError::NonFinite),
            ModelError::InvalidCalibration {
                reason: "ptot must be positive",
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversion_preserves_source() {
        use std::error::Error;
        let e: ModelError = NumericError::NonFinite.into();
        assert!(e.source().is_some());
    }
}
