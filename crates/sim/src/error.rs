//! Typed errors of the simulation engines.

use core::fmt;

use optpower_netlist::CellKind;

/// Errors from constructing or running a simulation engine.
///
/// The timed engines return these instead of panicking so batch flows
/// (activity measurement, ab-initio characterization) can report
/// *which* netlist failed and keep the rest of a sweep alive.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A library delay is unusable: not finite, negative, or beyond
    /// [`crate::MAX_DELAY_GATES`] (which would blow up the event-wheel
    /// horizon). Before integer-tick quantization such a delay would
    /// have poisoned `f64` event ordering silently (`NaN` comparisons
    /// fell back to `Ordering::Equal`, corrupting the heap); now it is
    /// rejected at construction.
    InvalidDelay {
        /// Instance name of the offending cell.
        cell: String,
        /// Its cell kind (the library entry that is broken).
        kind: CellKind,
        /// The offending delay, in gate units.
        delay_gates: f64,
    },
    /// The per-cycle event budget (`10_000 × cells`) was exhausted:
    /// the netlist oscillates instead of settling. Structurally
    /// validated netlists (no combinational loops) cannot trigger
    /// this; it guards hand-built or corrupted graphs.
    Oscillation {
        /// Design name of the oscillating netlist.
        netlist: String,
        /// The clock cycle (0-based) that failed to settle.
        cycle: u64,
        /// The event budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDelay {
                cell,
                kind,
                delay_gates,
            } => write!(
                f,
                "invalid library delay {delay_gates} gate units for cell '{cell}' ({kind}): \
                 delays must be finite, non-negative and at most {} gates",
                crate::MAX_DELAY_GATES
            ),
            Self::Oscillation {
                netlist,
                cycle,
                budget,
            } => write!(
                f,
                "netlist '{netlist}' oscillates: event budget of {budget} exceeded in cycle {cycle}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::InvalidDelay {
            cell: "bad_cell".into(),
            kind: CellKind::Xor2,
            delay_gates: f64::NAN,
        };
        assert!(e.to_string().contains("bad_cell"));
        assert!(e.to_string().contains("NaN"));
        let e = SimError::Oscillation {
            netlist: "ring".into(),
            cycle: 3,
            budget: 40_000,
        };
        assert!(e.to_string().contains("ring"));
        assert!(e.to_string().contains("40000"));
    }
}
