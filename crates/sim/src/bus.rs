//! Bus naming conventions shared by the generators and testbenches.
//!
//! Multi-bit ports are named `{prefix}{bit}` (e.g. `a0 … a15`); these
//! helpers gather them in bit order and encode/decode integers.

use optpower_netlist::{CellId, Logic, Netlist};

/// Primary-input cells forming the bus `{prefix}{0..}`, LSB first.
///
/// Returns an empty vector if no `{prefix}0` input exists.
pub fn bus_inputs(netlist: &Netlist, prefix: &str) -> Vec<CellId> {
    collect_bus(netlist, netlist.primary_inputs(), prefix)
}

/// Primary-output cells forming the bus `{prefix}{0..}`, LSB first.
pub fn bus_outputs(netlist: &Netlist, prefix: &str) -> Vec<CellId> {
    collect_bus(netlist, netlist.primary_outputs(), prefix)
}

fn collect_bus(netlist: &Netlist, ports: &[CellId], prefix: &str) -> Vec<CellId> {
    let mut bus = Vec::new();
    loop {
        let wanted = format!("{prefix}{}", bus.len());
        match ports.iter().find(|&&id| netlist.cell(id).name == wanted) {
            Some(&id) => bus.push(id),
            None => break,
        }
    }
    bus
}

/// Encodes the low `width` bits of `value` as logic levels, LSB first.
pub fn encode_bus(value: u64, width: usize) -> Vec<Logic> {
    (0..width)
        .map(|i| Logic::from_bool((value >> i) & 1 == 1))
        .collect()
}

/// Decodes logic levels (LSB first) into an integer; `None` if any bit
/// is unknown.
pub fn decode_bus(bits: &[Logic]) -> Option<u64> {
    let mut out = 0u64;
    for (i, &bit) in bits.iter().enumerate() {
        match bit.to_bool() {
            Some(true) => out |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 0xABCD, 0xFFFF, 0x1234_5678] {
            assert_eq!(decode_bus(&encode_bus(v, 32)), Some(v));
        }
    }

    #[test]
    fn decode_rejects_x() {
        let mut bits = encode_bus(5, 4);
        bits[2] = Logic::X;
        assert_eq!(decode_bus(&bits), None);
    }

    #[test]
    fn collects_in_bit_order() {
        let mut b = NetlistBuilder::new("bus");
        // Deliberately create out of order: a1, a0, a2.
        let a1 = b.add_input("a1");
        let a0 = b.add_input("a0");
        let a2 = b.add_input("a2");
        let s = b.add_cell(CellKind::Xor3, &[a0, a1, a2]);
        b.add_output("p0", s);
        let nl = b.build().unwrap();
        let bus = bus_inputs(&nl, "a");
        assert_eq!(bus.len(), 3);
        assert_eq!(nl.cell(bus[0]).name, "a0");
        assert_eq!(nl.cell(bus[1]).name, "a1");
        assert_eq!(nl.cell(bus[2]).name, "a2");
        assert_eq!(bus_outputs(&nl, "p").len(), 1);
        assert!(bus_inputs(&nl, "zz").is_empty());
    }
}
