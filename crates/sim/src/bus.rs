//! Bus naming conventions shared by the generators and testbenches.
//!
//! Multi-bit ports are named `{prefix}{bit}` (e.g. `a0 … a15`); these
//! helpers gather them in bit order and encode/decode integers.

use optpower_netlist::{CellId, Logic, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Primary-input cells forming the bus `{prefix}{0..}`, LSB first.
///
/// Returns an empty vector if no `{prefix}0` input exists.
pub fn bus_inputs(netlist: &Netlist, prefix: &str) -> Vec<CellId> {
    collect_bus(netlist, netlist.primary_inputs(), prefix)
}

/// Primary-output cells forming the bus `{prefix}{0..}`, LSB first.
pub fn bus_outputs(netlist: &Netlist, prefix: &str) -> Vec<CellId> {
    collect_bus(netlist, netlist.primary_outputs(), prefix)
}

fn collect_bus(netlist: &Netlist, ports: &[CellId], prefix: &str) -> Vec<CellId> {
    let mut bus = Vec::new();
    loop {
        let wanted = format!("{prefix}{}", bus.len());
        match ports.iter().find(|&&id| netlist.cell(id).name == wanted) {
            Some(&id) => bus.push(id),
            None => break,
        }
    }
    bus
}

/// Encodes the low `width` bits of `value` as logic levels, LSB first.
pub fn encode_bus(value: u64, width: usize) -> Vec<Logic> {
    (0..width)
        .map(|i| Logic::from_bool((value >> i) & 1 == 1))
        .collect()
}

/// Decodes logic levels (LSB first) into an integer; `None` if any bit
/// is unknown.
pub fn decode_bus(bits: &[Logic]) -> Option<u64> {
    let mut out = 0u64;
    for (i, &bit) in bits.iter().enumerate() {
        match bit.to_bool() {
            Some(true) => out |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

/// The random operand stream behind [`crate::measure_activity`] and
/// the per-lane stimulus of [`crate::BitParallelSim`].
///
/// This is the **single** definition of the stimulus sequence: for a
/// given `(seed, a_width, b_width)` every engine — `ZeroDelay`, `Timed`
/// and lane 0 of `BitParallel` — consumes exactly this stream, so
/// activity measurements are comparable across engines by construction.
/// Each item draws one raw `u64` for `a`, then one for `b`, and masks
/// them to the bus widths (the draw order is part of the contract).
#[derive(Debug, Clone)]
pub struct StimulusGen {
    rng: StdRng,
    a_mask: u64,
    b_mask: u64,
}

impl StimulusGen {
    /// A generator for `a`/`b` buses of the given widths.
    pub fn new(seed: u64, a_width: u32, b_width: u32) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            a_mask: width_mask(a_width),
            b_mask: width_mask(b_width),
        }
    }

    /// The next `(a, b)` operand pair.
    pub fn next_item(&mut self) -> (u64, u64) {
        let a = self.rng.gen::<u64>() & self.a_mask;
        let b = self.rng.gen::<u64>() & self.b_mask;
        (a, b)
    }
}

/// All-ones mask for a bus of `width` bits (saturating at 64).
pub fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// In-place 64×64 bit-matrix transpose (LSB-first): on return, bit `r`
/// of `block[c]` equals bit `c` of the input's `block[r]`.
///
/// This is the lane↔bit pivot of the plane engines: `block[lane] =`
/// one operand value per lane turns into `block[bit] =` one 64-lane
/// plane word per bus bit (and back, the transpose is its own
/// inverse). The butterfly swaps half-blocks at strides 32, 16, …, 1 —
/// `6 * 32` word-sized exchanges instead of the 4096 single-bit moves
/// of a naive pivot — which keeps stimulus application a small cost
/// next to plane evaluation (the pivot volume is the same at every
/// plane width, so it would otherwise cap the wide engines' speedup).
pub fn transpose64(block: &mut [u64; 64]) {
    let mut j = 32;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((block[k] >> j) ^ block[k + j]) & m;
            block[k] ^= t << j;
            block[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// The stimulus seed of lane `lane` for a measurement seeded with
/// `seed`.
///
/// Lane 0 *is* the base seed, so the scalar engines (which consume one
/// stream) and lane 0 of the plane engines see identical operands.
/// Higher lanes get SplitMix64-style mixed seeds, giving decorrelated
/// streams per measurement.
///
/// # Domain
///
/// The mixing function is defined for the full `u32` lane range, but
/// the *contract* — lane 0 = base seed, no collisions among the lanes
/// of one measurement — is only claimed (and tested, see
/// `lane_seed_contract`) for `lane < 512`, the widest plane any engine
/// exposes ([`crate::BitParallelSim512`]). Widths nest by
/// construction: a 512-lane measurement's chunk `c` uses exactly the
/// seeds `lane_seed(seed, 64c..64c+64)` that a 64-lane run of that
/// chunk would use, which is what makes wide runs bit-identical to
/// chunked narrow runs. Growing the engine past 512 lanes requires
/// extending the collision test over the new domain first.
pub fn lane_seed(seed: u64, lane: u32) -> u64 {
    if lane == 0 {
        return seed;
    }
    let mut z = seed ^ u64::from(lane).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    #[test]
    fn stimulus_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<(u64, u64)> {
            let mut g = StimulusGen::new(seed, 16, 16);
            (0..32).map(|_| g.next_item()).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn stimulus_respects_bus_widths() {
        let mut g = StimulusGen::new(7, 5, 64);
        let mut widest_b = 0u64;
        for _ in 0..200 {
            let (a, b) = g.next_item();
            assert!(a < 32, "a={a} exceeds 5 bits");
            widest_b |= b;
        }
        assert!(widest_b > u64::from(u32::MAX), "64-bit bus uses high bits");
    }

    #[test]
    fn lane_seed_contract() {
        // The contract covers the widest plane (512 lanes): lane 0 is
        // the base seed and no two lanes of one measurement collide.
        for base in [0u64, 1, 42, 1234, u64::MAX] {
            assert_eq!(lane_seed(base, 0), base, "lane 0 is the base seed");
            let seeds: std::collections::HashSet<u64> =
                (0..512).map(|l| lane_seed(base, l)).collect();
            assert_eq!(seeds.len(), 512, "lanes must not collide (base {base})");
        }
        assert_ne!(lane_seed(1234, 1), lane_seed(1235, 1));
    }

    #[test]
    fn transpose64_matches_naive_pivot_and_self_inverts() {
        // Deterministic pseudo-random block.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut block = [0u64; 64];
        for w in block.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *w = state ^ (state >> 29);
        }
        let original = block;
        let mut naive = [0u64; 64];
        for (r, row) in naive.iter_mut().enumerate() {
            for (c, &w) in original.iter().enumerate() {
                *row |= ((w >> r) & 1) << c;
            }
        }
        transpose64(&mut block);
        assert_eq!(block, naive);
        transpose64(&mut block);
        assert_eq!(block, original, "transpose is its own inverse");
    }

    #[test]
    fn width_mask_table() {
        assert_eq!(width_mask(0), 0);
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(16), 0xFFFF);
        assert_eq!(width_mask(64), u64::MAX);
        assert_eq!(width_mask(200), u64::MAX);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 0xABCD, 0xFFFF, 0x1234_5678] {
            assert_eq!(decode_bus(&encode_bus(v, 32)), Some(v));
        }
    }

    #[test]
    fn decode_rejects_x() {
        let mut bits = encode_bus(5, 4);
        bits[2] = Logic::X;
        assert_eq!(decode_bus(&bits), None);
    }

    #[test]
    fn collects_in_bit_order() {
        let mut b = NetlistBuilder::new("bus");
        // Deliberately create out of order: a1, a0, a2.
        let a1 = b.add_input("a1");
        let a0 = b.add_input("a0");
        let a2 = b.add_input("a2");
        let s = b.add_cell(CellKind::Xor3, &[a0, a1, a2]);
        b.add_output("p0", s);
        let nl = b.build().unwrap();
        let bus = bus_inputs(&nl, "a");
        assert_eq!(bus.len(), 3);
        assert_eq!(nl.cell(bus[0]).name, "a0");
        assert_eq!(nl.cell(bus[1]).name, "a1");
        assert_eq!(nl.cell(bus[2]).name, "a2");
        assert_eq!(bus_outputs(&nl, "p").len(), 1);
        assert!(bus_inputs(&nl, "zz").is_empty());
    }
}
