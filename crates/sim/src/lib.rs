//! Gate-level simulation for the `optpower` ab-initio flow.
//!
//! Replaces the paper's ModelSIM timing-annotated netlist simulation.
//! Four engines share the netlist's three-valued cell semantics:
//!
//! * [`ZeroDelaySim`] — per-cycle functional evaluation in topological
//!   order; at most one transition per cell per cycle (glitch-free).
//!   The *authoritative* engine for functional verification of the
//!   multipliers and the reference semantics the other engines are
//!   checked against.
//! * [`TimedSim`] — event-driven simulation with per-cell transport
//!   delays from the [`optpower_netlist::Library`]; counts *every*
//!   output transition, so unbalanced path delays produce the glitch
//!   activity the paper observes on diagonal pipelines. Authoritative
//!   for the paper's activity factor `a` (glitches included). Time is
//!   kept in **integer picosecond ticks** ([`TICKS_PER_GATE`] ticks
//!   per gate unit, quantized once in [`TimedSim::new`]): event
//!   ordering is total (no `NaN` holes), time sums are exact, and the
//!   event queue is the O(1) bucket wheel of [`event_wheel`] rather
//!   than a binary heap. The hot path allocates nothing per event.
//! * [`ScalarTimedSim`] — the frozen pre-wheel timed engine (binary
//!   heap, per-event allocations) on the same tick base. Bit-identical
//!   to [`TimedSim`] by the differential suite
//!   (`tests/timed_differential.rs`); kept as the reference baseline
//!   and the `timed_scalar` row of `benches/sim.rs`.
//! * [`WidePlaneSim`] — 64, 256 or 512 zero-delay simulations at once
//!   (the [`BitParallelSim`], [`BitParallelSim256`] and
//!   [`BitParallelSim512`] aliases at `W` = 1/4/8 chunks), one
//!   stimulus lane per bit of a `[u64; W]` plane per net, evaluated
//!   with plain bitwise ops. Authoritative for nothing by fiat: each
//!   lane is *bit-identical* to a [`ZeroDelaySim`] run (values and
//!   transition counts — `tests/sim_differential.rs` enforces this,
//!   and that the wide planes equal their chunked 64-lane runs), it is
//!   simply 1–2 orders of magnitude faster per stimulus vector. Use it
//!   wherever glitch-free statistics are wanted at scale, e.g. the
//!   ab-initio glitch-free activity baseline; the wider planes amortise
//!   the per-cell bookkeeping of the topological pass over 4–8× more
//!   streams per step.
//!
//! [`measure_activity`] runs random stimulus through any engine and
//! returns the paper's activity factor
//! `a = transitions per data period / N`. The stimulus stream is
//! defined once by [`StimulusGen`] — the same seed drives the same
//! operands into every engine ([`lane_seed`] defines the per-lane
//! streams of the plane engines, one per lane up to 512, with lane 0 =
//! the base seed).
//! The timed engines return typed [`SimError`]s (invalid library
//! delays at construction, oscillation at runtime) instead of
//! panicking, so sweeps can report which netlist failed;
//! `optpower_explore::measure_timed_activity_pooled` shards a timed
//! measurement across lane-seeded streams on a worker pool with
//! worker-count-invariant sums ([`ActivityReport::combine`]).
//!
//! # Examples
//!
//! ```
//! use optpower_netlist::{CellKind, Library, NetlistBuilder};
//! use optpower_sim::ZeroDelaySim;
//!
//! // Bus pins are named `{prefix}{bit}`: a 1-bit bus "x" is "x0".
//! let mut b = NetlistBuilder::new("inv");
//! let x = b.add_input("x0");
//! let y = b.add_cell(CellKind::Inv, &[x]);
//! b.add_output("y0", y);
//! let nl = b.build()?;
//!
//! let mut sim = ZeroDelaySim::new(&nl);
//! sim.set_input_bits("x", 1);
//! sim.step();
//! assert_eq!(sim.output_bits("y"), Some(0));
//! # Ok::<(), optpower_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod bit_parallel;
mod bus;
mod error;
pub mod event_wheel;
mod timed;
mod timed_scalar;
mod vcd;
mod verify;
mod zero_delay;

pub use activity::{measure_activity, ActivityReport, Engine};
pub use bit_parallel::{BitParallelSim, BitParallelSim256, BitParallelSim512, WidePlaneSim, LANES};
pub use bus::{
    bus_inputs, bus_outputs, decode_bus, encode_bus, lane_seed, transpose64, width_mask,
    StimulusGen,
};
pub use error::SimError;
pub use event_wheel::{EventWheel, TimedEvent};
pub use timed::{quantize_delays, tick_stride, TimedSim, MAX_DELAY_GATES, TICKS_PER_GATE};
pub use timed_scalar::ScalarTimedSim;
pub use vcd::{parse_vcd, LaneProbe, NetProbe, VcdDump, VcdRecorder};
pub use verify::{verify_product, VerifyOutcome};
pub use zero_delay::ZeroDelaySim;
