//! Gate-level simulation for the `optpower` ab-initio flow.
//!
//! Replaces the paper's ModelSIM timing-annotated netlist simulation.
//! Two engines share the netlist's three-valued cell semantics:
//!
//! * [`ZeroDelaySim`] — per-cycle functional evaluation in topological
//!   order; at most one transition per cell per cycle (glitch-free).
//!   Used for functional verification of the multipliers and as the
//!   glitch-free activity baseline.
//! * [`TimedSim`] — event-driven simulation with per-cell transport
//!   delays from the [`optpower_netlist::Library`]; counts *every*
//!   output transition, so unbalanced path delays produce the glitch
//!   activity the paper observes on diagonal pipelines.
//!
//! [`measure_activity`] runs random stimulus through either engine and
//! returns the paper's activity factor
//! `a = transitions per data period / N`.
//!
//! # Examples
//!
//! ```
//! use optpower_netlist::{CellKind, Library, NetlistBuilder};
//! use optpower_sim::ZeroDelaySim;
//!
//! // Bus pins are named `{prefix}{bit}`: a 1-bit bus "x" is "x0".
//! let mut b = NetlistBuilder::new("inv");
//! let x = b.add_input("x0");
//! let y = b.add_cell(CellKind::Inv, &[x]);
//! b.add_output("y0", y);
//! let nl = b.build()?;
//!
//! let mut sim = ZeroDelaySim::new(&nl);
//! sim.set_input_bits("x", 1);
//! sim.step();
//! assert_eq!(sim.output_bits("y"), Some(0));
//! # Ok::<(), optpower_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod bus;
mod timed;
mod vcd;
mod verify;
mod zero_delay;

pub use activity::{measure_activity, ActivityReport, Engine};
pub use bus::{bus_inputs, bus_outputs, decode_bus, encode_bus};
pub use timed::TimedSim;
pub use vcd::VcdRecorder;
pub use verify::{verify_product, VerifyOutcome};
pub use zero_delay::ZeroDelaySim;
