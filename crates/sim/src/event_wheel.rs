//! An indexed bucket queue (timing wheel) over integer picosecond
//! ticks — the priority queue of the hot [`crate::TimedSim`] path.
//!
//! The classic `BinaryHeap<Event>` pays `O(log n)` per push/pop plus
//! comparator overhead on every sift. A gate-level simulator's events
//! have a much stronger structure: every event is scheduled at
//! `now + delay` with `delay ≤ max_delay`, so at any instant all live
//! events fall inside the half-open *horizon* `[now, now + W)` as soon
//! as the wheel size `W` exceeds the largest cell delay. Mapping tick
//! `t` to bucket `t & (W − 1)` is then collision-free among live
//! events: a bucket never mixes two distinct times. Push is O(1)
//! (append to a bucket, set an occupancy bit), pop is O(1) amortised
//! (drain the current bucket in insertion order, then hop to the next
//! occupied bucket via a word-scanned occupancy bitmap).
//!
//! Ordering is *identical* to the reference heap: events come out in
//! ascending `(time, seq)`. Within one tick, insertion order equals
//! `seq` order because the simulator allocates `seq` monotonically —
//! so a bucket is simply drained front to back, and events scheduled
//! *into the current tick while it drains* (zero-delay cells) are
//! appended behind the drain point, exactly where the heap would
//! deliver them. `tests/timed_differential.rs` locks the wheel engine
//! to the frozen scalar reference bit for bit.

use optpower_netlist::{Logic, NetId};

/// One scheduled net-value change, keyed by `(time, seq)`.
///
/// `time` is in integer ticks ([`crate::TICKS_PER_GATE`] per gate
/// unit), which makes event ordering *total* — the `f64` times of the
/// pre-tick engine compared `NaN` as `Ordering::Equal` and silently
/// corrupted heap order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Absolute event time in ticks (cycle-local: each clock cycle
    /// restarts at tick 0).
    pub time: u64,
    /// Global schedule sequence number; FIFO tie-breaker within a tick
    /// and the handle used for inertial-delay preemption.
    pub seq: u64,
    /// The net whose value changes.
    pub net: NetId,
    /// The value it changes to.
    pub value: Logic,
}

/// The timing wheel; see the module docs for the design.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// `W` buckets, `W` a power of two strictly greater than the
    /// largest delay, so live events never alias within a bucket.
    buckets: Vec<Vec<TimedEvent>>,
    /// One bit per bucket: set iff the bucket holds events.
    occupied: Vec<u64>,
    /// `W − 1`, for the `time & mask` bucket map.
    mask: u64,
    /// The tick currently being drained.
    cursor: u64,
    /// Next undrained index within the cursor's bucket.
    drain: usize,
    /// Live (pushed, not yet popped) events.
    len: usize,
}

impl EventWheel {
    /// A wheel able to schedule any delay up to `max_delay_ticks`.
    pub fn new(max_delay_ticks: u64) -> Self {
        let size = (max_delay_ticks + 1).next_power_of_two() as usize;
        Self {
            buckets: vec![Vec::new(); size],
            occupied: vec![0; size.div_ceil(64)],
            mask: size as u64 - 1,
            cursor: 0,
            drain: 0,
            len: 0,
        }
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rewinds the wheel to tick 0 with no events, keeping bucket
    /// capacity (the simulator calls this at every cycle edge, so the
    /// steady state allocates nothing).
    pub fn reset(&mut self) {
        if self.len == 0 {
            // Only the cursor's bucket can still hold (already-drained)
            // events: every other bucket was cleared when exhausted.
            let b = (self.cursor & self.mask) as usize;
            self.buckets[b].clear();
        } else {
            // Abandoning pending events (e.g. after an oscillation
            // error): full clear.
            for b in &mut self.buckets {
                b.clear();
            }
        }
        self.occupied.iter_mut().for_each(|w| *w = 0);
        self.cursor = 0;
        self.drain = 0;
        self.len = 0;
    }

    /// Schedules an event. `ev.time` must lie in the wheel's current
    /// horizon `[cursor, cursor + W)` — guaranteed by construction
    /// when delays are at most `max_delay_ticks` and time never flows
    /// backwards.
    #[inline]
    pub fn push(&mut self, ev: TimedEvent) {
        debug_assert!(ev.time >= self.cursor, "event scheduled in the past");
        debug_assert!(ev.time - self.cursor <= self.mask, "event beyond horizon");
        let b = (ev.time & self.mask) as usize;
        debug_assert!(
            self.buckets[b]
                .last()
                .is_none_or(|last| last.time == ev.time),
            "bucket aliases two distinct times"
        );
        self.buckets[b].push(ev);
        self.occupied[b / 64] |= 1 << (b % 64);
        self.len += 1;
    }

    /// The tick of the earliest pending event without removing it —
    /// the simulator's "does the current tick continue?" probe.
    /// Purely observational: the cursor does not move, so the caller
    /// may still schedule events at or after the *current* tick (the
    /// batch flush does exactly that) before the next [`pop`] hops
    /// forward.
    ///
    /// [`pop`]: EventWheel::pop
    #[inline]
    pub fn next_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let b = (self.cursor & self.mask) as usize;
        if self.buckets[b].len() > self.drain {
            return Some(self.cursor);
        }
        // Current bucket drained: the earliest event sits in the next
        // occupied bucket (there is one, since len > 0).
        Some(self.next_occupied_tick(b))
    }

    /// Removes and returns the earliest event in `(time, seq)` order.
    #[inline]
    pub fn pop(&mut self) -> Option<TimedEvent> {
        if self.len == 0 {
            return None;
        }
        loop {
            let b = (self.cursor & self.mask) as usize;
            if let Some(&ev) = self.buckets[b].get(self.drain) {
                debug_assert_eq!(ev.time, self.cursor, "horizon invariant violated");
                self.drain += 1;
                self.len -= 1;
                return Some(ev);
            }
            // Bucket exhausted: recycle it and hop to the next
            // occupied one.
            self.buckets[b].clear();
            self.occupied[b / 64] &= !(1 << (b % 64));
            self.drain = 0;
            self.cursor = self.next_occupied_tick(b);
        }
    }

    /// Removes the entire earliest-tick bucket in one operation,
    /// swapping its contents into `run` (whose previous contents are
    /// cleared) and returning the bucket's tick. Events come back in
    /// insertion order — within one tick that is `seq` order, exactly
    /// what [`EventWheel::pop`] would deliver one by one.
    ///
    /// This is the *bucket-run drain*: instead of freezing the current
    /// bucket in place while popping it event by event (so that
    /// zero-delay cells can append behind the drain point), the whole
    /// run is taken out and the bucket is immediately free. It is only
    /// sound when **no event can be scheduled at the run's own tick
    /// while the run is processed** — i.e. when every delay is at
    /// least one stride unit, since then a push from tick `t` targets
    /// `t + d` with `1 ≤ d ≤ W − 1` and never re-enters bucket
    /// `t & (W − 1)`. The caller asserts that precondition by using
    /// this method at all; [`crate::TimedSim`] checks it once at
    /// construction and falls back to [`EventWheel::pop`] when a
    /// zero-delay evaluable cell exists.
    ///
    /// Must not be interleaved with [`EventWheel::pop`] mid-bucket
    /// (run mode never is: an engine picks one drain style for its
    /// whole lifetime).
    #[inline]
    pub fn pop_run(&mut self, run: &mut Vec<TimedEvent>) -> Option<u64> {
        debug_assert_eq!(self.drain, 0, "pop_run interleaved with pop mid-bucket");
        if self.len == 0 {
            return None;
        }
        let mut b = (self.cursor & self.mask) as usize;
        if self.buckets[b].is_empty() {
            self.cursor = self.next_occupied_tick(b);
            b = (self.cursor & self.mask) as usize;
        }
        self.occupied[b / 64] &= !(1 << (b % 64));
        self.len -= self.buckets[b].len();
        run.clear();
        core::mem::swap(run, &mut self.buckets[b]);
        debug_assert!(run.iter().all(|ev| ev.time == self.cursor));
        Some(self.cursor)
    }

    /// The absolute tick of the next occupied bucket strictly after
    /// bucket `from` in circular order. Only called with `len > 0`.
    fn next_occupied_tick(&self, from: usize) -> u64 {
        let size = self.buckets.len();
        if let Some(b) = self.scan_range(from + 1, size) {
            return self.cursor + (b - from) as u64;
        }
        if let Some(b) = self.scan_range(0, from) {
            return self.cursor + (size - from + b) as u64;
        }
        unreachable!("len > 0 implies an occupied bucket within the horizon")
    }

    /// Lowest set occupancy bit with bucket index in `[lo, hi)`.
    fn scan_range(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let (wlo, whi) = (lo / 64, (hi - 1) / 64);
        for w in wlo..=whi {
            let mut word = self.occupied[w];
            if w == wlo {
                word &= !0u64 << (lo % 64);
            }
            if w == whi {
                let top = hi - w * 64; // in 1..=64
                if top < 64 {
                    word &= (1u64 << top) - 1;
                }
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> TimedEvent {
        TimedEvent {
            time,
            seq,
            net: NetId(0),
            value: Logic::One,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = EventWheel::new(100);
        // Push out of time order (but seq increases with push order,
        // as in the simulator).
        w.push(ev(50, 1));
        w.push(ev(10, 2));
        w.push(ev(50, 3));
        w.push(ev(0, 4));
        assert_eq!(w.len(), 4);
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| w.pop().map(|e| (e.time, e.seq))).collect();
        assert_eq!(order, vec![(0, 4), (10, 2), (50, 1), (50, 3)]);
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn zero_delay_events_land_behind_the_drain_point() {
        let mut w = EventWheel::new(4);
        w.push(ev(3, 1));
        let first = w.pop().unwrap();
        assert_eq!((first.time, first.seq), (3, 1));
        // While "at" tick 3, schedule another event at tick 3 (a
        // zero-delay cell) and one a delay later.
        w.push(ev(3, 2));
        w.push(ev(7, 3));
        assert_eq!(w.pop().map(|e| e.seq), Some(2));
        assert_eq!(w.pop().map(|e| e.seq), Some(3));
    }

    #[test]
    fn wraps_far_beyond_the_wheel_size() {
        // Cursor advances tick by tick through many wheel revolutions.
        let mut w = EventWheel::new(7);
        let mut seq = 0;
        let mut popped = Vec::new();
        // Chain: each popped event schedules the next 5 ticks later.
        w.push(ev(0, 0));
        while let Some(e) = w.pop() {
            popped.push(e.time);
            if seq < 40 {
                seq += 1;
                w.push(ev(e.time + 5, seq));
            }
        }
        assert_eq!(popped.len(), 41);
        assert!(popped.windows(2).all(|p| p[1] == p[0] + 5));
        assert_eq!(*popped.last().unwrap(), 200);
    }

    #[test]
    fn reset_recycles_for_the_next_cycle() {
        let mut w = EventWheel::new(15);
        w.push(ev(9, 1));
        w.push(ev(2, 2));
        assert!(w.pop().is_some());
        // Mid-drain reset (simulating an abandoned cycle).
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        // The wheel is back at tick 0 and fully reusable.
        w.push(ev(1, 3));
        assert_eq!(w.pop().map(|e| e.seq), Some(3));
        w.reset();
        w.push(ev(0, 4));
        assert_eq!(w.pop().map(|e| e.seq), Some(4));
    }

    #[test]
    fn next_time_peeks_without_consuming() {
        let mut w = EventWheel::new(20);
        w.push(ev(4, 1));
        w.push(ev(4, 2));
        w.push(ev(9, 3));
        assert_eq!(w.next_time(), Some(4));
        assert_eq!(w.pop().map(|e| e.seq), Some(1));
        assert_eq!(w.next_time(), Some(4), "second tick-4 event still pending");
        assert_eq!(w.pop().map(|e| e.seq), Some(2));
        assert_eq!(
            w.next_time(),
            Some(9),
            "peek advances over the drained tick"
        );
        assert_eq!(w.pop().map(|e| e.seq), Some(3));
        assert_eq!(w.next_time(), None);
    }

    #[test]
    fn single_bucket_wheel_is_a_fifo() {
        // max delay 0 : one bucket, pure FIFO at one tick per cycle.
        let mut w = EventWheel::new(0);
        w.push(ev(0, 1));
        w.push(ev(0, 2));
        w.push(ev(0, 3));
        let seqs: Vec<u64> = std::iter::from_fn(|| w.pop().map(|e| e.seq)).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn pop_run_drains_whole_buckets_in_pop_order() {
        let mut w = EventWheel::new(100);
        w.push(ev(50, 1));
        w.push(ev(10, 2));
        w.push(ev(50, 3));
        w.push(ev(0, 4));
        let mut run = Vec::new();
        assert_eq!(w.pop_run(&mut run), Some(0));
        assert_eq!(run.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4]);
        assert_eq!(w.pop_run(&mut run), Some(10));
        assert_eq!(run.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2]);
        assert_eq!(w.pop_run(&mut run), Some(50));
        assert_eq!(run.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 3]);
        assert!(w.is_empty());
        assert_eq!(w.pop_run(&mut run), None);
        // The last run buffer is left untouched by a `None` result.
        assert_eq!(run.len(), 2);
    }

    #[test]
    fn pop_run_allows_pushes_into_later_ticks_mid_run() {
        // Delays >= 1 stride: while processing the tick-3 run, new
        // events land at later ticks (possibly a full wheel wrap away
        // in absolute time, but never in the drained bucket).
        let mut w = EventWheel::new(7);
        w.push(ev(3, 1));
        let mut run = Vec::new();
        assert_eq!(w.pop_run(&mut run), Some(3));
        w.push(ev(4, 2));
        w.push(ev(10, 3));
        assert_eq!(w.pop_run(&mut run), Some(4));
        assert_eq!(run[0].seq, 2);
        assert_eq!(w.pop_run(&mut run), Some(10));
        assert_eq!(run[0].seq, 3);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_run_matches_pop_on_a_random_schedule() {
        // Differential: the concatenation of pop_run runs equals the
        // pop-by-pop sequence for the same pushes (all delays >= 1).
        let schedule: Vec<(u64, u64)> = (0..200u64).map(|i| ((i * 37) % 96, i)).collect();
        let mut a = EventWheel::new(100);
        let mut b = EventWheel::new(100);
        for &(t, s) in &schedule {
            a.push(ev(t, s));
            b.push(ev(t, s));
        }
        let by_pop: Vec<(u64, u64)> =
            std::iter::from_fn(|| a.pop().map(|e| (e.time, e.seq))).collect();
        let mut by_run = Vec::new();
        let mut run = Vec::new();
        while let Some(t) = b.pop_run(&mut run) {
            for e in &run {
                by_run.push((t, e.seq));
            }
        }
        assert_eq!(by_pop, by_run);
    }

    #[test]
    fn occupancy_scan_crosses_word_boundaries() {
        // Wheel of 256 buckets = 4 occupancy words; events straddle
        // word edges.
        let mut w = EventWheel::new(200);
        for (i, t) in [63u64, 64, 127, 128, 255].iter().enumerate() {
            w.push(ev(*t, i as u64));
        }
        let times: Vec<u64> = std::iter::from_fn(|| w.pop().map(|e| e.time)).collect();
        assert_eq!(times, vec![63, 64, 127, 128, 255]);
    }
}
