//! Functional verification of multiplier netlists against `a × b`.

use optpower_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{bus_inputs, bus_outputs, ZeroDelaySim};

/// Outcome of [`verify_product`].
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyOutcome {
    /// Every checked item matched `a × b` at a constant latency of the
    /// given number of data items.
    Correct {
        /// Detected pipeline latency in data items.
        latency_items: u32,
    },
    /// No constant latency explains the output stream; the payload is
    /// a human-readable mismatch description.
    Mismatch(String),
}

impl VerifyOutcome {
    /// `true` for [`VerifyOutcome::Correct`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Self::Correct { .. })
    }
}

/// Checks that a netlist computes `p = a × b` on random operands.
///
/// Drives the `a`/`b` input buses with `items` random operand pairs,
/// each held for `cycles_per_item` clock cycles, and reads the `p`
/// output bus at the end of each item. If the design has a `rst`
/// input bus it is held high for the first item (X-recovery for
/// sequential controllers).
///
/// The design's pipeline latency is auto-detected: the output stream
/// is matched against the product stream at every candidate latency
/// `0..=max_latency_items`, and the unique consistent latency is
/// reported. This makes the checker agnostic to pipelining depth,
/// parallelisation latency and sequential-result timing.
///
/// # Panics
///
/// Panics if the netlist lacks `a`, `b` or `p` buses.
pub fn verify_product(
    netlist: &Netlist,
    items: usize,
    cycles_per_item: u32,
    max_latency_items: u32,
    seed: u64,
) -> VerifyOutcome {
    let a_w = bus_inputs(netlist, "a").len();
    let b_w = bus_inputs(netlist, "b").len();
    let p_w = bus_outputs(netlist, "p").len();
    assert!(a_w > 0 && b_w > 0, "verify_product requires a/b buses");
    assert!(p_w > 0, "verify_product requires a p output bus");
    let has_rst = !bus_inputs(netlist, "rst").is_empty();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = ZeroDelaySim::new(netlist);
    let mut applied: Vec<(u64, u64)> = Vec::with_capacity(items);
    let mut observed: Vec<Option<u64>> = Vec::with_capacity(items);

    for item in 0..items {
        if has_rst {
            sim.set_input_bits("rst", u64::from(item == 0));
        }
        let a = rng.gen::<u64>() & mask(a_w);
        let b = rng.gen::<u64>() & mask(b_w);
        sim.set_input_bits("a", a);
        sim.set_input_bits("b", b);
        for _ in 0..cycles_per_item.max(1) {
            sim.step();
        }
        applied.push((a, b));
        observed.push(sim.output_bits("p"));
    }

    // The first item may be a reset item; start scoring after the
    // largest candidate latency plus the reset item.
    let start = max_latency_items as usize + 1;
    if items <= start + 4 {
        return VerifyOutcome::Mismatch(format!("need more than {start} items to detect latency"));
    }
    'candidates: for lat in 0..=max_latency_items {
        for t in start..items {
            let (a, b) = applied[t - lat as usize];
            let expect = (a as u128 * b as u128) as u64 & mask(p_w);
            match observed[t] {
                Some(got) if got == expect => {}
                _ => continue 'candidates,
            }
        }
        return VerifyOutcome::Correct { latency_items: lat };
    }

    // Build a diagnostic for the zero-latency hypothesis.
    let t = start;
    let (a, b) = applied[t];
    VerifyOutcome::Mismatch(format!(
        "no constant latency in 0..={max_latency_items} fits; e.g. item {t}: \
         a={a} b={b} expect={} got={:?}",
        (a as u128 * b as u128) as u64 & mask(p_w),
        observed[t],
    ))
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetId, NetlistBuilder};

    /// 2×2-bit combinational multiplier built from first principles.
    fn mult2x2() -> Netlist {
        let mut b = NetlistBuilder::new("m22");
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let pp00 = b.add_cell(CellKind::And2, &[a0, b0]);
        let pp10 = b.add_cell(CellKind::And2, &[a1, b0]);
        let pp01 = b.add_cell(CellKind::And2, &[a0, b1]);
        let pp11 = b.add_cell(CellKind::And2, &[a1, b1]);
        let p1 = b.add_cell(CellKind::Xor2, &[pp10, pp01]);
        let c1 = b.add_cell(CellKind::And2, &[pp10, pp01]);
        let p2 = b.add_cell(CellKind::Xor2, &[pp11, c1]);
        let p3 = b.add_cell(CellKind::And2, &[pp11, c1]);
        b.add_output("p0", pp00);
        b.add_output("p1", p1);
        b.add_output("p2", p2);
        b.add_output("p3", p3);
        b.build().unwrap()
    }

    /// The same multiplier with a one-stage output register.
    fn mult2x2_registered() -> Netlist {
        let mut b = NetlistBuilder::new("m22r");
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let pp00 = b.add_cell(CellKind::And2, &[a0, b0]);
        let pp10 = b.add_cell(CellKind::And2, &[a1, b0]);
        let pp01 = b.add_cell(CellKind::And2, &[a0, b1]);
        let pp11 = b.add_cell(CellKind::And2, &[a1, b1]);
        let p1 = b.add_cell(CellKind::Xor2, &[pp10, pp01]);
        let c1 = b.add_cell(CellKind::And2, &[pp10, pp01]);
        let p2 = b.add_cell(CellKind::Xor2, &[pp11, c1]);
        let p3 = b.add_cell(CellKind::And2, &[pp11, c1]);
        let bits: Vec<NetId> = [pp00, p1, p2, p3]
            .into_iter()
            .map(|n| b.add_cell(CellKind::Dff, &[n]))
            .collect();
        for (i, q) in bits.into_iter().enumerate() {
            b.add_output(format!("p{i}"), q);
        }
        b.build().unwrap()
    }

    #[test]
    fn combinational_multiplier_verifies_at_zero_latency() {
        let nl = mult2x2();
        match verify_product(&nl, 40, 1, 3, 11) {
            VerifyOutcome::Correct { latency_items } => assert_eq!(latency_items, 0),
            VerifyOutcome::Mismatch(m) => panic!("{m}"),
        }
    }

    #[test]
    fn registered_multiplier_verifies_at_one_item_latency() {
        let nl = mult2x2_registered();
        match verify_product(&nl, 40, 1, 3, 11) {
            VerifyOutcome::Correct { latency_items } => assert_eq!(latency_items, 1),
            VerifyOutcome::Mismatch(m) => panic!("{m}"),
        }
    }

    #[test]
    fn broken_multiplier_is_rejected() {
        // Swap two product bits: no latency can fix that.
        let mut b = NetlistBuilder::new("broken");
        let a0 = b.add_input("a0");
        let b0 = b.add_input("b0");
        let and = b.add_cell(CellKind::And2, &[a0, b0]);
        let or = b.add_cell(CellKind::Or2, &[a0, b0]);
        b.add_output("p0", or); // should be the AND
        b.add_output("p1", and);
        let nl = b.build().unwrap();
        let out = verify_product(&nl, 40, 1, 3, 5);
        assert!(!out.is_correct(), "{out:?}");
    }
}
