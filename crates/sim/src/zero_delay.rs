//! The zero-delay (functional) engine.

use optpower_netlist::{CellId, CellKind, Logic, Netlist};

use crate::bus::{bus_inputs, bus_outputs, decode_bus};

/// Per-cycle functional simulator: on each [`ZeroDelaySim::step`] the
/// DFFs clock simultaneously, then the combinational core is evaluated
/// once in topological order. At most one transition per cell per
/// cycle — the glitch-free reference.
#[derive(Debug, Clone)]
pub struct ZeroDelaySim<'n> {
    netlist: &'n Netlist,
    /// Current value of every net.
    values: Vec<Logic>,
    /// Pending primary-input values applied at the next step.
    input_next: Vec<Logic>,
    /// Transition count per cell output (known↔known toggles only).
    transitions: Vec<u64>,
    cycle: u64,
}

impl<'n> ZeroDelaySim<'n> {
    /// Creates a simulator with every net at `X` and all DFFs
    /// uninitialised.
    pub fn new(netlist: &'n Netlist) -> Self {
        Self {
            netlist,
            values: vec![Logic::X; netlist.nets().len()],
            input_next: vec![Logic::X; netlist.cells().len()],
            transitions: vec![0; netlist.cells().len()],
            cycle: 0,
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of [`ZeroDelaySim::step`]s executed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets one primary input (takes effect at the next step).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell.
    pub fn set_input(&mut self, input: CellId, value: Logic) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{:?} is not a primary input",
            input
        );
        self.input_next[input.index()] = value;
    }

    /// Sets an entire input bus `{prefix}{0..}` from an integer.
    pub fn set_input_bits(&mut self, prefix: &str, value: u64) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (i, id) in bus.into_iter().enumerate() {
            self.set_input(id, Logic::from_bool((value >> i) & 1 == 1));
        }
    }

    /// Current value of a net.
    pub fn value(&self, net: optpower_netlist::NetId) -> Logic {
        self.values[net.index()]
    }

    /// Decodes an output bus `{prefix}{0..}`; `None` if any bit is `X`.
    pub fn output_bits(&self, prefix: &str) -> Option<u64> {
        let bus = bus_outputs(self.netlist, prefix);
        if bus.is_empty() {
            return None;
        }
        let bits: Vec<Logic> = bus
            .iter()
            .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()])
            .collect();
        decode_bus(&bits)
    }

    /// Advances one clock cycle: clocks every DFF (capturing the D
    /// value settled in the previous cycle), applies pending inputs,
    /// then evaluates the combinational core in topological order.
    pub fn step(&mut self) {
        // 1. Sample D pins (pre-edge values), then update all Q outputs.
        let dff_next: Vec<(CellId, Logic)> = self
            .netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(i, c)| (CellId(i as u32), self.values[c.inputs[0].index()]))
            .collect();
        for (id, q) in dff_next {
            self.write(id, q);
        }
        // 2. Apply primary inputs.
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if cell.kind == CellKind::Input {
                let v = self.input_next[i];
                self.write(CellId(i as u32), v);
            }
        }
        // 3. One topological pass over the combinational core.
        for &id in self.netlist.topo_order() {
            let cell = self.netlist.cell(id);
            match cell.kind {
                CellKind::Input | CellKind::Dff => {} // already updated
                _ => {
                    let ins: Vec<Logic> =
                        cell.inputs.iter().map(|n| self.values[n.index()]).collect();
                    let out = cell.kind.eval(&ins);
                    self.write(id, out);
                }
            }
        }
        self.cycle += 1;
    }

    fn write(&mut self, id: CellId, value: Logic) {
        let net = self.netlist.cell(id).output;
        let old = self.values[net.index()];
        if old != value {
            if old.is_known() && value.is_known() {
                self.transitions[id.index()] += 1;
            }
            self.values[net.index()] = value;
        }
    }

    /// Total known↔known transitions of logic-cell outputs so far.
    pub fn logic_transitions(&self) -> u64 {
        self.netlist
            .logic_cells()
            .map(|(id, _)| self.transitions[id.index()])
            .sum()
    }

    /// Resets the transition counters (e.g. after warm-up cycles).
    pub fn reset_transitions(&mut self) {
        self.transitions.iter_mut().for_each(|t| *t = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.add_input("a0");
        let x = b.add_input("b0");
        let c = b.add_input("c0");
        let s = b.add_cell(CellKind::Xor3, &[a, x, c]);
        let co = b.add_cell(CellKind::Maj3, &[a, x, c]);
        b.add_output("p0", s);
        b.add_output("p1", co);
        b.build().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        let mut sim = ZeroDelaySim::new(&nl);
        for a in 0..2u64 {
            for b in 0..2u64 {
                for c in 0..2u64 {
                    sim.set_input_bits("a", a);
                    sim.set_input_bits("b", b);
                    sim.set_input_bits("c", c);
                    sim.step();
                    let out = sim.output_bits("p").unwrap();
                    assert_eq!(out, a + b + c, "a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn outputs_are_x_before_inputs_arrive() {
        let nl = full_adder();
        let mut sim = ZeroDelaySim::new(&nl);
        sim.step();
        assert_eq!(sim.output_bits("p"), None);
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[d]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        sim.set_input_bits("a", 1);
        sim.step(); // input visible, q still X (captured pre-edge X)
        assert_eq!(sim.output_bits("p"), None);
        sim.step(); // q captures the 1
        assert_eq!(sim.output_bits("p"), Some(1));
        sim.set_input_bits("a", 0);
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(1), "old value holds");
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(0));
    }

    #[test]
    fn transition_counting_is_glitch_free() {
        // XOR of two inputs that both flip: zero-delay sees at most one
        // output transition per cycle.
        let mut b = NetlistBuilder::new("x");
        let a = b.add_input("a0");
        let c = b.add_input("b0");
        let s = b.add_cell(CellKind::Xor2, &[a, c]);
        b.add_output("p0", s);
        let nl = b.build().unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        sim.set_input_bits("a", 0);
        sim.set_input_bits("b", 0);
        sim.step();
        sim.reset_transitions();
        // Both inputs flip: XOR output stays 0 — no transition at all.
        sim.set_input_bits("a", 1);
        sim.set_input_bits("b", 1);
        sim.step();
        assert_eq!(sim.logic_transitions(), 0);
    }

    #[test]
    fn x_to_known_is_not_counted() {
        let nl = full_adder();
        let mut sim = ZeroDelaySim::new(&nl);
        sim.set_input_bits("a", 1);
        sim.set_input_bits("b", 0);
        sim.set_input_bits("c", 0);
        sim.step();
        // First settle is X->known everywhere: not a power transition.
        assert_eq!(sim.logic_transitions(), 0);
    }

    #[test]
    fn toggle_flop_oscillates() {
        // q -> inv -> d: classic divide-by-two once initialised.
        let mut b = NetlistBuilder::new("toggle");
        // Need q init: use a mux to force 0 at cycle 0 via an input.
        let rst = b.add_input("a0");
        let q_net_placeholder = b.add_cell(CellKind::Const0, &[]);
        // dff reads mux(inv(q), 0, rst): rst=1 -> 0.
        let inv = b.add_cell(CellKind::Inv, &[q_net_placeholder]); // rewired below
        let zero = b.add_cell(CellKind::Const0, &[]);
        let dmux = b.add_cell(CellKind::Mux2, &[inv, zero, rst]);
        let q = b.add_cell(CellKind::Dff, &[dmux]);
        b.rewire(inv, 0, q);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        sim.set_input_bits("a", 1); // reset
        sim.step();
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(0));
        sim.set_input_bits("a", 0); // release reset
        sim.step(); // captures the D settled while reset was still high
        assert_eq!(sim.output_bits("p"), Some(0));
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(1));
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(0));
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(1));
    }
}
