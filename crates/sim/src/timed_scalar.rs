//! The frozen scalar reference of the timed engine: a `BinaryHeap`
//! event queue and per-event allocations, exactly the shape of the
//! pre-wheel hot path.
//!
//! [`ScalarTimedSim`] exists for two jobs and is deliberately **not**
//! optimised:
//!
//! * it is the differential baseline the production [`crate::TimedSim`]
//!   is locked against bit for bit (values, per-cell transition counts
//!   and processed-event counts; see `tests/timed_differential.rs`);
//! * it is the `timed_scalar` row of `benches/sim.rs`, so the
//!   committed `BENCH_sweep.json` keeps measuring what the event-wheel
//!   rebuild actually bought.
//!
//! It shares the integer-tick time base (and therefore the total event
//! ordering and the delay validation) with the wheel engine through
//! [`crate::quantize_delays`] — the two engines may only differ in
//! queue mechanics, never in semantics.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use optpower_netlist::{CellId, CellKind, Library, Logic, NetId, Netlist};

use crate::bus::{bus_inputs, bus_outputs, decode_bus};
use crate::event_wheel::TimedEvent;
use crate::timed::{event_budget, quantize_delays};
use crate::SimError;

/// Min-heap adapter: `BinaryHeap` is a max-heap, so compare reversed.
/// Integer ticks make this ordering *total* — the old `f64` version
/// fell back to `Ordering::Equal` on incomparable (NaN) times, which
/// silently corrupted heap order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry(TimedEvent);

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Earliest time first, FIFO (lowest seq) within a time.
        other
            .0
            .time
            .cmp(&self.0.time)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pre-wheel event-driven simulator (inertial delays, glitch
/// counting) kept as the frozen reference; see the module docs. The
/// public API mirrors [`crate::TimedSim`].
#[derive(Debug, Clone)]
pub struct ScalarTimedSim<'n> {
    netlist: &'n Netlist,
    /// Per-cell propagation delay in ticks.
    delays: Vec<u64>,
    values: Vec<Logic>,
    input_next: Vec<Logic>,
    transitions: Vec<u64>,
    queue: BinaryHeap<HeapEntry>,
    /// Latest scheduled event per net; an older pending event is
    /// cancelled when popped (inertial-delay preemption).
    latest_seq: Vec<u64>,
    seq: u64,
    cycle: u64,
}

impl<'n> ScalarTimedSim<'n> {
    /// Creates a reference timing simulator using `library` delays.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDelay`] under exactly the conditions of
    /// [`crate::TimedSim::new`].
    pub fn new(netlist: &'n Netlist, library: &Library) -> Result<Self, SimError> {
        let delays = quantize_delays(netlist, library)?;
        Ok(Self {
            netlist,
            delays,
            values: vec![Logic::X; netlist.nets().len()],
            input_next: vec![Logic::X; netlist.cells().len()],
            transitions: vec![0; netlist.cells().len()],
            queue: BinaryHeap::new(),
            latest_seq: vec![0; netlist.nets().len()],
            seq: 0,
            cycle: 0,
        })
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets one primary input (takes effect at the next cycle edge).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell.
    pub fn set_input(&mut self, input: CellId, value: Logic) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{input:?} is not a primary input"
        );
        self.input_next[input.index()] = value;
    }

    /// Sets an entire input bus `{prefix}{0..}` from an integer.
    pub fn set_input_bits(&mut self, prefix: &str, value: u64) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (i, id) in bus.into_iter().enumerate() {
            self.set_input(id, Logic::from_bool((value >> i) & 1 == 1));
        }
    }

    /// Current (settled) value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Decodes an output bus `{prefix}{0..}`; `None` if any bit is `X`.
    pub fn output_bits(&self, prefix: &str) -> Option<u64> {
        let bus = bus_outputs(self.netlist, prefix);
        if bus.is_empty() {
            return None;
        }
        let bits: Vec<Logic> = bus
            .iter()
            .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()])
            .collect();
        decode_bus(&bits)
    }

    /// Runs one full clock cycle; returns the number of events
    /// processed.
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] under exactly the conditions of
    /// [`crate::TimedSim::step`].
    pub fn step(&mut self) -> Result<u64, SimError> {
        // 0. First cycle only: drive constants and seed an evaluation
        // of every combinational cell.
        if self.cycle == 0 {
            for i in 0..self.netlist.cells().len() {
                let id = CellId(i as u32);
                match self.netlist.cell(id).kind {
                    CellKind::Const0 => self.commit(id, Logic::Zero, 0),
                    CellKind::Const1 => self.commit(id, Logic::One, 0),
                    _ => {}
                }
            }
            for i in 0..self.netlist.cells().len() {
                let id = CellId(i as u32);
                let cell = self.netlist.cell(id);
                match cell.kind {
                    CellKind::Input
                    | CellKind::Const0
                    | CellKind::Const1
                    | CellKind::Dff
                    | CellKind::Output => {}
                    _ => {
                        let ins: Vec<Logic> =
                            cell.inputs.iter().map(|n| self.values[n.index()]).collect();
                        let new = cell.kind.eval(&ins);
                        self.seq += 1;
                        self.latest_seq[cell.output.index()] = self.seq;
                        self.queue.push(HeapEntry(TimedEvent {
                            time: self.delays[id.index()],
                            seq: self.seq,
                            net: cell.output,
                            value: new,
                        }));
                    }
                }
            }
        }
        // 1. Capture D pins (values settled in the previous cycle).
        let dff_next: Vec<(CellId, Logic)> = self
            .netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(i, c)| (CellId(i as u32), self.values[c.inputs[0].index()]))
            .collect();
        // 2. At tick 0: update Q outputs and primary inputs.
        for (id, q) in dff_next {
            self.commit(id, q, 0);
        }
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if cell.kind == CellKind::Input {
                let v = self.input_next[i];
                self.commit(CellId(i as u32), v, 0);
            }
        }
        // 3. Event loop until quiescent.
        let budget = event_budget(self.netlist);
        let mut processed = 0u64;
        while let Some(HeapEntry(ev)) = self.queue.pop() {
            processed += 1;
            if processed > budget {
                return Err(SimError::Oscillation {
                    netlist: self.netlist.name().to_string(),
                    cycle: self.cycle,
                    budget,
                });
            }
            // Inertial preemption: a newer evaluation of the driver
            // supersedes this event.
            if self.latest_seq[ev.net.index()] != ev.seq {
                continue;
            }
            let old = self.values[ev.net.index()];
            if old == ev.value {
                continue;
            }
            let driver = self.netlist.net(ev.net).driver;
            if old.is_known() && ev.value.is_known() {
                self.transitions[driver.index()] += 1;
            }
            self.values[ev.net.index()] = ev.value;
            self.propagate(ev.net, ev.time);
        }
        self.cycle += 1;
        Ok(processed)
    }

    /// Immediately sets a cell's output (tick-0 edge semantics) and
    /// seeds propagation.
    fn commit(&mut self, id: CellId, value: Logic, time: u64) {
        let net = self.netlist.cell(id).output;
        let old = self.values[net.index()];
        if old == value {
            return;
        }
        if old.is_known() && value.is_known() {
            self.transitions[id.index()] += 1;
        }
        self.values[net.index()] = value;
        self.propagate(net, time);
    }

    /// Re-evaluates every sink of `net` and schedules output changes —
    /// deliberately kept in the original allocation-per-event shape.
    fn propagate(&mut self, net: NetId, time: u64) {
        let sinks: Vec<CellId> = self.netlist.fanout(net).to_vec();
        for sink in sinks {
            let cell = self.netlist.cell(sink);
            match cell.kind {
                CellKind::Dff => {}
                CellKind::Output => {}
                _ => {
                    let ins: Vec<Logic> =
                        cell.inputs.iter().map(|n| self.values[n.index()]).collect();
                    let new = cell.kind.eval(&ins);
                    self.seq += 1;
                    self.latest_seq[cell.output.index()] = self.seq;
                    self.queue.push(HeapEntry(TimedEvent {
                        time: time + self.delays[sink.index()],
                        seq: self.seq,
                        net: cell.output,
                        value: new,
                    }));
                }
            }
        }
    }

    /// Total known↔known transitions of logic-cell outputs so far.
    pub fn logic_transitions(&self) -> u64 {
        self.netlist
            .logic_cells()
            .map(|(id, _)| self.transitions[id.index()])
            .sum()
    }

    /// Per-cell transition counts (indexable by `CellId`).
    pub fn transitions(&self) -> &[u64] {
        &self.transitions
    }

    /// Resets the transition counters (e.g. after warm-up cycles).
    pub fn reset_transitions(&mut self) {
        self.transitions.iter_mut().for_each(|t| *t = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimedSim;
    use optpower_netlist::NetlistBuilder;

    #[test]
    fn heap_ordering_is_total_on_ticks() {
        let mk = |time, seq| {
            HeapEntry(TimedEvent {
                time,
                seq,
                net: NetId(0),
                value: Logic::One,
            })
        };
        let mut heap = BinaryHeap::new();
        for (t, s) in [(5u64, 1u64), (0, 2), (5, 3), (2, 4)] {
            heap.push(mk(t, s));
        }
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| heap.pop().map(|HeapEntry(e)| (e.time, e.seq))).collect();
        assert_eq!(order, vec![(0, 2), (2, 4), (5, 1), (5, 3)]);
    }

    #[test]
    fn scalar_matches_wheel_on_a_glitchy_netlist() {
        // The module-level contract in miniature; the full differential
        // suite lives in tests/timed_differential.rs.
        let mut b = NetlistBuilder::new("glitch");
        let a = b.add_input("a0");
        let c = b.add_input("b0");
        let d1 = b.add_cell(CellKind::Buf, &[c]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[a, d2]);
        b.add_output("p0", s);
        let nl = b.build().unwrap();
        let lib = Library::cmos13();
        let mut scalar = ScalarTimedSim::new(&nl, &lib).unwrap();
        let mut wheel = TimedSim::new(&nl, &lib).unwrap();
        for v in [0u64, 3, 0, 1, 2, 3, 3, 0] {
            scalar.set_input_bits("a", v & 1);
            scalar.set_input_bits("b", (v >> 1) & 1);
            wheel.set_input_bits("a", v & 1);
            wheel.set_input_bits("b", (v >> 1) & 1);
            let es = scalar.step().unwrap();
            let ew = wheel.step().unwrap();
            // Batching + elision make the wheel process no more events
            // than the reference; values and counts stay identical.
            assert!(ew <= es, "wheel {ew} events > scalar {es} at v={v}");
            assert_eq!(scalar.output_bits("p"), wheel.output_bits("p"));
        }
        assert_eq!(scalar.transitions(), wheel.transitions());
        assert_eq!(scalar.logic_transitions(), wheel.logic_transitions());
    }

    #[test]
    fn invalid_delays_are_rejected() {
        let mut b = NetlistBuilder::new("inv");
        let x = b.add_input("a0");
        let y = b.add_cell(CellKind::Inv, &[x]);
        b.add_output("p0", y);
        let nl = b.build().unwrap();
        let err = ScalarTimedSim::new(&nl, &Library::with_uniform_delay(f64::NAN)).unwrap_err();
        assert!(matches!(err, SimError::InvalidDelay { .. }));
    }
}
