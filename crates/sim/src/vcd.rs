//! Value-Change-Dump (VCD) recording and re-parsing.
//!
//! Records per-cycle net values so generated multipliers can be
//! inspected in GTKWave or any other VCD viewer, and parses the dumps
//! back ([`parse_vcd`]) so tests can check a trace against the
//! simulator's own counters. Time is in cycles (1 cycle = 1 time
//! unit).
//!
//! Any engine implementing [`NetProbe`] can be sampled; note that
//! sampling happens once per cycle on *settled* values, so a dump of
//! the timed engine shows per-cycle results but cannot show pulses
//! narrower than a cycle (glitches) — on glitch-free netlists the two
//! views coincide exactly.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use optpower_netlist::{Logic, NetId, Netlist};

use crate::{TimedSim, ZeroDelaySim};

/// Read access to a simulator's current per-net values, used by
/// [`VcdRecorder::sample`] to stay engine-agnostic.
pub trait NetProbe {
    /// The current value of `net`.
    fn net_value(&self, net: NetId) -> Logic;
}

impl NetProbe for ZeroDelaySim<'_> {
    fn net_value(&self, net: NetId) -> Logic {
        self.value(net)
    }
}

impl NetProbe for TimedSim<'_> {
    fn net_value(&self, net: NetId) -> Logic {
        self.value(net)
    }
}

impl NetProbe for crate::ScalarTimedSim<'_> {
    fn net_value(&self, net: NetId) -> Logic {
        self.value(net)
    }
}

/// One lane of a [`crate::WidePlaneSim`] (any width, default the
/// 64-lane [`crate::BitParallelSim`]), viewed as a scalar probe.
pub struct LaneProbe<'a, 'n, const W: usize = 1> {
    sim: &'a crate::WidePlaneSim<'n, W>,
    lane: usize,
}

impl<'a, 'n, const W: usize> LaneProbe<'a, 'n, W> {
    /// Probes lane `lane` of `sim`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= sim.lanes()`.
    pub fn new(sim: &'a crate::WidePlaneSim<'n, W>, lane: usize) -> Self {
        assert!(lane < sim.lanes(), "lane {lane} out of range");
        Self { sim, lane }
    }
}

impl<const W: usize> NetProbe for LaneProbe<'_, '_, W> {
    fn net_value(&self, net: NetId) -> Logic {
        self.sim.value(net, self.lane)
    }
}

/// Records the settled value of selected nets after every cycle and
/// serialises them as a VCD document.
///
/// # Examples
///
/// ```
/// use optpower_netlist::{CellKind, NetlistBuilder};
/// use optpower_sim::{VcdRecorder, ZeroDelaySim};
///
/// let mut b = NetlistBuilder::new("inv");
/// let x = b.add_input("x0");
/// let y = b.add_cell(CellKind::Inv, &[x]);
/// b.add_output("y0", y);
/// let nl = b.build()?;
///
/// let mut sim = ZeroDelaySim::new(&nl);
/// let mut vcd = VcdRecorder::all_nets(&nl);
/// for v in [0u64, 1, 1, 0] {
///     sim.set_input_bits("x", v);
///     sim.step();
///     vcd.sample(&sim);
/// }
/// let text = vcd.finish();
/// assert!(text.contains("$enddefinitions"));
/// # Ok::<(), optpower_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    design: String,
    nets: Vec<(NetId, String)>,
    /// Last emitted value per tracked net (None = never emitted).
    last: Vec<Option<Logic>>,
    body: String,
    time: u64,
}

impl VcdRecorder {
    /// Tracks every net in the netlist.
    pub fn all_nets(netlist: &Netlist) -> Self {
        let nets = netlist
            .nets()
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n.name.clone()))
            .collect();
        Self::with_nets(netlist.name(), nets)
    }

    /// Tracks an explicit net selection with display names.
    pub fn with_nets(design: &str, nets: Vec<(NetId, String)>) -> Self {
        let last = vec![None; nets.len()];
        Self {
            design: design.to_string(),
            nets,
            last,
            body: String::new(),
            time: 0,
        }
    }

    /// Number of tracked nets.
    pub fn tracked(&self) -> usize {
        self.nets.len()
    }

    /// Samples the simulator's settled values for the current cycle.
    pub fn sample<P: NetProbe>(&mut self, sim: &P) {
        let mut changes = String::new();
        for (slot, (net, _)) in self.nets.iter().enumerate() {
            let value = sim.net_value(*net);
            if self.last[slot] != Some(value) {
                let ch = match value {
                    Logic::Zero => '0',
                    Logic::One => '1',
                    Logic::X => 'x',
                };
                let _ = writeln!(changes, "{ch}{}", code(slot));
                self.last[slot] = Some(value);
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{}", self.time);
            self.body.push_str(&changes);
        }
        self.time += 1;
    }

    /// Serialises the recording as a VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date optpower $end");
        let _ = writeln!(out, "$version optpower-sim $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.design));
        for (slot, (_, name)) in self.nets.iter().enumerate() {
            let _ = writeln!(out, "$var wire 1 {} {} $end", code(slot), sanitize(name));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        let _ = writeln!(out, "#{}", self.time);
        out
    }
}

/// A re-parsed VCD document: variable declarations plus the ordered
/// value-change stream. Produced by [`parse_vcd`].
#[derive(Debug, Clone, Default)]
pub struct VcdDump {
    /// `(code, display name)` in declaration order.
    pub vars: Vec<(String, String)>,
    /// `(time, code, value)` in document order.
    pub changes: Vec<(u64, String, Logic)>,
}

impl VcdDump {
    /// Known↔known value changes per variable *display name*.
    ///
    /// `X`↔known changes are not counted, matching the simulators'
    /// transition counters.
    pub fn known_transitions(&self) -> HashMap<String, u64> {
        let name_of: HashMap<&str, &str> = self
            .vars
            .iter()
            .map(|(code, name)| (code.as_str(), name.as_str()))
            .collect();
        let mut last: HashMap<&str, Logic> = HashMap::new();
        let mut counts: HashMap<String, u64> = self
            .vars
            .iter()
            .map(|(_, name)| (name.clone(), 0))
            .collect();
        for (_, code, value) in &self.changes {
            let prev = last.insert(code.as_str(), *value);
            if let (Some(prev), true) = (prev, value.is_known()) {
                if prev.is_known() && prev != *value {
                    let name = name_of.get(code.as_str()).copied().unwrap_or(code);
                    *counts.entry(name.to_string()).or_default() += 1;
                }
            }
        }
        counts
    }
}

/// Parses the subset of VCD that [`VcdRecorder::finish`] emits
/// (1-bit wires, scalar value changes, `#<time>` stamps).
///
/// # Errors
///
/// Returns a human-readable description of the first malformed line:
/// an unknown value character, a change referencing an undeclared
/// identifier code, or an unparsable timestamp.
pub fn parse_vcd(text: &str) -> Result<VcdDump, String> {
    let mut dump = VcdDump::default();
    let mut known_codes: HashSet<String> = HashSet::new();
    let mut time = 0u64;
    let mut in_header = true;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if in_header {
            if line.starts_with("$var ") {
                // `$var wire 1 <code> <name> $end`
                let mut it = line.split_whitespace();
                let (code, name) = (it.nth(3), it.next());
                match (code, name) {
                    (Some(code), Some(name)) => {
                        known_codes.insert(code.to_string());
                        dump.vars.push((code.to_string(), name.to_string()));
                    }
                    _ => return Err(format!("line {}: malformed $var: {line}", lineno + 1)),
                }
            } else if line.starts_with("$enddefinitions") {
                in_header = false;
            }
            continue;
        }
        if let Some(stamp) = line.strip_prefix('#') {
            time = stamp
                .parse()
                .map_err(|_| format!("line {}: bad timestamp: {line}", lineno + 1))?;
            continue;
        }
        let mut chars = line.chars();
        let value = match chars.next() {
            Some('0') => Logic::Zero,
            Some('1') => Logic::One,
            Some('x') | Some('X') => Logic::X,
            _ => return Err(format!("line {}: unknown value char: {line}", lineno + 1)),
        };
        let code: String = chars.collect();
        if !known_codes.contains(&code) {
            return Err(format!(
                "line {}: undeclared identifier: {line}",
                lineno + 1
            ));
        }
        dump.changes.push((time, code, value));
    }
    Ok(dump)
}

/// VCD identifier code for a slot (printable ASCII 33..=126, base-94).
fn code(mut slot: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((33 + (slot % 94)) as u8 as char);
        slot /= 94;
        if slot == 0 {
            break;
        }
        slot -= 1;
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    fn toggler() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let x = b.add_input("a0");
        let y = b.add_cell(CellKind::Inv, &[x]);
        b.add_output("p0", y);
        b.build().unwrap()
    }

    #[test]
    fn records_value_changes_only() {
        let nl = toggler();
        let mut sim = ZeroDelaySim::new(&nl);
        let mut vcd = VcdRecorder::all_nets(&nl);
        for v in [0u64, 0, 1, 1, 0] {
            sim.set_input_bits("a", v);
            sim.step();
            vcd.sample(&sim);
        }
        let text = vcd.finish();
        // Timestamps only where something changed: cycles 0, 2, 4
        // (plus the closing stamp).
        assert!(text.contains("#0\n"));
        assert!(!text.contains("#1\n"));
        assert!(text.contains("#2\n"));
        assert!(text.contains("#4\n"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn header_declares_all_nets() {
        let nl = toggler();
        let vcd = VcdRecorder::all_nets(&nl);
        assert_eq!(vcd.tracked(), nl.nets().len());
        let text = vcd.finish();
        assert_eq!(text.matches("$var wire 1 ").count(), nl.nets().len());
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..500 {
            let c = code(slot);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c), "slot {slot} collided");
        }
    }

    /// A linear chain (no reconvergent fanout, one toggle per input per
    /// cycle): the timed engine produces no sub-cycle pulses, so the
    /// per-cycle settled samples capture *every* transition it counts.
    fn glitch_free_chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let x = b.add_input("a0");
        let b1 = b.add_cell(CellKind::Buf, &[x]);
        let i1 = b.add_cell(CellKind::Inv, &[b1]);
        let q = b.add_cell(CellKind::Dff, &[i1]);
        let i2 = b.add_cell(CellKind::Inv, &[q]);
        b.add_output("p0", i2);
        b.build().unwrap()
    }

    #[test]
    fn timed_trace_roundtrips_through_parse() {
        let nl = glitch_free_chain();
        let lib = optpower_netlist::Library::cmos13();
        let mut sim = crate::TimedSim::new(&nl, &lib).expect("cmos13 delays are valid");
        let mut vcd = VcdRecorder::all_nets(&nl);
        for v in [0u64, 1, 1, 0, 1, 0, 0, 1, 1, 0] {
            sim.set_input_bits("a", v);
            sim.step().expect("chain cannot oscillate");
            vcd.sample(&sim);
        }
        let text = vcd.finish();
        let dump = parse_vcd(&text).expect("own dumps must parse");
        assert_eq!(dump.vars.len(), nl.nets().len());
        // Sum the re-parsed known<->known changes over nets driven by
        // logic cells: must equal the simulator's own counter.
        let counts = dump.known_transitions();
        let from_dump: u64 = nl
            .logic_cells()
            .map(|(_, cell)| {
                let net = &nl.net(cell.output);
                counts
                    .get(&super::sanitize(&net.name))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(from_dump, sim.logic_transitions());
        assert!(sim.logic_transitions() > 0, "trace must not be trivial");
    }

    #[test]
    fn zero_delay_trace_roundtrips_too() {
        let nl = glitch_free_chain();
        let mut sim = ZeroDelaySim::new(&nl);
        let mut vcd = VcdRecorder::all_nets(&nl);
        for v in [1u64, 0, 1, 1, 0, 1] {
            sim.set_input_bits("a", v);
            sim.step();
            vcd.sample(&sim);
        }
        let transitions = sim.logic_transitions();
        let dump = parse_vcd(&vcd.finish()).expect("parses");
        let counts = dump.known_transitions();
        let from_dump: u64 = nl
            .logic_cells()
            .map(|(_, cell)| {
                let net = &nl.net(cell.output);
                counts
                    .get(&super::sanitize(&net.name))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(from_dump, transitions);
    }

    #[test]
    fn bit_parallel_lane_probe_samples_one_lane() {
        let nl = glitch_free_chain();
        let mut sim = crate::BitParallelSim::new(&nl);
        let mut vcd = VcdRecorder::all_nets(&nl);
        let mut lanes = vec![0u64; sim.lanes()];
        lanes[3] = 1;
        sim.set_input_bits_lanes("a", &lanes);
        sim.step();
        vcd.sample(&LaneProbe::new(&sim, 3));
        let text = vcd.finish();
        // Lane 3 drove a 1 through the buffer: its net is high.
        assert!(text.contains('1'));
    }

    #[test]
    fn lane_probe_reaches_wide_plane_lanes() {
        let nl = glitch_free_chain();
        let mut sim = crate::BitParallelSim512::new(&nl);
        let mut lanes = vec![0u64; sim.lanes()];
        lanes[300] = 1;
        sim.set_input_bits_lanes("a", &lanes);
        sim.step();
        let mut vcd = VcdRecorder::all_nets(&nl);
        vcd.sample(&LaneProbe::new(&sim, 300));
        assert!(vcd.finish().contains('1'));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_vcd("$enddefinitions $end\n#zzz\n").is_err());
        assert!(
            parse_vcd("$enddefinitions $end\n1%\n").is_err(),
            "undeclared code"
        );
        assert!(parse_vcd("$var wire 1\n").is_err(), "truncated $var");
        let ok = parse_vcd("$var wire 1 ! a0 $end\n$enddefinitions $end\n#0\n1!\n");
        assert_eq!(ok.unwrap().changes.len(), 1);
    }

    #[test]
    fn known_transitions_ignore_x_recovery() {
        // x -> 1 -> 0 -> x -> 1: only the 1 -> 0 edge counts.
        let text = "$var wire 1 ! n $end\n$enddefinitions $end\n\
                    #0\nx!\n#1\n1!\n#2\n0!\n#3\nx!\n#4\n1!\n";
        let dump = parse_vcd(text).unwrap();
        assert_eq!(dump.known_transitions().get("n"), Some(&1));
    }

    #[test]
    fn initial_x_is_emitted() {
        let nl = toggler();
        let mut sim = ZeroDelaySim::new(&nl);
        let mut vcd = VcdRecorder::all_nets(&nl);
        sim.step(); // inputs still X
        vcd.sample(&sim);
        let text = vcd.finish();
        assert!(text.contains('x'), "X values must appear in the dump");
    }
}
