//! Value-Change-Dump (VCD) recording for the zero-delay engine.
//!
//! Records per-cycle net values so generated multipliers can be
//! inspected in GTKWave or any other VCD viewer. Time is in cycles
//! (1 cycle = 1 time unit).

use std::fmt::Write as _;

use optpower_netlist::{Logic, NetId, Netlist};

use crate::ZeroDelaySim;

/// Records the settled value of selected nets after every cycle and
/// serialises them as a VCD document.
///
/// # Examples
///
/// ```
/// use optpower_netlist::{CellKind, NetlistBuilder};
/// use optpower_sim::{VcdRecorder, ZeroDelaySim};
///
/// let mut b = NetlistBuilder::new("inv");
/// let x = b.add_input("x0");
/// let y = b.add_cell(CellKind::Inv, &[x]);
/// b.add_output("y0", y);
/// let nl = b.build()?;
///
/// let mut sim = ZeroDelaySim::new(&nl);
/// let mut vcd = VcdRecorder::all_nets(&nl);
/// for v in [0u64, 1, 1, 0] {
///     sim.set_input_bits("x", v);
///     sim.step();
///     vcd.sample(&sim);
/// }
/// let text = vcd.finish();
/// assert!(text.contains("$enddefinitions"));
/// # Ok::<(), optpower_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    design: String,
    nets: Vec<(NetId, String)>,
    /// Last emitted value per tracked net (None = never emitted).
    last: Vec<Option<Logic>>,
    body: String,
    time: u64,
}

impl VcdRecorder {
    /// Tracks every net in the netlist.
    pub fn all_nets(netlist: &Netlist) -> Self {
        let nets = netlist
            .nets()
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n.name.clone()))
            .collect();
        Self::with_nets(netlist.name(), nets)
    }

    /// Tracks an explicit net selection with display names.
    pub fn with_nets(design: &str, nets: Vec<(NetId, String)>) -> Self {
        let last = vec![None; nets.len()];
        Self {
            design: design.to_string(),
            nets,
            last,
            body: String::new(),
            time: 0,
        }
    }

    /// Number of tracked nets.
    pub fn tracked(&self) -> usize {
        self.nets.len()
    }

    /// Samples the simulator's settled values for the current cycle.
    pub fn sample(&mut self, sim: &ZeroDelaySim<'_>) {
        let mut changes = String::new();
        for (slot, (net, _)) in self.nets.iter().enumerate() {
            let value = sim.value(*net);
            if self.last[slot] != Some(value) {
                let ch = match value {
                    Logic::Zero => '0',
                    Logic::One => '1',
                    Logic::X => 'x',
                };
                let _ = writeln!(changes, "{ch}{}", code(slot));
                self.last[slot] = Some(value);
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(self.body, "#{}", self.time);
            self.body.push_str(&changes);
        }
        self.time += 1;
    }

    /// Serialises the recording as a VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date optpower $end");
        let _ = writeln!(out, "$version optpower-sim $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.design));
        for (slot, (_, name)) in self.nets.iter().enumerate() {
            let _ = writeln!(out, "$var wire 1 {} {} $end", code(slot), sanitize(name));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        let _ = writeln!(out, "#{}", self.time);
        out
    }
}

/// VCD identifier code for a slot (printable ASCII 33..=126, base-94).
fn code(mut slot: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((33 + (slot % 94)) as u8 as char);
        slot /= 94;
        if slot == 0 {
            break;
        }
        slot -= 1;
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    fn toggler() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let x = b.add_input("a0");
        let y = b.add_cell(CellKind::Inv, &[x]);
        b.add_output("p0", y);
        b.build().unwrap()
    }

    #[test]
    fn records_value_changes_only() {
        let nl = toggler();
        let mut sim = ZeroDelaySim::new(&nl);
        let mut vcd = VcdRecorder::all_nets(&nl);
        for v in [0u64, 0, 1, 1, 0] {
            sim.set_input_bits("a", v);
            sim.step();
            vcd.sample(&sim);
        }
        let text = vcd.finish();
        // Timestamps only where something changed: cycles 0, 2, 4
        // (plus the closing stamp).
        assert!(text.contains("#0\n"));
        assert!(!text.contains("#1\n"));
        assert!(text.contains("#2\n"));
        assert!(text.contains("#4\n"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn header_declares_all_nets() {
        let nl = toggler();
        let vcd = VcdRecorder::all_nets(&nl);
        assert_eq!(vcd.tracked(), nl.nets().len());
        let text = vcd.finish();
        assert_eq!(text.matches("$var wire 1 ").count(), nl.nets().len());
    }

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..500 {
            let c = code(slot);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c), "slot {slot} collided");
        }
    }

    #[test]
    fn initial_x_is_emitted() {
        let nl = toggler();
        let mut sim = ZeroDelaySim::new(&nl);
        let mut vcd = VcdRecorder::all_nets(&nl);
        sim.step(); // inputs still X
        vcd.sample(&sim);
        let text = vcd.finish();
        assert!(text.contains('x'), "X values must appear in the dump");
    }
}
