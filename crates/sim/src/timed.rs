//! The event-driven timing engine (inertial delays, glitch counting).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use optpower_netlist::{CellId, CellKind, Library, Logic, NetId, Netlist};

use crate::bus::{bus_inputs, bus_outputs, decode_bus};

/// One scheduled net-value change.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    net: NetId,
    value: Logic,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, seq): earlier first, FIFO within a time.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven gate-level simulator with per-cell *inertial* delays.
///
/// Scheduling is preemptive per net: re-evaluating a cell cancels its
/// not-yet-fired pending output event, so pulses narrower than the
/// gate's propagation delay are swallowed (inertial-delay semantics,
/// matching event-driven HDL simulators). Pulses wider than the delay
/// survive and are counted — a cell whose inputs arrive further apart
/// than its own delay produces glitch transitions, exactly the
/// mechanism by which the paper's diagonal pipelines pay a higher
/// activity than horizontal ones.
#[derive(Debug, Clone)]
pub struct TimedSim<'n> {
    netlist: &'n Netlist,
    /// Per-cell propagation delay in gate units.
    delays: Vec<f64>,
    values: Vec<Logic>,
    input_next: Vec<Logic>,
    transitions: Vec<u64>,
    queue: BinaryHeap<Event>,
    /// Latest scheduled event per net; an older pending event is
    /// cancelled when popped (inertial-delay preemption).
    latest_seq: Vec<u64>,
    seq: u64,
    cycle: u64,
}

impl<'n> TimedSim<'n> {
    /// Creates a timing simulator using `library` delays.
    pub fn new(netlist: &'n Netlist, library: &Library) -> Self {
        let delays = netlist
            .cells()
            .iter()
            .map(|c| library.delay(c.kind))
            .collect();
        Self {
            netlist,
            delays,
            values: vec![Logic::X; netlist.nets().len()],
            input_next: vec![Logic::X; netlist.cells().len()],
            transitions: vec![0; netlist.cells().len()],
            queue: BinaryHeap::new(),
            latest_seq: vec![0; netlist.nets().len()],
            seq: 0,
            cycle: 0,
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets one primary input (takes effect at the next cycle edge).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell.
    pub fn set_input(&mut self, input: CellId, value: Logic) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{input:?} is not a primary input"
        );
        self.input_next[input.index()] = value;
    }

    /// Sets an entire input bus `{prefix}{0..}` from an integer.
    pub fn set_input_bits(&mut self, prefix: &str, value: u64) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (i, id) in bus.into_iter().enumerate() {
            self.set_input(id, Logic::from_bool((value >> i) & 1 == 1));
        }
    }

    /// Current (settled) value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Decodes an output bus `{prefix}{0..}`; `None` if any bit is `X`.
    pub fn output_bits(&self, prefix: &str) -> Option<u64> {
        let bus = bus_outputs(self.netlist, prefix);
        if bus.is_empty() {
            return None;
        }
        let bits: Vec<Logic> = bus
            .iter()
            .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()])
            .collect();
        decode_bus(&bits)
    }

    /// Runs one full clock cycle: clocks the DFFs, applies pending
    /// inputs at t = 0, then processes events until the netlist
    /// settles. Returns the number of events processed (a liveness
    /// guard for accidental oscillators).
    ///
    /// # Panics
    ///
    /// Panics if the event count within one cycle exceeds
    /// `10_000 × cells` — the netlist oscillates (a combinational loop
    /// through X-decoded muxes or similar), which validation should
    /// have prevented.
    pub fn step(&mut self) -> u64 {
        // 0. First cycle only: drive constants and seed an evaluation
        // of every combinational cell. Event-driven updates alone never
        // reach cells whose inputs never change, which would leave
        // their initial `X` in place forever.
        if self.cycle == 0 {
            for i in 0..self.netlist.cells().len() {
                let id = CellId(i as u32);
                match self.netlist.cell(id).kind {
                    CellKind::Const0 => self.commit(id, Logic::Zero, 0.0),
                    CellKind::Const1 => self.commit(id, Logic::One, 0.0),
                    _ => {}
                }
            }
            for i in 0..self.netlist.cells().len() {
                let id = CellId(i as u32);
                let cell = self.netlist.cell(id);
                match cell.kind {
                    CellKind::Input
                    | CellKind::Const0
                    | CellKind::Const1
                    | CellKind::Dff
                    | CellKind::Output => {}
                    _ => {
                        let ins: Vec<Logic> =
                            cell.inputs.iter().map(|n| self.values[n.index()]).collect();
                        let new = cell.kind.eval(&ins);
                        self.seq += 1;
                        self.latest_seq[cell.output.index()] = self.seq;
                        self.queue.push(Event {
                            time: self.delays[id.index()],
                            seq: self.seq,
                            net: cell.output,
                            value: new,
                        });
                    }
                }
            }
        }
        // 1. Capture D pins (values settled in the previous cycle).
        let dff_next: Vec<(CellId, Logic)> = self
            .netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(i, c)| (CellId(i as u32), self.values[c.inputs[0].index()]))
            .collect();
        // 2. At t = 0: update Q outputs and primary inputs.
        for (id, q) in dff_next {
            self.commit(id, q, 0.0);
        }
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if cell.kind == CellKind::Input {
                let v = self.input_next[i];
                self.commit(CellId(i as u32), v, 0.0);
            }
        }
        // 3. Event loop until quiescent.
        let budget = 10_000u64 * self.netlist.cells().len() as u64;
        let mut processed = 0u64;
        while let Some(ev) = self.queue.pop() {
            processed += 1;
            assert!(
                processed <= budget,
                "event budget exceeded: netlist oscillates"
            );
            // Inertial preemption: a newer evaluation of the driver
            // supersedes this event.
            if self.latest_seq[ev.net.index()] != ev.seq {
                continue;
            }
            let old = self.values[ev.net.index()];
            if old == ev.value {
                continue;
            }
            let driver = self.netlist.net(ev.net).driver;
            if old.is_known() && ev.value.is_known() {
                self.transitions[driver.index()] += 1;
            }
            self.values[ev.net.index()] = ev.value;
            self.propagate(ev.net, ev.time);
        }
        self.cycle += 1;
        processed
    }

    /// Immediately sets a cell's output (t = 0 edge semantics) and
    /// seeds propagation.
    fn commit(&mut self, id: CellId, value: Logic, time: f64) {
        let net = self.netlist.cell(id).output;
        let old = self.values[net.index()];
        if old == value {
            return;
        }
        if old.is_known() && value.is_known() {
            self.transitions[id.index()] += 1;
        }
        self.values[net.index()] = value;
        self.propagate(net, time);
    }

    /// Re-evaluates every sink of `net` and schedules output changes.
    fn propagate(&mut self, net: NetId, time: f64) {
        let sinks: Vec<CellId> = self.netlist.fanout(net).to_vec();
        for sink in sinks {
            let cell = self.netlist.cell(sink);
            match cell.kind {
                // DFFs capture at edges only; outputs are transparent
                // sinks with no further propagation of their own.
                CellKind::Dff => {}
                CellKind::Output => {}
                _ => {
                    let ins: Vec<Logic> =
                        cell.inputs.iter().map(|n| self.values[n.index()]).collect();
                    let new = cell.kind.eval(&ins);
                    self.seq += 1;
                    self.latest_seq[cell.output.index()] = self.seq;
                    self.queue.push(Event {
                        time: time + self.delays[sink.index()],
                        seq: self.seq,
                        net: cell.output,
                        value: new,
                    });
                }
            }
        }
    }

    /// Total known↔known transitions of logic-cell outputs so far.
    pub fn logic_transitions(&self) -> u64 {
        self.netlist
            .logic_cells()
            .map(|(id, _)| self.transitions[id.index()])
            .sum()
    }

    /// Per-cell transition counts (indexable by `CellId`).
    pub fn transitions(&self) -> &[u64] {
        &self.transitions
    }

    /// Resets the transition counters (e.g. after warm-up cycles).
    pub fn reset_transitions(&mut self) {
        self.transitions.iter_mut().for_each(|t| *t = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    /// XOR with one input delayed through two buffers: flipping both
    /// inputs simultaneously produces a glitch pulse on the output.
    fn glitchy_xor() -> Netlist {
        let mut b = NetlistBuilder::new("glitch");
        let a = b.add_input("a0");
        let c = b.add_input("b0");
        let d1 = b.add_cell(CellKind::Buf, &[c]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[a, d2]);
        b.add_output("p0", s);
        b.build().unwrap()
    }

    #[test]
    fn timed_sees_the_glitch_zero_delay_does_not() {
        let nl = glitchy_xor();
        let lib = Library::cmos13();
        let mut timed = TimedSim::new(&nl, &lib);
        let mut zd = crate::ZeroDelaySim::new(&nl);
        // Warm up to (0, 0): xor = 0.
        timed.set_input_bits("a", 0);
        timed.set_input_bits("b", 0);
        timed.step();
        timed.reset_transitions();
        zd.set_input_bits("a", 0);
        zd.set_input_bits("b", 0);
        zd.step();
        zd.reset_transitions();
        // Flip both inputs: final xor value is unchanged (0), but the
        // delayed path makes the timed output pulse 0->1->0.
        timed.set_input_bits("a", 1);
        timed.set_input_bits("b", 1);
        timed.step();
        zd.set_input_bits("a", 1);
        zd.set_input_bits("b", 1);
        zd.step();
        // Zero-delay: buffers toggle (2 transitions), xor stays.
        assert_eq!(zd.logic_transitions(), 2);
        // Timed: buffers toggle (2) + xor glitches (2 transitions).
        assert_eq!(timed.logic_transitions(), 4);
        assert_eq!(timed.output_bits("p"), Some(0));
        assert_eq!(zd.output_bits("p"), Some(0));
    }

    #[test]
    fn functional_agreement_with_zero_delay() {
        // Random full-adder vectors: settled outputs must agree.
        let mut b = NetlistBuilder::new("fa");
        let a = b.add_input("a0");
        let x = b.add_input("b0");
        let c = b.add_input("c0");
        let s = b.add_cell(CellKind::Xor3, &[a, x, c]);
        let co = b.add_cell(CellKind::Maj3, &[a, x, c]);
        b.add_output("p0", s);
        b.add_output("p1", co);
        let nl = b.build().unwrap();
        let lib = Library::cmos13();
        let mut timed = TimedSim::new(&nl, &lib);
        let mut zd = crate::ZeroDelaySim::new(&nl);
        for v in 0..8u64 {
            timed.set_input_bits("a", v & 1);
            timed.set_input_bits("b", (v >> 1) & 1);
            timed.set_input_bits("c", (v >> 2) & 1);
            timed.step();
            zd.set_input_bits("a", v & 1);
            zd.set_input_bits("b", (v >> 1) & 1);
            zd.set_input_bits("c", (v >> 2) & 1);
            zd.step();
            assert_eq!(timed.output_bits("p"), zd.output_bits("p"), "v={v}");
        }
    }

    #[test]
    fn dff_capture_uses_pre_edge_value() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[d]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let mut sim = TimedSim::new(&nl, &Library::cmos13());
        sim.set_input_bits("a", 1);
        sim.step();
        assert_eq!(sim.output_bits("p"), None, "q captured pre-edge X");
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(1));
    }

    #[test]
    fn constants_and_quiet_cells_resolve() {
        // Regression: a cell fed only by constants must leave X on the
        // first cycle even though its inputs never "change".
        let mut b = NetlistBuilder::new("const");
        let one = b.add_cell(CellKind::Const1, &[]);
        let zero = b.add_cell(CellKind::Const0, &[]);
        let n = b.add_cell(CellKind::Nand2, &[one, zero]);
        let x = b.add_input("a0");
        let y = b.add_cell(CellKind::And2, &[n, x]);
        b.add_output("p0", y);
        let nl = b.build().unwrap();
        let mut sim = TimedSim::new(&nl, &Library::cmos13());
        sim.set_input_bits("a", 1);
        sim.step();
        assert_eq!(sim.output_bits("p"), Some(1));
    }

    #[test]
    fn event_count_bounded_per_cycle() {
        let nl = glitchy_xor();
        let mut sim = TimedSim::new(&nl, &Library::cmos13());
        sim.set_input_bits("a", 1);
        sim.set_input_bits("b", 1);
        let events = sim.step();
        // 3 combinational cells, each re-evaluated a handful of times.
        assert!(events < 20, "events = {events}");
    }
}
