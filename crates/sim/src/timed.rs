//! The event-driven timing engine (inertial delays, glitch counting),
//! built on integer picosecond ticks and the indexed bucket queue of
//! [`crate::event_wheel`].
//!
//! # Integer-tick time base
//!
//! Library delays are expressed in *gate units* (FO4 inverter = 1.0);
//! [`TimedSim::new`] quantizes them **once** to integer ticks at
//! [`TICKS_PER_GATE`] ticks per gate unit (with the 0.13 µm library's
//! FO4 ≈ 1 ns, one tick ≈ 1 ps). All event arithmetic and ordering
//! then happens in `u64`: ordering is total by construction (the old
//! `f64` engine compared `NaN` as `Ordering::Equal`, silently
//! corrupting heap order), time sums are exact (no `0.1 + 0.2`
//! drift deciding event order), and the event queue can be an O(1)
//! bucket wheel instead of a binary heap. Delays that are not finite,
//! negative, or above [`MAX_DELAY_GATES`] are rejected with a typed
//! [`SimError::InvalidDelay`].
//!
//! # Compiled hot path
//!
//! [`TimedSim::new`] additionally *compiles* the netlist into flat
//! index arrays: CSR fanout restricted to evaluable sinks, CSR input
//! lists, one byte per net of three-valued state, and per-kind truth
//! tables built by exhaustively calling [`CellKind::eval`] (so the
//! table semantics cannot drift from the shared cell model). The
//! steady-state simulation loop touches only these arrays — no
//! per-event allocation, no pointer chasing through `Vec<Vec<…>>`,
//! no enum dispatch per evaluation.
//!
//! The pre-wheel engine survives as [`crate::ScalarTimedSim`], the
//! frozen reference the wheel engine is locked against bit for bit
//! (`tests/timed_differential.rs`); `benches/sim.rs` tracks the
//! `timed_scalar` vs `timed_wheel` throughput ratio.

use optpower_netlist::{CellId, CellKind, Library, Logic, NetId, Netlist};

use crate::bus::{bus_inputs, bus_outputs, decode_bus};
use crate::event_wheel::{EventWheel, TimedEvent};
use crate::SimError;

/// Integer ticks per normalised gate unit (FO4 inverter delay). With
/// the library's FO4 ≈ 1 ns this makes one tick ≈ 1 ps — comfortably
/// below any delay difference a standard-cell library expresses.
pub const TICKS_PER_GATE: u64 = 1000;

/// Largest accepted cell delay in gate units. An order of magnitude
/// above any standard-cell reality; the bound keeps the event wheel's
/// horizon (and therefore its memory) small.
pub const MAX_DELAY_GATES: f64 = 64.0;

/// Quantizes every cell's library delay to integer ticks, validating
/// it on the way: the single place where `f64` delays enter the timed
/// engines.
///
/// # Errors
///
/// [`SimError::InvalidDelay`] for a delay that is not finite, is
/// negative, or exceeds [`MAX_DELAY_GATES`].
pub fn quantize_delays(netlist: &Netlist, library: &Library) -> Result<Vec<u64>, SimError> {
    netlist
        .cells()
        .iter()
        .map(|c| {
            let d = library.delay(c.kind);
            if !d.is_finite() || !(0.0..=MAX_DELAY_GATES).contains(&d) {
                return Err(SimError::InvalidDelay {
                    cell: c.name.clone(),
                    kind: c.kind,
                    delay_gates: d,
                });
            }
            Ok((d * TICKS_PER_GATE as f64).round() as u64)
        })
        .collect()
}

/// Per-cycle event budget: a netlist that processes more events than
/// this within one clock cycle is declared oscillating.
pub(crate) fn event_budget(netlist: &Netlist) -> u64 {
    10_000 * netlist.cells().len() as u64
}

/// Greatest common divisor (Euclid).
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The GCD stride the timed engines normalise quantized delays by:
/// event ordering is invariant under scaling every delay by a common
/// factor, so the wheel runs on tick/`stride` units. Exposed so static
/// analysis (`optpower-sta`) can reproduce the engine's exact time
/// base: arrival windows computed on the same stride compare directly
/// against [`TimedEvent::time`].
pub fn tick_stride(ticks: &[u64]) -> u64 {
    ticks.iter().copied().filter(|&d| d > 0).fold(0, gcd).max(1)
}

/// Three-valued levels as table indices: `Zero = 0`, `One = 1`,
/// `X = 2`.
#[inline]
fn code_of(l: Logic) -> u8 {
    match l {
        Logic::Zero => 0,
        Logic::One => 1,
        Logic::X => 2,
    }
}

#[inline]
fn logic_of(code: u8) -> Logic {
    match code {
        0 => Logic::Zero,
        1 => Logic::One,
        _ => Logic::X,
    }
}

/// Truth tables over three-valued codes, one per cell kind, indexed
/// by `i0 + 3·i1 + 9·i2`. Built by calling [`CellKind::eval`] on
/// every input combination, so they *are* the shared cell semantics.
fn build_luts() -> Vec<[u8; 27]> {
    let levels = [Logic::Zero, Logic::One, Logic::X];
    CellKind::ALL
        .iter()
        .map(|&kind| {
            let mut lut = [code_of(Logic::X); 27];
            let arity = kind.arity();
            if (1..=3).contains(&arity) {
                for (combo, slot) in lut.iter_mut().enumerate().take(3usize.pow(arity as u32)) {
                    let mut ins = [Logic::X; 3];
                    let mut c = combo;
                    for lane in ins.iter_mut().take(arity) {
                        *lane = levels[c % 3];
                        c /= 3;
                    }
                    *slot = code_of(kind.eval(&ins[..arity]));
                }
            }
            lut
        })
        .collect()
}

/// Event-driven gate-level simulator with per-cell *inertial* delays.
///
/// Scheduling is preemptive per net: re-evaluating a cell cancels its
/// not-yet-fired pending output event, so pulses narrower than the
/// gate's propagation delay are swallowed (inertial-delay semantics,
/// matching event-driven HDL simulators). Pulses wider than the delay
/// survive and are counted — a cell whose inputs arrive further apart
/// than its own delay produces glitch transitions, exactly the
/// mechanism by which the paper's diagonal pipelines pay a higher
/// activity than horizontal ones.
///
/// This is the production engine: time lives in integer ticks (see
/// the module docs), the event queue is the O(1) [`EventWheel`], the
/// netlist is compiled to flat arrays at construction, and the hot
/// loop allocates nothing. Two event-count optimisations apply, both
/// *equivalence-preserving* for positive delays:
///
/// * **batched per-tick evaluation** — instead of re-evaluating a
///   sink once per arriving input event, sinks touched during a tick
///   are marked dirty and evaluated exactly once when the tick's
///   events are exhausted, in last-marked order (the order of each
///   cell's last re-evaluation in the scalar engine, which that
///   engine's surviving event sequence is keyed on). The one
///   mid-tick effect that must not be deferred — an input change
///   preempting the sink's own not-yet-fired event due *this very
///   tick* — is applied eagerly at dirty-marking time;
/// * **no-op elision** — an evaluation whose result equals the net's
///   current value schedules nothing (with a pending pulse it cancels
///   it by bumping the preemption sequence, without a push). Sound
///   because a net's value cannot change between scheduling its
///   latest event and that event firing, so the scalar engine's
///   corresponding event provably fires as a no-op.
///
/// Consequently settled values and per-cell transition counts are
/// bit-identical to [`crate::ScalarTimedSim`], the frozen pre-wheel
/// reference (locked by `tests/timed_differential.rs`), while the
/// processed-event count reported by [`TimedSim::step`] is an
/// engine-specific diagnostic (much smaller than the scalar
/// engine's). The single caveat: with a *zero-delay* logic cell
/// (legal but outside any real library) sub-tick pulse counting is
/// scheme-dependent, so only settled values are comparable there.
#[derive(Debug, Clone)]
pub struct TimedSim<'n> {
    netlist: &'n Netlist,
    // --- compiled netlist (flat, immutable after `new`) ---
    /// Per-cell hot metadata, one packed record per cell.
    meta: Vec<CellMeta>,
    /// Flat per-kind truth tables (see [`build_luts`]); a cell's table
    /// starts at `meta.lut_base`.
    lut: Vec<u8>,
    /// CSR fanout restricted to *evaluable* sinks (DFF and output
    /// ports pre-filtered): net `n`'s sinks are
    /// `fan_sink[fan_off[n] .. fan_off[n + 1]]`.
    fan_off: Vec<u32>,
    fan_sink: Vec<u32>,
    /// Per-cell output net, duplicated out of [`CellMeta`] as a dense
    /// 4-byte array for the marking loop's cache behaviour.
    out_of: Vec<u32>,
    /// `(cell, d_net, q_net)` triples of the sequential cells.
    dffs: Vec<(u32, u32, u32)>,
    /// `(cell, out_net)` pairs of the primary inputs.
    inputs: Vec<(u32, u32)>,
    /// `(cell, out_net, value)` of the constant cells.
    consts: Vec<(u32, u32, u8)>,
    /// Evaluable (combinational) cells in id order, for the cycle-0
    /// seeding pass.
    comb: Vec<u32>,
    // --- simulation state ---
    /// Three-valued value code per net (see [`code_of`]), plus one
    /// trailing dummy slot pinned to `0` that the unused input lanes
    /// of narrow cells point at (keeps evaluation branchless).
    values: Vec<u8>,
    /// Pending primary-input codes applied at the next cycle edge.
    input_next: Vec<u8>,
    transitions: Vec<u64>,
    wheel: EventWheel,
    /// Per-net scheduling state (preemption seq + in-flight due tick).
    sched: Vec<NetSched>,
    /// Index of each cell's *latest* occurrence in the dirty list
    /// (only read for cells currently in the list, so no generation
    /// tag is needed). Re-marking moves a cell to the back, so the
    /// flush evaluates in last-marked order.
    dirty_pos: Vec<u32>,
    /// Cells awaiting evaluation at the current tick, in marking
    /// order with superseded duplicates (reused across flushes).
    dirty: Vec<u32>,
    /// Reusable buffer for the pre-edge D values (two-phase capture).
    dff_scratch: Vec<u8>,
    /// True when every evaluable cell's delay is ≥ 1 stride unit, so
    /// the event loop may use the bucket-run drain
    /// ([`EventWheel::pop_run`]): no event can land in the tick
    /// currently being processed, and the whole bucket is swapped out
    /// instead of being frozen in place while it drains event by
    /// event. False only for zero-delay logic cells (legal but outside
    /// any real library), which fall back to the per-event pop loop.
    run_drain: bool,
    /// Reusable bucket-run buffer for the run-drain loop.
    run_buf: Vec<TimedEvent>,
    /// When set, every popped event is appended to `events_log` before
    /// the inertial-preemption check (stale events included — they were
    /// legitimately scheduled and must obey the same timing windows).
    /// Off by default: the hot path pays one predictable branch.
    record: bool,
    /// The recorded events (see `record`), in pop order across cycles.
    events_log: Vec<TimedEvent>,
    seq: u64,
    cycle: u64,
}

/// Compiled per-cell metadata: everything one evaluation touches, in
/// one 24-byte record.
#[derive(Debug, Clone, Copy)]
struct CellMeta {
    /// Input nets; unused lanes point at the trailing always-zero
    /// dummy slot of `values`, so the truth-table index
    /// `v0 + 3·v1 + 9·v2` needs no arity branch.
    ins: [u32; 3],
    /// Offset of the cell's truth table in `lut` (kind index × 27).
    lut_base: u32,
    /// Propagation delay in tick/stride units.
    delay: u32,
    /// Output net.
    out: u32,
}

/// Sentinel for "no event in flight" in [`NetSched::due`]; beyond any
/// reachable tick.
const NOT_PENDING: u64 = u64::MAX;

/// Per-net scheduling state.
#[derive(Debug, Clone, Copy)]
struct NetSched {
    /// Latest scheduled event; an older pending event is cancelled
    /// when popped (inertial-delay preemption).
    seq: u64,
    /// Due tick of the in-flight latest event, or [`NOT_PENDING`]. An
    /// input change occurring in that same tick must cancel it
    /// *eagerly*, exactly as the scalar engine's mid-tick
    /// re-evaluation would.
    due: u64,
}

impl<'n> TimedSim<'n> {
    /// Creates a timing simulator using `library` delays, quantized to
    /// integer ticks, and compiles the netlist into the flat hot-path
    /// arrays described on the module.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDelay`] if any cell's library delay is not
    /// finite, is negative, or exceeds [`MAX_DELAY_GATES`].
    pub fn new(netlist: &'n Netlist, library: &Library) -> Result<Self, SimError> {
        let ticks = quantize_delays(netlist, library)?;
        // Run the wheel on tick/stride units (see [`tick_stride`]):
        // the cmos13 delays (all multiples of 0.1 gate units) collapse
        // from a sparse 4096-bucket wheel to a dense 32-bucket one.
        let stride = tick_stride(&ticks);
        let delays: Vec<u64> = ticks.iter().map(|&d| d / stride).collect();
        let max_delay = delays.iter().copied().max().unwrap_or(0);

        let n_cells = netlist.cells().len();
        let n_nets = netlist.nets().len();
        // The trailing dummy slot of `values`: permanently `Zero`, so
        // an unused input lane contributes 0 to the truth-table index.
        let dummy = n_nets as u32;
        let mut meta = Vec::with_capacity(n_cells);
        let mut dffs = Vec::new();
        let mut inputs = Vec::new();
        let mut consts = Vec::new();
        let mut comb = Vec::new();
        for (i, cell) in netlist.cells().iter().enumerate() {
            let kind_ix = CellKind::ALL
                .iter()
                .position(|&k| k == cell.kind)
                .expect("CellKind::ALL is exhaustive");
            let mut ins = [dummy; 3];
            for (slot, net) in ins.iter_mut().zip(cell.inputs.iter()) {
                *slot = net.0;
            }
            meta.push(CellMeta {
                ins,
                lut_base: (kind_ix * 27) as u32,
                delay: delays[i] as u32,
                out: cell.output.0,
            });
            match cell.kind {
                CellKind::Dff => dffs.push((i as u32, cell.inputs[0].0, cell.output.0)),
                CellKind::Input => inputs.push((i as u32, cell.output.0)),
                CellKind::Const0 => consts.push((i as u32, cell.output.0, 0u8)),
                CellKind::Const1 => consts.push((i as u32, cell.output.0, 1u8)),
                CellKind::Output => {}
                _ => comb.push(i as u32),
            }
        }
        // Fanout CSR over evaluable sinks only: DFFs capture at edges
        // and output ports are transparent, so neither is evaluated.
        let mut fan_off = Vec::with_capacity(n_nets + 1);
        let mut fan_sink = Vec::new();
        fan_off.push(0u32);
        for net in 0..n_nets {
            for &sink in netlist.fanout(NetId(net as u32)) {
                match netlist.cell(sink).kind {
                    CellKind::Dff | CellKind::Output => {}
                    _ => fan_sink.push(sink.0),
                }
            }
            fan_off.push(fan_sink.len() as u32);
        }
        // `NetlistBuilder` creates every cell together with its output
        // net, so their indices coincide; the transition counters (per
        // cell) can then be indexed by net directly in the hot loop.
        for (i, net) in netlist.nets().iter().enumerate() {
            assert_eq!(
                net.driver.index(),
                i,
                "cell/net index identity violated by the netlist builder"
            );
        }
        let out_of: Vec<u32> = meta.iter().map(|m| m.out).collect();
        let dff_scratch = Vec::with_capacity(dffs.len());
        // Bucket-run drain precondition: every cell the flush can
        // schedule has a delay of at least one stride unit, so a push
        // from tick `t` always targets a strictly later tick.
        let run_drain = comb.iter().all(|&c| meta[c as usize].delay >= 1);
        let mut values = vec![code_of(Logic::X); n_nets + 1];
        values[n_nets] = code_of(Logic::Zero); // the dummy slot
        Ok(Self {
            netlist,
            meta,
            lut: build_luts().concat(),
            fan_off,
            fan_sink,
            out_of,
            dffs,
            inputs,
            consts,
            comb,
            values,
            input_next: vec![code_of(Logic::X); n_cells],
            transitions: vec![0; n_cells],
            wheel: EventWheel::new(max_delay),
            sched: vec![
                NetSched {
                    seq: 0,
                    due: NOT_PENDING,
                };
                n_nets
            ],
            dirty_pos: vec![0; n_cells],
            dirty: Vec::new(),
            dff_scratch,
            run_drain,
            run_buf: Vec::new(),
            record: false,
            events_log: Vec::new(),
            seq: 0,
            cycle: 0,
        })
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets one primary input (takes effect at the next cycle edge).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell.
    pub fn set_input(&mut self, input: CellId, value: Logic) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{input:?} is not a primary input"
        );
        self.input_next[input.index()] = code_of(value);
    }

    /// Sets an entire input bus `{prefix}{0..}` from an integer.
    pub fn set_input_bits(&mut self, prefix: &str, value: u64) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (i, id) in bus.into_iter().enumerate() {
            self.set_input(id, Logic::from_bool((value >> i) & 1 == 1));
        }
    }

    /// Current (settled) value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        logic_of(self.values[net.index()])
    }

    /// Decodes an output bus `{prefix}{0..}`; `None` if any bit is `X`.
    pub fn output_bits(&self, prefix: &str) -> Option<u64> {
        let bus = bus_outputs(self.netlist, prefix);
        if bus.is_empty() {
            return None;
        }
        let bits: Vec<Logic> = bus
            .iter()
            .map(|&id| logic_of(self.values[self.netlist.cell(id).inputs[0].index()]))
            .collect();
        decode_bus(&bits)
    }

    /// Runs one full clock cycle: clocks the DFFs, applies pending
    /// inputs at tick 0, then processes events until the netlist
    /// settles. Returns the number of events processed — an
    /// engine-specific diagnostic (the batching and elision described
    /// on [`TimedSim`] make it much smaller than the scalar
    /// reference's count for the same cycle).
    ///
    /// # Errors
    ///
    /// [`SimError::Oscillation`] if the event count within one cycle
    /// exceeds `10_000 × cells` — the netlist oscillates instead of
    /// settling. Structurally validated netlists cannot trigger this;
    /// after the error the simulator state is undefined and the
    /// instance should be discarded.
    pub fn step(&mut self) -> Result<u64, SimError> {
        // The queue fully drained last cycle; rewind the wheel so this
        // cycle's events restart at tick 0.
        self.wheel.reset();
        // 0. First cycle only: drive constants and mark every
        // combinational cell for evaluation. Event-driven updates
        // alone never reach cells whose inputs never change, which
        // would leave their initial `X` in place forever.
        if self.cycle == 0 {
            for i in 0..self.consts.len() {
                let (cell, net, code) = self.consts[i];
                self.commit(cell, net, code);
            }
            for i in 0..self.comb.len() {
                let cell = self.comb[i];
                self.mark_dirty(cell);
            }
        }
        // 1. Capture D pins (values settled in the previous cycle)
        // into the reusable scratch buffer, then update all Q outputs
        // at tick 0 — two-phase so DFF-to-DFF chains see pre-edge
        // values.
        let dffs = core::mem::take(&mut self.dffs);
        let mut scratch = core::mem::take(&mut self.dff_scratch);
        scratch.clear();
        scratch.extend(
            dffs.iter()
                .map(|&(_, d_net, _)| self.values[d_net as usize]),
        );
        for (&(cell, _, q_net), &q) in dffs.iter().zip(scratch.iter()) {
            self.commit(cell, q_net, q);
        }
        self.dffs = dffs;
        self.dff_scratch = scratch;
        // 2. At tick 0: apply primary inputs, then evaluate everything
        // the edge touched exactly once.
        let inputs = core::mem::take(&mut self.inputs);
        for &(cell, net) in &inputs {
            let v = self.input_next[cell as usize];
            self.commit(cell, net, v);
        }
        self.inputs = inputs;
        self.flush_dirty(0);
        // 3. Event loop until quiescent: drain each tick's events
        // (applying fired values and marking their sinks dirty), then
        // evaluate the tick's dirty sinks in one batch. With all
        // delays ≥ 1 stride unit the whole bucket is swapped out per
        // tick (bucket-run drain) instead of popped event by event
        // with a per-event "does the tick continue?" probe; both paths
        // apply the identical sequence of value commits and flushes,
        // so results are bit-identical.
        let budget = event_budget(self.netlist);
        let mut processed = 0u64;
        if self.run_drain {
            let mut run = core::mem::take(&mut self.run_buf);
            while let Some(time) = self.wheel.pop_run(&mut run) {
                processed += run.len() as u64;
                if processed > budget {
                    self.run_buf = run;
                    return Err(SimError::Oscillation {
                        netlist: self.netlist.name().to_string(),
                        cycle: self.cycle,
                        budget,
                    });
                }
                for ev in &run {
                    self.apply_event(ev);
                }
                self.flush_dirty(time);
            }
            self.run_buf = run;
        } else {
            while let Some(ev) = self.wheel.pop() {
                processed += 1;
                if processed > budget {
                    return Err(SimError::Oscillation {
                        netlist: self.netlist.name().to_string(),
                        cycle: self.cycle,
                        budget,
                    });
                }
                self.apply_event(&ev);
                // Tick boundary (or queue drained): evaluate this
                // tick's dirty sinks, scheduling their outputs one
                // delay later.
                let tick_continues = matches!(self.wheel.next_time(), Some(t) if t == ev.time);
                if !tick_continues {
                    self.flush_dirty(ev.time);
                }
            }
        }
        self.cycle += 1;
        Ok(processed)
    }

    /// Applies one fired event: inertial preemption check, value
    /// commit, transition count, dirty-marking of the sinks. Shared by
    /// the per-event pop loop and the bucket-run drain loop.
    #[inline]
    fn apply_event(&mut self, ev: &TimedEvent) {
        if self.record {
            self.events_log.push(*ev);
        }
        let net = ev.net.index();
        // Inertial preemption: a newer evaluation of the driver
        // supersedes this event.
        if self.sched[net].seq == ev.seq {
            self.sched[net].due = NOT_PENDING;
            let old = self.values[net];
            let new = code_of(ev.value);
            if old != new {
                if old < 2 && new < 2 {
                    // Net index == driving-cell index (asserted in
                    // `new`).
                    self.transitions[net] += 1;
                }
                self.values[net] = new;
                self.mark_sinks_dirty(net as u32, ev.time);
            }
        }
    }

    /// Immediately sets a cell's output (tick-0 edge semantics) and
    /// marks its sinks for the tick-0 evaluation batch.
    fn commit(&mut self, cell: u32, net: u32, code: u8) {
        let old = self.values[net as usize];
        if old == code {
            return;
        }
        if old < 2 && code < 2 {
            self.transitions[cell as usize] += 1;
        }
        self.values[net as usize] = code;
        self.mark_sinks_dirty(net, 0);
    }

    /// Marks every evaluable sink of `net` dirty for the current tick
    /// (`now`), cancelling any sink output event *due this very tick*
    /// that has not fired yet. The eager cancellation mirrors the
    /// scalar engine exactly: there, the input change re-evaluates the
    /// sink immediately and the push preempts the same-tick pending
    /// event before it can pop. Pending events due at later ticks need
    /// no eager treatment — the end-of-tick flush preempts or cancels
    /// them before any later tick is processed.
    fn mark_sinks_dirty(&mut self, net: u32, now: u64) {
        let lo = self.fan_off[net as usize] as usize;
        let hi = self.fan_off[net as usize + 1] as usize;
        for &sink in &self.fan_sink[lo..hi] {
            let out = self.out_of[sink as usize] as usize;
            if self.sched[out].due == now {
                self.seq += 1;
                self.sched[out] = NetSched {
                    seq: self.seq,
                    due: NOT_PENDING,
                };
            }
            self.dirty_pos[sink as usize] = self.dirty.len() as u32;
            self.dirty.push(sink);
        }
    }

    /// Adds `cell` to the back of the current tick's dirty list. A
    /// re-mark supersedes the earlier occurrence (skipped at flush),
    /// so the list's surviving order is last-marked order.
    #[inline]
    fn mark_dirty(&mut self, cell: u32) {
        self.dirty_pos[cell as usize] = self.dirty.len() as u32;
        self.dirty.push(cell);
    }

    /// Evaluates every dirty cell exactly once against the fully
    /// updated tick-`time` net values and schedules the results one
    /// cell delay later. Evaluations that would not change the net's
    /// value schedule nothing (a pending pulse is cancelled by
    /// bumping its preemption sequence — no push needed); see the
    /// equivalence argument on [`TimedSim`]. Allocation-free: the
    /// dirty list is reused and evaluation is a truth-table lookup.
    fn flush_dirty(&mut self, time: u64) {
        let dirty = core::mem::take(&mut self.dirty);
        for (i, &id) in dirty.iter().enumerate() {
            // Only the cell's latest occurrence evaluates (last-marked
            // order; earlier occurrences were superseded by re-marks).
            if self.dirty_pos[id as usize] != i as u32 {
                continue;
            }
            let meta = self.meta[id as usize];
            let idx = self.values[meta.ins[0] as usize] as usize
                + 3 * self.values[meta.ins[1] as usize] as usize
                + 9 * self.values[meta.ins[2] as usize] as usize;
            let new = self.lut[meta.lut_base as usize + idx];
            let net = meta.out as usize;
            if new == self.values[net] {
                if self.sched[net].due != NOT_PENDING {
                    // Cancel the in-flight pulse without a push: the
                    // stale event fizzles at the preemption check.
                    self.seq += 1;
                    self.sched[net] = NetSched {
                        seq: self.seq,
                        due: NOT_PENDING,
                    };
                }
            } else {
                self.seq += 1;
                let due = time + u64::from(meta.delay);
                self.sched[net] = NetSched { seq: self.seq, due };
                self.wheel.push(TimedEvent {
                    time: due,
                    seq: self.seq,
                    net: NetId(net as u32),
                    value: logic_of(new),
                });
            }
        }
        let mut dirty = dirty;
        dirty.clear();
        self.dirty = dirty;
    }

    /// Total known↔known transitions of logic-cell outputs so far.
    pub fn logic_transitions(&self) -> u64 {
        self.netlist
            .logic_cells()
            .map(|(id, _)| self.transitions[id.index()])
            .sum()
    }

    /// Per-cell transition counts (indexable by `CellId`).
    pub fn transitions(&self) -> &[u64] {
        &self.transitions
    }

    /// Resets the transition counters (e.g. after warm-up cycles).
    pub fn reset_transitions(&mut self) {
        self.transitions.iter_mut().for_each(|t| *t = 0);
    }

    /// Turns event recording on or off. While on, every event the
    /// engine pops — including stale events later swallowed by
    /// inertial preemption — is kept with its cycle-local due tick, so
    /// static timing windows can be checked against the engine's real
    /// event stream (`tests/sta_differential.rs`). Event times are in
    /// tick/stride units; compare against windows computed on
    /// [`tick_stride`] of [`quantize_delays`].
    pub fn record_events(&mut self, on: bool) {
        self.record = on;
    }

    /// Drains the recorded event log (see [`TimedSim::record_events`]),
    /// leaving it empty for further recording.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        core::mem::take(&mut self.events_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::NetlistBuilder;

    /// XOR with one input delayed through two buffers: flipping both
    /// inputs simultaneously produces a glitch pulse on the output.
    fn glitchy_xor() -> Netlist {
        let mut b = NetlistBuilder::new("glitch");
        let a = b.add_input("a0");
        let c = b.add_input("b0");
        let d1 = b.add_cell(CellKind::Buf, &[c]);
        let d2 = b.add_cell(CellKind::Buf, &[d1]);
        let s = b.add_cell(CellKind::Xor2, &[a, d2]);
        b.add_output("p0", s);
        b.build().unwrap()
    }

    #[test]
    fn timed_sees_the_glitch_zero_delay_does_not() {
        let nl = glitchy_xor();
        let lib = Library::cmos13();
        let mut timed = TimedSim::new(&nl, &lib).unwrap();
        let mut zd = crate::ZeroDelaySim::new(&nl);
        // Warm up to (0, 0): xor = 0.
        timed.set_input_bits("a", 0);
        timed.set_input_bits("b", 0);
        timed.step().unwrap();
        timed.reset_transitions();
        zd.set_input_bits("a", 0);
        zd.set_input_bits("b", 0);
        zd.step();
        zd.reset_transitions();
        // Flip both inputs: final xor value is unchanged (0), but the
        // delayed path makes the timed output pulse 0->1->0.
        timed.set_input_bits("a", 1);
        timed.set_input_bits("b", 1);
        timed.step().unwrap();
        zd.set_input_bits("a", 1);
        zd.set_input_bits("b", 1);
        zd.step();
        // Zero-delay: buffers toggle (2 transitions), xor stays.
        assert_eq!(zd.logic_transitions(), 2);
        // Timed: buffers toggle (2) + xor glitches (2 transitions).
        assert_eq!(timed.logic_transitions(), 4);
        assert_eq!(timed.output_bits("p"), Some(0));
        assert_eq!(zd.output_bits("p"), Some(0));
    }

    #[test]
    fn functional_agreement_with_zero_delay() {
        // Random full-adder vectors: settled outputs must agree.
        let mut b = NetlistBuilder::new("fa");
        let a = b.add_input("a0");
        let x = b.add_input("b0");
        let c = b.add_input("c0");
        let s = b.add_cell(CellKind::Xor3, &[a, x, c]);
        let co = b.add_cell(CellKind::Maj3, &[a, x, c]);
        b.add_output("p0", s);
        b.add_output("p1", co);
        let nl = b.build().unwrap();
        let lib = Library::cmos13();
        let mut timed = TimedSim::new(&nl, &lib).unwrap();
        let mut zd = crate::ZeroDelaySim::new(&nl);
        for v in 0..8u64 {
            timed.set_input_bits("a", v & 1);
            timed.set_input_bits("b", (v >> 1) & 1);
            timed.set_input_bits("c", (v >> 2) & 1);
            timed.step().unwrap();
            zd.set_input_bits("a", v & 1);
            zd.set_input_bits("b", (v >> 1) & 1);
            zd.set_input_bits("c", (v >> 2) & 1);
            zd.step();
            assert_eq!(timed.output_bits("p"), zd.output_bits("p"), "v={v}");
        }
    }

    #[test]
    fn dff_capture_uses_pre_edge_value() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[d]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let mut sim = TimedSim::new(&nl, &Library::cmos13()).unwrap();
        sim.set_input_bits("a", 1);
        sim.step().unwrap();
        assert_eq!(sim.output_bits("p"), None, "q captured pre-edge X");
        sim.step().unwrap();
        assert_eq!(sim.output_bits("p"), Some(1));
    }

    #[test]
    fn constants_and_quiet_cells_resolve() {
        // Regression: a cell fed only by constants must leave X on the
        // first cycle even though its inputs never "change".
        let mut b = NetlistBuilder::new("const");
        let one = b.add_cell(CellKind::Const1, &[]);
        let zero = b.add_cell(CellKind::Const0, &[]);
        let n = b.add_cell(CellKind::Nand2, &[one, zero]);
        let x = b.add_input("a0");
        let y = b.add_cell(CellKind::And2, &[n, x]);
        b.add_output("p0", y);
        let nl = b.build().unwrap();
        let mut sim = TimedSim::new(&nl, &Library::cmos13()).unwrap();
        sim.set_input_bits("a", 1);
        sim.step().unwrap();
        assert_eq!(sim.output_bits("p"), Some(1));
    }

    #[test]
    fn event_count_bounded_per_cycle() {
        let nl = glitchy_xor();
        let mut sim = TimedSim::new(&nl, &Library::cmos13()).unwrap();
        sim.set_input_bits("a", 1);
        sim.set_input_bits("b", 1);
        let events = sim.step().unwrap();
        // 3 combinational cells, each re-evaluated a handful of times.
        assert!(events < 20, "events = {events}");
    }

    #[test]
    fn quantization_is_exact_for_the_library() {
        // Every cmos13 delay is a multiple of 0.1 gate units, so the
        // 1000-ticks-per-gate quantization is exact.
        let nl = glitchy_xor();
        let lib = Library::cmos13();
        let ticks = quantize_delays(&nl, &lib).unwrap();
        for (cell, &t) in nl.cells().iter().zip(&ticks) {
            let gates = lib.delay(cell.kind);
            assert_eq!(t, (gates * 10.0).round() as u64 * 100, "{}", cell.name);
        }
    }

    #[test]
    fn luts_agree_with_cell_eval_exhaustively() {
        // The compiled truth tables must be CellKind::eval, verbatim.
        let levels = [Logic::Zero, Logic::One, Logic::X];
        let luts = build_luts();
        for (k, &kind) in CellKind::ALL.iter().enumerate() {
            let arity = kind.arity();
            if !(1..=3).contains(&arity) {
                continue;
            }
            for (combo, &code) in luts[k].iter().enumerate().take(3usize.pow(arity as u32)) {
                let mut ins = [Logic::X; 3];
                let mut c = combo;
                for slot in ins.iter_mut().take(arity) {
                    *slot = levels[c % 3];
                    c /= 3;
                }
                assert_eq!(
                    logic_of(code),
                    kind.eval(&ins[..arity]),
                    "{kind} combo {combo}"
                );
            }
        }
    }

    #[test]
    fn invalid_delays_are_rejected_at_construction() {
        // A library with a NaN delay must fail `new`, not corrupt
        // event ordering at runtime (the old f64 engine compared NaN
        // as Ordering::Equal).
        let nl = glitchy_xor();
        for bad in [f64::NAN, f64::INFINITY, -1.0, MAX_DELAY_GATES + 1.0] {
            let lib = Library::with_uniform_delay(bad);
            let err = TimedSim::new(&nl, &lib).unwrap_err();
            match err {
                SimError::InvalidDelay { delay_gates, .. } => {
                    assert!(delay_gates.is_nan() || delay_gates == bad);
                }
                other => panic!("expected InvalidDelay, got {other:?}"),
            }
        }
        // Zero and MAX_DELAY_GATES are legal extremes.
        for ok in [0.0, MAX_DELAY_GATES] {
            assert!(TimedSim::new(&nl, &Library::with_uniform_delay(ok)).is_ok());
        }
    }

    #[test]
    fn run_drain_engages_iff_no_zero_delay_cell() {
        let nl = glitchy_xor();
        // cmos13: every logic delay is >= 0.1 gate units, i.e. >= 1
        // stride unit after GCD normalisation -> bucket-run drain.
        let sim = TimedSim::new(&nl, &Library::cmos13()).unwrap();
        assert!(sim.run_drain);
        // A zero-delay library forces the per-event fallback.
        let sim = TimedSim::new(&nl, &Library::with_uniform_delay(0.0)).unwrap();
        assert!(!sim.run_drain);
    }

    #[test]
    fn run_drain_and_pop_loop_agree_on_forced_fallback() {
        // Force the pop loop on a normal library (by flipping the
        // flag) and check bit-identity against the run-drain loop:
        // same outputs, same transition counters, same event counts.
        let nl = glitchy_xor();
        let lib = Library::cmos13();
        let mut fast = TimedSim::new(&nl, &lib).unwrap();
        let mut slow = TimedSim::new(&nl, &lib).unwrap();
        slow.run_drain = false;
        for v in [0u64, 3, 1, 2, 0, 3, 3, 1] {
            fast.set_input_bits("a", v & 1);
            fast.set_input_bits("b", (v >> 1) & 1);
            slow.set_input_bits("a", v & 1);
            slow.set_input_bits("b", (v >> 1) & 1);
            let ef = fast.step().unwrap();
            let es = slow.step().unwrap();
            assert_eq!(ef, es, "processed-event counts diverged at {v}");
            assert_eq!(fast.output_bits("p"), slow.output_bits("p"), "v={v}");
        }
        assert_eq!(fast.transitions(), slow.transitions());
    }

    #[test]
    fn zero_delay_library_settles_in_one_tick() {
        // All-zero delays exercise the single-bucket wheel: events
        // cascade at tick 0 in pure FIFO order.
        let nl = glitchy_xor();
        let lib = Library::with_uniform_delay(0.0);
        let mut sim = TimedSim::new(&nl, &lib).unwrap();
        let mut zd = crate::ZeroDelaySim::new(&nl);
        for v in [0u64, 3, 1, 2, 3, 0] {
            sim.set_input_bits("a", v & 1);
            sim.set_input_bits("b", (v >> 1) & 1);
            sim.step().unwrap();
            zd.set_input_bits("a", v & 1);
            zd.set_input_bits("b", (v >> 1) & 1);
            zd.step();
            assert_eq!(sim.output_bits("p"), zd.output_bits("p"), "v={v}");
        }
    }
}
