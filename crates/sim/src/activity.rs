//! Activity extraction: the paper's `a` factor from random stimulus.
//!
//! # Determinism across engines
//!
//! The stimulus sequence is defined *once*, by [`StimulusGen`], as a
//! pure function of `(seed, a_width, b_width)`. The scalar engines
//! ([`Engine::ZeroDelay`], [`Engine::Timed`]) consume that single
//! stream; [`Engine::BitParallel`] runs 64 streams whose seeds come
//! from [`lane_seed`], with lane 0 being the base seed. Consequences,
//! locked down by the tests below and `tests/sim_differential.rs`:
//!
//! * the same `seed` applies the same operands to `ZeroDelay` and
//!   `Timed`, so their activities differ only by glitches;
//! * a `BitParallel` measurement is *bit-identical* — transition counts
//!   included — to the sum of 64 scalar `ZeroDelay` measurements
//!   seeded with `lane_seed(seed, 0..64)`.

use optpower_netlist::{Library, Netlist};

use crate::bit_parallel::LANES;
use crate::bus::{lane_seed, StimulusGen};
use crate::{bus_inputs, BitParallelSim, TimedSim, ZeroDelaySim};

/// Which engine to measure with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Zero-delay (glitch-free) counting, one stimulus stream.
    ZeroDelay,
    /// Event-driven with library delays (counts glitches).
    Timed,
    /// 64 zero-delay lanes at once ([`BitParallelSim`]): ~64× the
    /// stimulus volume of [`Engine::ZeroDelay`] per unit time, with
    /// identical per-lane semantics.
    BitParallel,
}

/// Result of an activity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityReport {
    /// The paper's activity `a`: average transitions per logic cell
    /// per *data period* (one data item).
    pub activity: f64,
    /// Total logic transitions counted over the measurement window.
    pub transitions: u64,
    /// Number of data items measured (excluding warm-up). For
    /// [`Engine::BitParallel`] this is 64× the per-lane item count.
    pub items: u64,
    /// Logic cell count `N` used for normalisation.
    pub cells: usize,
}

/// Minimal driving interface shared by the scalar engines.
trait Drive {
    fn set_bits(&mut self, prefix: &str, value: u64);
    fn advance(&mut self);
    fn logic_transitions_so_far(&self) -> u64;
}

impl Drive for TimedSim<'_> {
    fn set_bits(&mut self, prefix: &str, value: u64) {
        self.set_input_bits(prefix, value);
    }
    fn advance(&mut self) {
        self.step();
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

impl Drive for ZeroDelaySim<'_> {
    fn set_bits(&mut self, prefix: &str, value: u64) {
        self.set_input_bits(prefix, value);
    }
    fn advance(&mut self) {
        self.step();
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

/// An engine bound to its stimulus source(s): what [`run`] needs to
/// apply one data item. Keeping this as one enum means the measurement
/// protocol itself (warm-up windowing, reset pulse, hold cycles) exists
/// exactly once, in [`run`], for every engine.
enum Driver<'s, 'n> {
    /// A scalar engine consuming the single base-seed stream.
    Scalar {
        sim: &'s mut dyn Drive,
        stim: StimulusGen,
    },
    /// The bit-parallel engine consuming 64 lane-seeded streams.
    Lanes {
        sim: Box<BitParallelSim<'n>>,
        stims: Vec<StimulusGen>,
    },
}

impl Driver<'_, '_> {
    /// Number of stimulus streams one protocol item covers.
    fn lanes(&self) -> u64 {
        match self {
            Driver::Scalar { .. } => 1,
            Driver::Lanes { .. } => LANES as u64,
        }
    }

    fn set_rst(&mut self, high: bool) {
        match self {
            Driver::Scalar { sim, .. } => sim.set_bits("rst", u64::from(high)),
            Driver::Lanes { sim, .. } => sim.set_input_bits_all_lanes("rst", u64::from(high)),
        }
    }

    /// Draws the next operand pair from every stream and applies it.
    fn apply_operands(&mut self) {
        match self {
            Driver::Scalar { sim, stim } => {
                let (a, b) = stim.next_item();
                sim.set_bits("a", a);
                sim.set_bits("b", b);
            }
            Driver::Lanes { sim, stims } => {
                let mut a_lanes = [0u64; LANES];
                let mut b_lanes = [0u64; LANES];
                for (lane, stim) in stims.iter_mut().enumerate() {
                    let (a, b) = stim.next_item();
                    a_lanes[lane] = a;
                    b_lanes[lane] = b;
                }
                sim.set_input_bits_lanes("a", &a_lanes);
                sim.set_input_bits_lanes("b", &b_lanes);
            }
        }
    }

    fn advance(&mut self) {
        match self {
            Driver::Scalar { sim, .. } => sim.advance(),
            Driver::Lanes { sim, .. } => sim.step(),
        }
    }

    fn transitions(&self) -> u64 {
        match self {
            Driver::Scalar { sim, .. } => sim.logic_transitions_so_far(),
            Driver::Lanes { sim, .. } => sim.logic_transitions(),
        }
    }
}

/// Measures switching activity with uniform random operands on the
/// input buses `a` and `b`.
///
/// `cycles_per_item` is the number of clock cycles each data item
/// occupies (1 for combinational/pipelined/parallel designs, the
/// operand width for add-and-shift sequential designs). Inputs are
/// held stable for that many cycles.
///
/// The first `warmup` items are simulated but not counted (they flush
/// `X` state and pipeline bubbles). For [`Engine::BitParallel`],
/// `items` and `warmup` count *per-lane* items: the report covers
/// `64 × items` measured items for the cost of one zero-delay pass.
///
/// # Panics
///
/// Panics if the netlist has no `a`/`b` input buses.
pub fn measure_activity(
    netlist: &Netlist,
    library: &Library,
    engine: Engine,
    items: u64,
    cycles_per_item: u32,
    warmup: u64,
    seed: u64,
) -> ActivityReport {
    let a_w = bus_inputs(netlist, "a").len() as u32;
    let b_w = bus_inputs(netlist, "b").len() as u32;
    assert!(
        a_w > 0 && b_w > 0,
        "activity measurement requires a/b input buses"
    );
    let cells = netlist.logic_cell_count();
    let has_rst = !bus_inputs(netlist, "rst").is_empty();
    if has_rst {
        assert!(warmup >= 2, "designs with a reset need warmup >= 2 items");
    }
    match engine {
        Engine::Timed => run(
            Driver::Scalar {
                sim: &mut TimedSim::new(netlist, library),
                stim: StimulusGen::new(seed, a_w, b_w),
            },
            cells,
            items,
            cycles_per_item,
            warmup,
            has_rst,
        ),
        Engine::ZeroDelay => run(
            Driver::Scalar {
                sim: &mut ZeroDelaySim::new(netlist),
                stim: StimulusGen::new(seed, a_w, b_w),
            },
            cells,
            items,
            cycles_per_item,
            warmup,
            has_rst,
        ),
        Engine::BitParallel => run(
            Driver::Lanes {
                sim: Box::new(BitParallelSim::new(netlist)),
                stims: (0..LANES as u32)
                    .map(|lane| StimulusGen::new(lane_seed(seed, lane), a_w, b_w))
                    .collect(),
            },
            cells,
            items,
            cycles_per_item,
            warmup,
            has_rst,
        ),
    }
}

/// The measurement protocol, shared by every engine: warm-up items are
/// simulated but fall outside the counting window, designs with a
/// `rst` bus get it pulsed for the first item only, and each item's
/// operands are held for `cycles_per_item` clock cycles.
fn run(
    mut driver: Driver<'_, '_>,
    cells: usize,
    items: u64,
    cycles_per_item: u32,
    warmup: u64,
    has_rst: bool,
) -> ActivityReport {
    let mut window_start = 0u64;
    for item in 0..(warmup + items) {
        if item == warmup {
            window_start = driver.transitions();
        }
        if has_rst {
            driver.set_rst(item == 0);
        }
        driver.apply_operands();
        for _ in 0..cycles_per_item.max(1) {
            driver.advance();
        }
    }
    let transitions = driver.transitions() - window_start;
    let measured = items * driver.lanes();
    ActivityReport {
        activity: transitions as f64 / (measured as f64 * cells as f64),
        transitions,
        items: measured,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    /// 2-bit combinational adder-ish circuit with a/b buses.
    fn small_design() -> Netlist {
        let mut b = NetlistBuilder::new("small");
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let s0 = b.add_cell(CellKind::Xor2, &[a0, b0]);
        let c0 = b.add_cell(CellKind::And2, &[a0, b0]);
        let s1 = b.add_cell(CellKind::Xor3, &[a1, b1, c0]);
        let c1 = b.add_cell(CellKind::Maj3, &[a1, b1, c0]);
        b.add_output("p0", s0);
        b.add_output("p1", s1);
        b.add_output("p2", c1);
        b.build().unwrap()
    }

    #[test]
    fn activity_in_plausible_range() {
        let nl = small_design();
        let lib = Library::cmos13();
        let r = measure_activity(&nl, &lib, Engine::Timed, 200, 1, 4, 42);
        assert!(r.activity > 0.1 && r.activity < 2.0, "a = {}", r.activity);
        assert_eq!(r.cells, 4);
        assert_eq!(r.items, 200);
    }

    #[test]
    fn timed_activity_at_least_zero_delay() {
        // Glitches can only add transitions.
        let nl = small_design();
        let lib = Library::cmos13();
        let t = measure_activity(&nl, &lib, Engine::Timed, 300, 1, 4, 7);
        let z = measure_activity(&nl, &lib, Engine::ZeroDelay, 300, 1, 4, 7);
        assert!(
            t.activity >= z.activity - 1e-12,
            "timed {} < zero-delay {}",
            t.activity,
            z.activity
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = small_design();
        let lib = Library::cmos13();
        for engine in [Engine::Timed, Engine::ZeroDelay, Engine::BitParallel] {
            let r1 = measure_activity(&nl, &lib, engine, 100, 1, 2, 123);
            let r2 = measure_activity(&nl, &lib, engine, 100, 1, 2, 123);
            assert_eq!(r1, r2, "{engine:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let nl = small_design();
        let lib = Library::cmos13();
        let r1 = measure_activity(&nl, &lib, Engine::Timed, 100, 1, 2, 1);
        let r2 = measure_activity(&nl, &lib, Engine::Timed, 100, 1, 2, 2);
        assert_ne!(r1.transitions, r2.transitions);
    }

    #[test]
    fn holding_inputs_for_more_cycles_keeps_combinational_quiet() {
        // For a purely combinational design, extra hold cycles add no
        // transitions: activity per item is unchanged.
        let nl = small_design();
        let lib = Library::cmos13();
        let r1 = measure_activity(&nl, &lib, Engine::Timed, 150, 1, 2, 9);
        let r4 = measure_activity(&nl, &lib, Engine::Timed, 150, 4, 2, 9);
        assert!((r1.activity - r4.activity).abs() < 1e-12);
    }

    #[test]
    fn bit_parallel_equals_sum_of_64_scalar_runs() {
        // The headline contract: transitions of one BitParallel run ==
        // the sum over 64 ZeroDelay runs seeded with the lane seeds.
        let nl = small_design();
        let lib = Library::cmos13();
        let bp = measure_activity(&nl, &lib, Engine::BitParallel, 50, 1, 3, 99);
        let scalar_sum: u64 = (0..LANES as u32)
            .map(|lane| {
                measure_activity(&nl, &lib, Engine::ZeroDelay, 50, 1, 3, lane_seed(99, lane))
                    .transitions
            })
            .sum();
        assert_eq!(bp.transitions, scalar_sum);
        assert_eq!(bp.items, 50 * LANES as u64);
    }

    #[test]
    fn bit_parallel_lane0_sees_the_scalar_stream() {
        // Same seed => the scalar ZeroDelay measurement is exactly the
        // lane-0 slice of the BitParallel measurement.
        let nl = small_design();
        let lib = Library::cmos13();
        let zd = measure_activity(&nl, &lib, Engine::ZeroDelay, 80, 1, 2, 7);
        let lane0 = measure_activity(&nl, &lib, Engine::ZeroDelay, 80, 1, 2, lane_seed(7, 0));
        assert_eq!(zd, lane0);
    }

    #[test]
    fn bit_parallel_activity_is_a_per_item_average() {
        // Sanity: activity stays in the scalar neighbourhood — it is
        // normalised per measured item, not inflated 64×.
        let nl = small_design();
        let lib = Library::cmos13();
        let zd = measure_activity(&nl, &lib, Engine::ZeroDelay, 400, 1, 2, 21);
        let bp = measure_activity(&nl, &lib, Engine::BitParallel, 50, 1, 2, 21);
        assert!(
            (zd.activity - bp.activity).abs() < 0.15,
            "zd {} vs bp {}",
            zd.activity,
            bp.activity
        );
    }
}
