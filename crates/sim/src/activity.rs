//! Activity extraction: the paper's `a` factor from random stimulus.

use optpower_netlist::{Library, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{bus_inputs, TimedSim, ZeroDelaySim};

/// Which engine to measure with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Zero-delay (glitch-free) counting.
    ZeroDelay,
    /// Event-driven with library delays (counts glitches).
    Timed,
}

/// Result of an activity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityReport {
    /// The paper's activity `a`: average transitions per logic cell
    /// per *data period* (one data item).
    pub activity: f64,
    /// Total logic transitions counted over the measurement window.
    pub transitions: u64,
    /// Number of data items applied (excluding warm-up).
    pub items: u64,
    /// Logic cell count `N` used for normalisation.
    pub cells: usize,
}

/// Minimal driving interface shared by the two engines.
trait Drive {
    fn set_bits(&mut self, prefix: &str, value: u64);
    fn advance(&mut self);
    fn logic_transitions_so_far(&self) -> u64;
}

impl Drive for TimedSim<'_> {
    fn set_bits(&mut self, prefix: &str, value: u64) {
        self.set_input_bits(prefix, value);
    }
    fn advance(&mut self) {
        self.step();
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

impl Drive for ZeroDelaySim<'_> {
    fn set_bits(&mut self, prefix: &str, value: u64) {
        self.set_input_bits(prefix, value);
    }
    fn advance(&mut self) {
        self.step();
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

/// Measures switching activity with uniform random operands on the
/// input buses `a` and `b`.
///
/// `cycles_per_item` is the number of clock cycles each data item
/// occupies (1 for combinational/pipelined/parallel designs, the
/// operand width for add-and-shift sequential designs). Inputs are
/// held stable for that many cycles.
///
/// The first `warmup` items are simulated but not counted (they flush
/// `X` state and pipeline bubbles).
///
/// # Panics
///
/// Panics if the netlist has no `a`/`b` input buses.
pub fn measure_activity(
    netlist: &Netlist,
    library: &Library,
    engine: Engine,
    items: u64,
    cycles_per_item: u32,
    warmup: u64,
    seed: u64,
) -> ActivityReport {
    let a_w = bus_inputs(netlist, "a").len() as u32;
    let b_w = bus_inputs(netlist, "b").len() as u32;
    assert!(
        a_w > 0 && b_w > 0,
        "activity measurement requires a/b input buses"
    );
    let cells = netlist.logic_cell_count();
    let has_rst = !bus_inputs(netlist, "rst").is_empty();
    if has_rst {
        assert!(warmup >= 2, "designs with a reset need warmup >= 2 items");
    }
    match engine {
        Engine::Timed => run(
            &mut TimedSim::new(netlist, library),
            a_w,
            b_w,
            cells,
            items,
            cycles_per_item,
            warmup,
            seed,
            has_rst,
        ),
        Engine::ZeroDelay => run(
            &mut ZeroDelaySim::new(netlist),
            a_w,
            b_w,
            cells,
            items,
            cycles_per_item,
            warmup,
            seed,
            has_rst,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    sim: &mut dyn Drive,
    a_w: u32,
    b_w: u32,
    cells: usize,
    items: u64,
    cycles_per_item: u32,
    warmup: u64,
    seed: u64,
    has_rst: bool,
) -> ActivityReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = |w: u32| {
        if w >= 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    };
    let mut window_start = 0u64;
    for item in 0..(warmup + items) {
        if item == warmup {
            window_start = sim.logic_transitions_so_far();
        }
        if has_rst {
            sim.set_bits("rst", u64::from(item == 0));
        }
        sim.set_bits("a", rng.gen::<u64>() & mask(a_w));
        sim.set_bits("b", rng.gen::<u64>() & mask(b_w));
        for _ in 0..cycles_per_item.max(1) {
            sim.advance();
        }
    }
    let transitions = sim.logic_transitions_so_far() - window_start;
    ActivityReport {
        activity: transitions as f64 / (items as f64 * cells as f64),
        transitions,
        items,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    /// 2-bit combinational adder-ish circuit with a/b buses.
    fn small_design() -> Netlist {
        let mut b = NetlistBuilder::new("small");
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let s0 = b.add_cell(CellKind::Xor2, &[a0, b0]);
        let c0 = b.add_cell(CellKind::And2, &[a0, b0]);
        let s1 = b.add_cell(CellKind::Xor3, &[a1, b1, c0]);
        let c1 = b.add_cell(CellKind::Maj3, &[a1, b1, c0]);
        b.add_output("p0", s0);
        b.add_output("p1", s1);
        b.add_output("p2", c1);
        b.build().unwrap()
    }

    #[test]
    fn activity_in_plausible_range() {
        let nl = small_design();
        let lib = Library::cmos13();
        let r = measure_activity(&nl, &lib, Engine::Timed, 200, 1, 4, 42);
        assert!(r.activity > 0.1 && r.activity < 2.0, "a = {}", r.activity);
        assert_eq!(r.cells, 4);
        assert_eq!(r.items, 200);
    }

    #[test]
    fn timed_activity_at_least_zero_delay() {
        // Glitches can only add transitions.
        let nl = small_design();
        let lib = Library::cmos13();
        let t = measure_activity(&nl, &lib, Engine::Timed, 300, 1, 4, 7);
        let z = measure_activity(&nl, &lib, Engine::ZeroDelay, 300, 1, 4, 7);
        assert!(
            t.activity >= z.activity - 1e-12,
            "timed {} < zero-delay {}",
            t.activity,
            z.activity
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = small_design();
        let lib = Library::cmos13();
        let r1 = measure_activity(&nl, &lib, Engine::Timed, 100, 1, 2, 123);
        let r2 = measure_activity(&nl, &lib, Engine::Timed, 100, 1, 2, 123);
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_differ() {
        let nl = small_design();
        let lib = Library::cmos13();
        let r1 = measure_activity(&nl, &lib, Engine::Timed, 100, 1, 2, 1);
        let r2 = measure_activity(&nl, &lib, Engine::Timed, 100, 1, 2, 2);
        assert_ne!(r1.transitions, r2.transitions);
    }

    #[test]
    fn holding_inputs_for_more_cycles_keeps_combinational_quiet() {
        // For a purely combinational design, extra hold cycles add no
        // transitions: activity per item is unchanged.
        let nl = small_design();
        let lib = Library::cmos13();
        let r1 = measure_activity(&nl, &lib, Engine::Timed, 150, 1, 2, 9);
        let r4 = measure_activity(&nl, &lib, Engine::Timed, 150, 4, 2, 9);
        assert!((r1.activity - r4.activity).abs() < 1e-12);
    }
}
