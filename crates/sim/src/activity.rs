//! Activity extraction: the paper's `a` factor from random stimulus.
//!
//! # Determinism across engines
//!
//! The stimulus sequence is defined *once*, by [`StimulusGen`], as a
//! pure function of `(seed, a_width, b_width)`. The scalar engines
//! ([`Engine::ZeroDelay`], [`Engine::Timed`], [`Engine::TimedScalar`])
//! consume that single stream; the plane engines
//! ([`Engine::BitParallel`], [`Engine::BitParallel256`],
//! [`Engine::BitParallel512`]) run one stream per lane whose seeds come
//! from [`lane_seed`], with lane 0 being the base seed. Consequences,
//! locked down by the tests below, `tests/sim_differential.rs` and
//! `tests/timed_differential.rs`:
//!
//! * the same `seed` applies the same operands to `ZeroDelay` and
//!   `Timed`, so their activities differ only by glitches;
//! * a plane measurement of `L` lanes is *bit-identical* — transition
//!   counts included — to the sum of `L` scalar `ZeroDelay`
//!   measurements seeded with `lane_seed(seed, 0..L)` at the same
//!   per-lane item count; widths nest, so a 256/512-lane run also
//!   equals the sum of its chunked 64-lane runs;
//! * a `Timed` (event-wheel) measurement is bit-identical to a
//!   `TimedScalar` (frozen heap reference) measurement, and a pooled
//!   timed measurement (`optpower_explore::measure_timed_activity_pooled`)
//!   is bit-identical to the sum of per-lane scalar measurements for
//!   any worker count.

use optpower_netlist::{CellId, Library, Logic, Netlist};

use crate::bit_parallel::LANES;
use crate::bus::{lane_seed, transpose64, StimulusGen};
use crate::{bus_inputs, ScalarTimedSim, SimError, TimedSim, WidePlaneSim, ZeroDelaySim};

/// Which engine to measure with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Zero-delay (glitch-free) counting, one stimulus stream.
    ZeroDelay,
    /// Event-driven with library delays (counts glitches): the
    /// production [`TimedSim`] on integer ticks and the event wheel.
    Timed,
    /// The frozen pre-wheel timed reference ([`ScalarTimedSim`]):
    /// binary-heap queue, per-event allocations. Bit-identical to
    /// [`Engine::Timed`]; exists as the differential baseline and the
    /// `timed_scalar` bench row.
    TimedScalar,
    /// 64 zero-delay lanes at once ([`crate::BitParallelSim`]): ~64×
    /// the stimulus volume of [`Engine::ZeroDelay`] per unit time,
    /// with identical per-lane semantics.
    BitParallel,
    /// 256 zero-delay lanes at once ([`crate::BitParallelSim256`]):
    /// the same per-lane semantics on a four-chunk plane, amortising
    /// per-cell bookkeeping over 4× more streams.
    BitParallel256,
    /// 512 zero-delay lanes at once ([`crate::BitParallelSim512`]):
    /// the widest plane, eight chunks per word.
    BitParallel512,
}

/// Result of an activity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityReport {
    /// The paper's activity `a`: average transitions per logic cell
    /// per *data period* (one data item).
    pub activity: f64,
    /// Total logic transitions counted over the measurement window.
    pub transitions: u64,
    /// Number of data items measured (excluding warm-up). For
    /// [`Engine::BitParallel`] this is 64× the per-lane item count.
    pub items: u64,
    /// Logic cell count `N` used for normalisation.
    pub cells: usize,
}

impl ActivityReport {
    /// Combines independent per-lane measurements of the *same*
    /// netlist into one report: transitions and items add, and the
    /// activity is re-normalised over the combined window. The result
    /// depends only on the multiset of inputs (integer sums), so any
    /// parallel split over lanes is worker-count invariant by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty or mixes different cell counts
    /// (i.e. different netlists).
    pub fn combine(reports: &[ActivityReport]) -> ActivityReport {
        assert!(!reports.is_empty(), "nothing to combine");
        let cells = reports[0].cells;
        let mut transitions = 0u64;
        let mut items = 0u64;
        for r in reports {
            assert_eq!(r.cells, cells, "reports cover different netlists");
            transitions += r.transitions;
            items += r.items;
        }
        ActivityReport {
            activity: transitions as f64 / (items as f64 * cells as f64),
            transitions,
            items,
            cells,
        }
    }
}

/// Minimal driving interface shared by the scalar engines. Buses are
/// resolved to [`CellId`]s once per measurement (in
/// [`measure_activity`]) and driven pin by pin — re-resolving the
/// `{prefix}{bit}` names on every item would put string formatting on
/// the measurement hot path.
trait Drive {
    fn set_pin(&mut self, pin: CellId, value: Logic);
    fn advance(&mut self) -> Result<(), SimError>;
    fn logic_transitions_so_far(&self) -> u64;
}

impl Drive for TimedSim<'_> {
    fn set_pin(&mut self, pin: CellId, value: Logic) {
        self.set_input(pin, value);
    }
    fn advance(&mut self) -> Result<(), SimError> {
        self.step().map(|_events| ())
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

impl Drive for ScalarTimedSim<'_> {
    fn set_pin(&mut self, pin: CellId, value: Logic) {
        self.set_input(pin, value);
    }
    fn advance(&mut self) -> Result<(), SimError> {
        self.step().map(|_events| ())
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

impl Drive for ZeroDelaySim<'_> {
    fn set_pin(&mut self, pin: CellId, value: Logic) {
        self.set_input(pin, value);
    }
    fn advance(&mut self) -> Result<(), SimError> {
        self.step();
        Ok(())
    }
    fn logic_transitions_so_far(&self) -> u64 {
        self.logic_transitions()
    }
}

/// Width-erased driving interface over [`WidePlaneSim`], so
/// [`Driver::Lanes`] holds one trait object instead of one enum arm
/// per plane width. Private on purpose: the public surface is the
/// concrete engine types plus [`Engine`].
trait LaneDrive {
    /// Number of stimulus lanes (`64 * W`).
    fn lane_count(&self) -> usize;
    /// Sets one primary input from a plane of chunk words.
    fn set_plane(&mut self, pin: CellId, ones: &[u64]);
    /// Sets one primary input to the same level in every lane.
    fn set_splat(&mut self, pin: CellId, value: bool);
    /// Advances one clock cycle in every lane.
    fn step_once(&mut self);
    /// Total logic transitions so far, summed over all lanes.
    fn transitions(&self) -> u64;
}

impl<const W: usize> LaneDrive for WidePlaneSim<'_, W> {
    fn lane_count(&self) -> usize {
        self.lanes()
    }
    fn set_plane(&mut self, pin: CellId, ones: &[u64]) {
        self.set_input_plane(pin, ones);
    }
    fn set_splat(&mut self, pin: CellId, value: bool) {
        self.set_input_all_lanes(pin, value);
    }
    fn step_once(&mut self) {
        self.step();
    }
    fn transitions(&self) -> u64 {
        self.logic_transitions()
    }
}

/// An engine bound to its stimulus source(s): what [`run`] needs to
/// apply one data item. Keeping this as one enum means the measurement
/// protocol itself (warm-up windowing, reset pulse, hold cycles) exists
/// exactly once, in [`run`], for every engine.
enum Driver<'s, 'n> {
    /// A scalar engine consuming the single base-seed stream.
    Scalar {
        sim: &'s mut dyn Drive,
        stim: StimulusGen,
        buses: Buses,
    },
    /// A plane engine consuming one lane-seeded stream per lane.
    Lanes {
        sim: Box<dyn LaneDrive + 'n>,
        stims: Vec<StimulusGen>,
        buses: Buses,
        /// Per-lane operand scratch (reused every item so the
        /// transpose allocates nothing on the hot path).
        ops_a: Vec<u64>,
        ops_b: Vec<u64>,
        /// Transposed plane-word scratch, `max(bus width) * W` words:
        /// row `bit` holds pin `bit`'s chunk words for one item.
        plane: Vec<u64>,
    },
}

/// The `a`/`b`/`rst` input buses, resolved to pins once per
/// measurement.
struct Buses {
    a: Vec<CellId>,
    b: Vec<CellId>,
    rst: Vec<CellId>,
}

impl Buses {
    fn resolve(netlist: &Netlist) -> Buses {
        Buses {
            a: bus_inputs(netlist, "a"),
            b: bus_inputs(netlist, "b"),
            rst: bus_inputs(netlist, "rst"),
        }
    }
}

impl Driver<'_, '_> {
    /// Number of stimulus streams one protocol item covers.
    fn lanes(&self) -> u64 {
        match self {
            Driver::Scalar { .. } => 1,
            Driver::Lanes { sim, .. } => sim.lane_count() as u64,
        }
    }

    fn set_rst(&mut self, high: bool) {
        match self {
            Driver::Scalar { sim, buses, .. } => {
                for (i, &pin) in buses.rst.iter().enumerate() {
                    sim.set_pin(pin, Logic::from_bool((u64::from(high) >> i) & 1 == 1));
                }
            }
            Driver::Lanes { sim, buses, .. } => {
                for (i, &pin) in buses.rst.iter().enumerate() {
                    sim.set_splat(pin, (u64::from(high) >> i) & 1 == 1);
                }
            }
        }
    }

    /// Draws the next operand pair from every stream and applies it.
    fn apply_operands(&mut self) {
        match self {
            Driver::Scalar { sim, stim, buses } => {
                let (a, b) = stim.next_item();
                for (i, &pin) in buses.a.iter().enumerate() {
                    sim.set_pin(pin, Logic::from_bool((a >> i) & 1 == 1));
                }
                for (i, &pin) in buses.b.iter().enumerate() {
                    sim.set_pin(pin, Logic::from_bool((b >> i) & 1 == 1));
                }
            }
            Driver::Lanes {
                sim,
                stims,
                buses,
                ops_a,
                ops_b,
                plane,
            } => {
                for (lane, stim) in stims.iter_mut().enumerate() {
                    let (a, b) = stim.next_item();
                    ops_a[lane] = a;
                    ops_b[lane] = b;
                }
                // Pivot: bit `i` of every lane's operand becomes lane
                // bits of pin `i`'s plane. One 64×64 bit-matrix
                // transpose per chunk ([`transpose64`]) instead of a
                // per-bit gather — the pivot volume is the same at
                // every plane width, so it must stay cheap or it caps
                // the wide engines' speedup.
                let chunks = ops_a.len() / LANES;
                for (bus, ops) in [(&buses.a, &*ops_a), (&buses.b, &*ops_b)] {
                    let mut block = [0u64; LANES];
                    for (c, src) in ops.chunks_exact(LANES).enumerate() {
                        block.copy_from_slice(src);
                        transpose64(&mut block);
                        for (bit, &word) in block.iter().take(bus.len()).enumerate() {
                            plane[bit * chunks + c] = word;
                        }
                    }
                    for (i, &pin) in bus.iter().enumerate() {
                        sim.set_plane(pin, &plane[i * chunks..(i + 1) * chunks]);
                    }
                }
            }
        }
    }

    fn advance(&mut self) -> Result<(), SimError> {
        match self {
            Driver::Scalar { sim, .. } => sim.advance(),
            Driver::Lanes { sim, .. } => {
                sim.step_once();
                Ok(())
            }
        }
    }

    fn transitions(&self) -> u64 {
        match self {
            Driver::Scalar { sim, .. } => sim.logic_transitions_so_far(),
            Driver::Lanes { sim, .. } => sim.transitions(),
        }
    }
}

/// Builds the lane-seeded plane driver for one width: one
/// [`StimulusGen`] per lane, seeded `lane_seed(seed, 0..64*W)`.
fn lanes_driver<'n, const W: usize>(
    netlist: &'n Netlist,
    buses: Buses,
    seed: u64,
    a_w: u32,
    b_w: u32,
) -> Driver<'n, 'n> {
    let lanes = LANES * W;
    let plane_words = buses.a.len().max(buses.b.len()) * W;
    Driver::Lanes {
        sim: Box::new(WidePlaneSim::<W>::new(netlist)),
        stims: (0..lanes as u32)
            .map(|lane| StimulusGen::new(lane_seed(seed, lane), a_w, b_w))
            .collect(),
        buses,
        ops_a: vec![0; lanes],
        ops_b: vec![0; lanes],
        plane: vec![0; plane_words],
    }
}

/// Measures switching activity with uniform random operands on the
/// input buses `a` and `b`.
///
/// `cycles_per_item` is the number of clock cycles each data item
/// occupies (1 for combinational/pipelined/parallel designs, the
/// operand width for add-and-shift sequential designs). Inputs are
/// held stable for that many cycles.
///
/// The first `warmup` items are simulated but not counted (they flush
/// `X` state and pipeline bubbles). For the plane engines
/// ([`Engine::BitParallel`] and its 256/512-lane variants), `items`
/// and `warmup` count *per-lane* items: the report covers
/// `lanes × items` measured items for the cost of one zero-delay pass.
///
/// # Errors
///
/// [`SimError`] from the timed engines: an invalid library delay at
/// construction, or an oscillating netlist during simulation. The
/// zero-delay engines cannot fail.
///
/// # Panics
///
/// Panics if the netlist has no `a`/`b` input buses.
pub fn measure_activity(
    netlist: &Netlist,
    library: &Library,
    engine: Engine,
    items: u64,
    cycles_per_item: u32,
    warmup: u64,
    seed: u64,
) -> Result<ActivityReport, SimError> {
    // Resolve the buses once; widths and the reset flag derive from
    // the same resolution.
    let buses = Buses::resolve(netlist);
    let a_w = buses.a.len() as u32;
    let b_w = buses.b.len() as u32;
    assert!(
        a_w > 0 && b_w > 0,
        "activity measurement requires a/b input buses"
    );
    let cells = netlist.logic_cell_count();
    let has_rst = !buses.rst.is_empty();
    if has_rst {
        assert!(warmup >= 2, "designs with a reset need warmup >= 2 items");
    }
    match engine {
        Engine::Timed => {
            let mut sim = TimedSim::new(netlist, library)?;
            run(
                Driver::Scalar {
                    sim: &mut sim,
                    stim: StimulusGen::new(seed, a_w, b_w),
                    buses,
                },
                cells,
                items,
                cycles_per_item,
                warmup,
                has_rst,
            )
        }
        Engine::TimedScalar => {
            let mut sim = ScalarTimedSim::new(netlist, library)?;
            run(
                Driver::Scalar {
                    sim: &mut sim,
                    stim: StimulusGen::new(seed, a_w, b_w),
                    buses,
                },
                cells,
                items,
                cycles_per_item,
                warmup,
                has_rst,
            )
        }
        Engine::ZeroDelay => {
            let mut sim = ZeroDelaySim::new(netlist);
            run(
                Driver::Scalar {
                    sim: &mut sim,
                    stim: StimulusGen::new(seed, a_w, b_w),
                    buses,
                },
                cells,
                items,
                cycles_per_item,
                warmup,
                has_rst,
            )
        }
        Engine::BitParallel => run(
            lanes_driver::<1>(netlist, buses, seed, a_w, b_w),
            cells,
            items,
            cycles_per_item,
            warmup,
            has_rst,
        ),
        Engine::BitParallel256 => run(
            lanes_driver::<4>(netlist, buses, seed, a_w, b_w),
            cells,
            items,
            cycles_per_item,
            warmup,
            has_rst,
        ),
        Engine::BitParallel512 => run(
            lanes_driver::<8>(netlist, buses, seed, a_w, b_w),
            cells,
            items,
            cycles_per_item,
            warmup,
            has_rst,
        ),
    }
}

/// The measurement protocol, shared by every engine: warm-up items are
/// simulated but fall outside the counting window, designs with a
/// `rst` bus get it pulsed for the first item only, and each item's
/// operands are held for `cycles_per_item` clock cycles.
fn run(
    mut driver: Driver<'_, '_>,
    cells: usize,
    items: u64,
    cycles_per_item: u32,
    warmup: u64,
    has_rst: bool,
) -> Result<ActivityReport, SimError> {
    let mut window_start = 0u64;
    for item in 0..(warmup + items) {
        if item == warmup {
            window_start = driver.transitions();
        }
        if has_rst {
            driver.set_rst(item == 0);
        }
        driver.apply_operands();
        for _ in 0..cycles_per_item.max(1) {
            driver.advance()?;
        }
    }
    let transitions = driver.transitions() - window_start;
    let measured = items * driver.lanes();
    Ok(ActivityReport {
        activity: transitions as f64 / (measured as f64 * cells as f64),
        transitions,
        items: measured,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    /// 2-bit combinational adder-ish circuit with a/b buses.
    fn small_design() -> Netlist {
        let mut b = NetlistBuilder::new("small");
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let s0 = b.add_cell(CellKind::Xor2, &[a0, b0]);
        let c0 = b.add_cell(CellKind::And2, &[a0, b0]);
        let s1 = b.add_cell(CellKind::Xor3, &[a1, b1, c0]);
        let c1 = b.add_cell(CellKind::Maj3, &[a1, b1, c0]);
        b.add_output("p0", s0);
        b.add_output("p1", s1);
        b.add_output("p2", c1);
        b.build().unwrap()
    }

    fn measure(
        nl: &Netlist,
        engine: Engine,
        items: u64,
        cpi: u32,
        warm: u64,
        seed: u64,
    ) -> ActivityReport {
        measure_activity(nl, &Library::cmos13(), engine, items, cpi, warm, seed)
            .expect("cmos13 delays are valid and the design cannot oscillate")
    }

    #[test]
    fn activity_in_plausible_range() {
        let nl = small_design();
        let r = measure(&nl, Engine::Timed, 200, 1, 4, 42);
        assert!(r.activity > 0.1 && r.activity < 2.0, "a = {}", r.activity);
        assert_eq!(r.cells, 4);
        assert_eq!(r.items, 200);
    }

    #[test]
    fn timed_activity_at_least_zero_delay() {
        // Glitches can only add transitions.
        let nl = small_design();
        let t = measure(&nl, Engine::Timed, 300, 1, 4, 7);
        let z = measure(&nl, Engine::ZeroDelay, 300, 1, 4, 7);
        assert!(
            t.activity >= z.activity - 1e-12,
            "timed {} < zero-delay {}",
            t.activity,
            z.activity
        );
    }

    #[test]
    fn wheel_and_scalar_timed_engines_are_bit_identical() {
        let nl = small_design();
        let wheel = measure(&nl, Engine::Timed, 250, 1, 3, 99);
        let scalar = measure(&nl, Engine::TimedScalar, 250, 1, 3, 99);
        assert_eq!(wheel, scalar);
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = small_design();
        for engine in [
            Engine::Timed,
            Engine::TimedScalar,
            Engine::ZeroDelay,
            Engine::BitParallel,
            Engine::BitParallel256,
            Engine::BitParallel512,
        ] {
            let r1 = measure(&nl, engine, 100, 1, 2, 123);
            let r2 = measure(&nl, engine, 100, 1, 2, 123);
            assert_eq!(r1, r2, "{engine:?}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let nl = small_design();
        let r1 = measure(&nl, Engine::Timed, 100, 1, 2, 1);
        let r2 = measure(&nl, Engine::Timed, 100, 1, 2, 2);
        assert_ne!(r1.transitions, r2.transitions);
    }

    #[test]
    fn holding_inputs_for_more_cycles_keeps_combinational_quiet() {
        // For a purely combinational design, extra hold cycles add no
        // transitions: activity per item is unchanged.
        let nl = small_design();
        let r1 = measure(&nl, Engine::Timed, 150, 1, 2, 9);
        let r4 = measure(&nl, Engine::Timed, 150, 4, 2, 9);
        assert!((r1.activity - r4.activity).abs() < 1e-12);
    }

    #[test]
    fn invalid_library_delays_surface_as_errors() {
        let nl = small_design();
        let lib = Library::with_uniform_delay(f64::NAN);
        for engine in [Engine::Timed, Engine::TimedScalar] {
            let err = measure_activity(&nl, &lib, engine, 10, 1, 2, 1).unwrap_err();
            assert!(matches!(err, SimError::InvalidDelay { .. }), "{engine:?}");
        }
        // The delay-free engines ignore the library's delay profile.
        for engine in [
            Engine::ZeroDelay,
            Engine::BitParallel,
            Engine::BitParallel256,
            Engine::BitParallel512,
        ] {
            assert!(measure_activity(&nl, &lib, engine, 10, 1, 2, 1).is_ok());
        }
    }

    #[test]
    fn combine_renormalises_over_the_joint_window() {
        let nl = small_design();
        let a = measure(&nl, Engine::Timed, 40, 1, 2, 5);
        let b = measure(&nl, Engine::Timed, 60, 1, 2, 6);
        let c = ActivityReport::combine(&[a, b]);
        assert_eq!(c.transitions, a.transitions + b.transitions);
        assert_eq!(c.items, 100);
        assert_eq!(c.cells, a.cells);
        let expect = (a.transitions + b.transitions) as f64 / (100.0 * a.cells as f64);
        assert_eq!(c.activity.to_bits(), expect.to_bits());
    }

    #[test]
    #[should_panic(expected = "different netlists")]
    fn combine_rejects_mixed_netlists() {
        let nl = small_design();
        let a = measure(&nl, Engine::ZeroDelay, 5, 1, 2, 5);
        let bad = ActivityReport {
            cells: a.cells + 1,
            ..a
        };
        let _ = ActivityReport::combine(&[a, bad]);
    }

    #[test]
    fn bit_parallel_equals_sum_of_64_scalar_runs() {
        // The headline contract: transitions of one BitParallel run ==
        // the sum over 64 ZeroDelay runs seeded with the lane seeds.
        let nl = small_design();
        let bp = measure(&nl, Engine::BitParallel, 50, 1, 3, 99);
        let scalar_sum: u64 = (0..LANES as u32)
            .map(|lane| measure(&nl, Engine::ZeroDelay, 50, 1, 3, lane_seed(99, lane)).transitions)
            .sum();
        assert_eq!(bp.transitions, scalar_sum);
        assert_eq!(bp.items, 50 * LANES as u64);
    }

    #[test]
    fn wide_measurements_sum_the_lane_seeded_scalar_runs() {
        // The same headline contract at 256 and 512 lanes, at equal
        // per-lane item counts.
        let nl = small_design();
        for (engine, lanes) in [
            (Engine::BitParallel256, 256u32),
            (Engine::BitParallel512, 512),
        ] {
            let wide = measure(&nl, engine, 10, 1, 2, 99);
            let scalar_sum: u64 = (0..lanes)
                .map(|lane| {
                    measure(&nl, Engine::ZeroDelay, 10, 1, 2, lane_seed(99, lane)).transitions
                })
                .sum();
            assert_eq!(wide.transitions, scalar_sum, "{engine:?}");
            assert_eq!(wide.items, 10 * u64::from(lanes));
        }
    }

    #[test]
    fn bit_parallel_lane0_sees_the_scalar_stream() {
        // Same seed => the scalar ZeroDelay measurement is exactly the
        // lane-0 slice of the BitParallel measurement.
        let nl = small_design();
        let zd = measure(&nl, Engine::ZeroDelay, 80, 1, 2, 7);
        let lane0 = measure(&nl, Engine::ZeroDelay, 80, 1, 2, lane_seed(7, 0));
        assert_eq!(zd, lane0);
    }

    #[test]
    fn bit_parallel_activity_is_a_per_item_average() {
        // Sanity: activity stays in the scalar neighbourhood — it is
        // normalised per measured item, not inflated 64×.
        let nl = small_design();
        let zd = measure(&nl, Engine::ZeroDelay, 400, 1, 2, 21);
        let bp = measure(&nl, Engine::BitParallel, 50, 1, 2, 21);
        assert!(
            (zd.activity - bp.activity).abs() < 0.15,
            "zd {} vs bp {}",
            zd.activity,
            bp.activity
        );
    }
}
