//! The wide-plane bit-parallel zero-delay engine (64/256/512 lanes).
//!
//! Packs `64 * W` *independent* stimulus streams into one
//! [`WideWord<W>`] per net — `W` chunks of `u64`, one stimulus lane per
//! bit — and evaluates every cell's three-valued semantics with plain
//! bitwise ops, so one topological pass advances an entire plane of
//! simulations at once. All operations are lane-local (no carries, no
//! shifts across lanes or chunks), so lane `L` of a [`WidePlaneSim`]
//! run is *bit-identical* — values and transition counts — to a scalar
//! [`crate::ZeroDelaySim`] run driven with lane `L`'s stimulus, and a
//! `W`-chunk run is bit-identical to `W` independent 64-lane runs.
//! `tests/sim_differential.rs` locks both equivalences down over random
//! netlists and the full multiplier suite.
//!
//! Supported plane widths are `W ∈ {1, 4, 8}` (64, 256 and 512 lanes),
//! exposed as the [`BitParallelSim`], [`BitParallelSim256`] and
//! [`BitParallelSim512`] aliases and the matching
//! [`crate::Engine::BitParallel`]/[`crate::Engine::BitParallel256`]/
//! [`crate::Engine::BitParallel512`] measurement engines. Nothing in
//! the core is specific to those widths — the eval loops are written
//! over `[u64; W]` chunks so the compiler unrolls and vectorizes them
//! per width — but the set is closed on purpose: every width is locked
//! by the differential suite before an engine name exposes it (see
//! CONTRIBUTING.md for the checklist).
//!
//! Three-valued logic uses a two-plane encoding per net word:
//!
//! | plane | lane bit means |
//! |-------|----------------|
//! | `ones` | value is known `1` |
//! | `unk`  | value is `X` |
//!
//! with the invariant `ones & unk == 0` in every chunk; a lane with
//! neither bit set is a known `0`. Controlling values still force known
//! outputs through `X` exactly as [`optpower_netlist::Logic`] does
//! (e.g. `And2(0, X) = 0`), because the known-zero and known-one planes
//! are computed independently and `X` is whatever neither plane claims.
//!
//! # Hot-path structure
//!
//! The step loop runs over a prebuilt *program*: one flat [`Op`] per
//! combinational cell (kind, net indices, logic flag) in topological
//! order, so the hot path never touches the netlist's cell table. Each
//! op evaluates chunk-by-chunk in a fixed-length loop that keeps only a
//! handful of `u64`s live — no whole-plane temporaries to spill at
//! `W = 8` — and fuses evaluation, toggle detection and the in-place
//! store into one pass. The total transition count is accumulated
//! eagerly from toggle-mask popcounts; *per-lane* counts are opt-in
//! ([`WidePlaneSim::track_lane_transitions`]) and use bit-plane ripple
//! counters ([`LaneCounters`]) so recording a 64-lane toggle mask costs
//! a few bitwise ops instead of one pass per set bit.

use optpower_netlist::{CellId, CellKind, Logic, Netlist};

use crate::bus::{bus_inputs, bus_outputs, decode_bus, transpose64};

/// Number of independent stimulus lanes per plane chunk (the bit width
/// of one `u64` plane word, and the lane count of the default
/// [`BitParallelSim`] engine).
pub const LANES: usize = 64;

/// One 64-lane three-valued chunk (two-plane encoding, see module
/// docs). [`WideWord`] is `W` of these evaluated in lock-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Chunk {
    /// Lanes whose value is a known `1`.
    ones: u64,
    /// Lanes whose value is `X` (disjoint from `ones`).
    unk: u64,
}

impl Chunk {
    /// Lanes whose value is a known `0`.
    #[inline]
    fn zeros(self) -> u64 {
        !self.ones & !self.unk
    }

    /// Builds a chunk from per-lane known/one planes, normalising the
    /// `ones & unk == 0` invariant.
    #[inline]
    fn from_planes(ones: u64, zeros: u64) -> Chunk {
        debug_assert_eq!(ones & zeros, 0, "a lane cannot be both 0 and 1");
        Chunk {
            ones,
            unk: !(ones | zeros),
        }
    }
}

#[inline]
fn inv(a: Chunk) -> Chunk {
    Chunk::from_planes(a.zeros(), a.ones)
}

#[inline]
fn and2(a: Chunk, b: Chunk) -> Chunk {
    Chunk::from_planes(a.ones & b.ones, a.zeros() | b.zeros())
}

#[inline]
fn or2(a: Chunk, b: Chunk) -> Chunk {
    Chunk::from_planes(a.ones | b.ones, a.zeros() & b.zeros())
}

#[inline]
fn xor2(a: Chunk, b: Chunk) -> Chunk {
    let unk = a.unk | b.unk;
    Chunk {
        ones: (a.ones ^ b.ones) & !unk,
        unk,
    }
}

#[inline]
fn xor3(a: Chunk, b: Chunk, c: Chunk) -> Chunk {
    let unk = a.unk | b.unk | c.unk;
    Chunk {
        ones: (a.ones ^ b.ones ^ c.ones) & !unk,
        unk,
    }
}

#[inline]
fn maj3(a: Chunk, b: Chunk, c: Chunk) -> Chunk {
    // Known as soon as two inputs agree on a value.
    let ones = (a.ones & b.ones) | (a.ones & c.ones) | (b.ones & c.ones);
    let zeros = (a.zeros() & b.zeros()) | (a.zeros() & c.zeros()) | (b.zeros() & c.zeros());
    Chunk::from_planes(ones, zeros)
}

#[inline]
fn mux2(a: Chunk, b: Chunk, sel: Chunk) -> Chunk {
    // sel=0 -> a, sel=1 -> b; X select known only where the data
    // inputs agree on a known value.
    let ones = (sel.zeros() & a.ones) | (sel.ones & b.ones) | (sel.unk & a.ones & b.ones);
    let zeros =
        (sel.zeros() & a.zeros()) | (sel.ones & b.zeros()) | (sel.unk & a.zeros() & b.zeros());
    Chunk::from_planes(ones, zeros)
}

/// One `64 * W`-lane three-valued word: `W` two-plane [`u64`] chunks
/// evaluated in lock-step. The chunk loops are fixed-length over
/// `[u64; W]`, so each width monomorphizes into straight-line
/// unrolled (and, where the target allows, vectorized) plane code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WideWord<const W: usize> {
    /// Per-chunk lanes whose value is a known `1`.
    ones: [u64; W],
    /// Per-chunk lanes whose value is `X` (disjoint from `ones`).
    unk: [u64; W],
}

impl<const W: usize> WideWord<W> {
    /// All lanes `X`.
    const X: Self = Self {
        ones: [0; W],
        unk: [u64::MAX; W],
    };

    /// All lanes the same known value.
    #[inline]
    fn splat(value: bool) -> Self {
        Self {
            ones: [if value { u64::MAX } else { 0 }; W],
            unk: [0; W],
        }
    }

    /// The 64-lane chunk holding lanes `64i .. 64i+64`.
    #[inline]
    fn chunk(&self, i: usize) -> Chunk {
        Chunk {
            ones: self.ones[i],
            unk: self.unk[i],
        }
    }

    #[cfg(test)]
    #[inline]
    fn set_chunk(&mut self, i: usize, c: Chunk) {
        self.ones[i] = c.ones;
        self.unk[i] = c.unk;
    }

    /// Applies a chunk-wise unary op across the whole plane.
    #[cfg(test)]
    #[inline]
    fn map(self, f: impl Fn(Chunk) -> Chunk) -> Self {
        let mut out = Self::X;
        for i in 0..W {
            out.set_chunk(i, f(self.chunk(i)));
        }
        out
    }

    /// Applies a chunk-wise binary op across the whole plane.
    #[cfg(test)]
    #[inline]
    fn zip2(a: Self, b: Self, f: impl Fn(Chunk, Chunk) -> Chunk) -> Self {
        let mut out = Self::X;
        for i in 0..W {
            out.set_chunk(i, f(a.chunk(i), b.chunk(i)));
        }
        out
    }

    /// Applies a chunk-wise ternary op across the whole plane.
    #[cfg(test)]
    #[inline]
    fn zip3(a: Self, b: Self, c: Self, f: impl Fn(Chunk, Chunk, Chunk) -> Chunk) -> Self {
        let mut out = Self::X;
        for i in 0..W {
            out.set_chunk(i, f(a.chunk(i), b.chunk(i), c.chunk(i)));
        }
        out
    }

    /// The three-valued value of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64 * W` — a masked shift would silently
    /// alias `lane % 64` otherwise.
    #[inline]
    fn lane(&self, lane: usize) -> Logic {
        assert!(
            lane < LANES * W,
            "lane {lane} out of range (0..{})",
            LANES * W
        );
        let (c, bit) = (lane / LANES, lane % LANES);
        if (self.unk[c] >> bit) & 1 == 1 {
            Logic::X
        } else if (self.ones[c] >> bit) & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

/// Reference lane-parallel [`CellKind::eval`]: each output lane equals
/// the scalar three-valued evaluation of that lane's inputs. The
/// production step loop uses the fused per-op stores built on the same
/// chunk functions; this whole-word form exists so the exhaustive unit
/// test below can sweep every kind and input combination directly.
#[cfg(test)]
#[inline]
fn eval_wide<const W: usize>(kind: CellKind, ins: &[WideWord<W>]) -> WideWord<W> {
    match kind {
        CellKind::Input => WideWord::X,
        CellKind::Const0 => WideWord::splat(false),
        CellKind::Const1 => WideWord::splat(true),
        CellKind::Output | CellKind::Buf | CellKind::Dff => ins[0],
        CellKind::Inv => ins[0].map(inv),
        CellKind::And2 => WideWord::zip2(ins[0], ins[1], and2),
        CellKind::Nand2 => WideWord::zip2(ins[0], ins[1], |a, b| inv(and2(a, b))),
        CellKind::Or2 => WideWord::zip2(ins[0], ins[1], or2),
        CellKind::Nor2 => WideWord::zip2(ins[0], ins[1], |a, b| inv(or2(a, b))),
        CellKind::Xor2 => WideWord::zip2(ins[0], ins[1], xor2),
        CellKind::Xnor2 => WideWord::zip2(ins[0], ins[1], |a, b| inv(xor2(a, b))),
        CellKind::Xor3 => WideWord::zip3(ins[0], ins[1], ins[2], xor3),
        CellKind::Maj3 => WideWord::zip3(ins[0], ins[1], ins[2], maj3),
        CellKind::Mux2 => WideWord::zip3(ins[0], ins[1], ins[2], mux2),
    }
}

/// One combinational cell of the prebuilt step program: everything the
/// hot loop needs, flat and 4-byte indexed, so evaluating a cell never
/// touches the netlist's cell table.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: CellKind,
    /// Counted in the transition totals (the paper's `N`).
    logic: bool,
    /// Output net index into the packed value vector.
    out: u32,
    /// Input net indices; slots beyond the cell's arity are unused.
    ins: [u32; 3],
}

/// Number of bit-plane counter levels: pending per-lane counts up to
/// `2^COUNT_PLANES - 1` before a flush into the `u64` totals.
const COUNT_PLANES: usize = 16;

/// Per-lane transition counters in bit-plane form: `planes[k][c]` bit
/// `b` is bit `k` of the pending count of lane `64c + b`. Adding one
/// 64-lane toggle mask is a ripple-carry increment over the planes —
/// a few bitwise ops, terminating as soon as the carry dies out —
/// instead of one loop iteration per set mask bit. Pending counts are
/// flushed into plain `u64` totals every `2^COUNT_PLANES - 1` adds and
/// on demand.
#[derive(Debug, Clone)]
struct LaneCounters<const W: usize> {
    planes: [[u64; W]; COUNT_PLANES],
    /// Adds since the last flush; bounds every pending lane count.
    pending: u32,
    /// Flushed per-lane totals, `64 * W` entries.
    totals: Vec<u64>,
}

impl<const W: usize> LaneCounters<W> {
    fn new() -> Self {
        Self {
            planes: [[0; W]; COUNT_PLANES],
            pending: 0,
            totals: vec![0; LANES * W],
        }
    }

    /// Adds one toggle mask per chunk to the pending per-lane counts.
    #[inline]
    fn add(&mut self, masks: &[u64; W]) {
        if self.pending == (1 << COUNT_PLANES) - 1 {
            self.flush();
        }
        self.pending += 1;
        let mut carry = *masks;
        for plane in &mut self.planes {
            let mut alive = 0u64;
            for c in 0..W {
                let t = plane[c] & carry[c];
                plane[c] ^= carry[c];
                carry[c] = t;
                alive |= t;
            }
            if alive == 0 {
                return;
            }
        }
        debug_assert!(
            carry.iter().all(|&c| c == 0),
            "pending counts are flushed before they can overflow"
        );
    }

    /// Folds the pending bit-plane counts into the `u64` totals.
    fn flush(&mut self) {
        for c in 0..W {
            for b in 0..LANES {
                let mut v = 0u64;
                for (k, plane) in self.planes.iter().enumerate() {
                    v |= ((plane[c] >> b) & 1) << k;
                }
                self.totals[c * LANES + b] += v;
            }
        }
        self.planes = [[0; W]; COUNT_PLANES];
        self.pending = 0;
    }

    fn reset(&mut self) {
        self.planes = [[0; W]; COUNT_PLANES];
        self.pending = 0;
        self.totals.fill(0);
    }
}

/// `64 * W`-lane per-cycle functional simulator: the step semantics of
/// [`crate::ZeroDelaySim`] (DFFs clock simultaneously, then one
/// topological pass; glitch-free), applied to a whole plane of
/// independent stimulus lanes at once. `W = 1` is the classic 64-lane
/// [`BitParallelSim`]; `W = 4`/`W = 8` widen the plane to 256/512
/// lanes per pass, amortising the per-cell bookkeeping (topological
/// walk, operand gathering, change detection) over 4–8× more streams.
///
/// Transition counting matches the scalar engine per lane: a lane
/// counts one transition when a logic cell's output toggles between two
/// *known* values; `X`↔known changes are free, exactly as in
/// [`crate::ZeroDelaySim`]. The summed total
/// ([`WidePlaneSim::logic_transitions`]) is always maintained;
/// *per-lane* counts cost extra bookkeeping on every write and are
/// opt-in via [`WidePlaneSim::track_lane_transitions`].
///
/// # Examples
///
/// ```
/// use optpower_netlist::{CellKind, NetlistBuilder};
/// use optpower_sim::BitParallelSim;
///
/// let mut b = NetlistBuilder::new("inv");
/// let x = b.add_input("x0");
/// let y = b.add_cell(CellKind::Inv, &[x]);
/// b.add_output("y0", y);
/// let nl = b.build()?;
///
/// let mut sim = BitParallelSim::new(&nl);
/// // One operand value per lane: lane 0 drives 0, lane 1 drives 1,
/// // the rest drive 0.
/// let mut lanes = vec![0u64; sim.lanes()];
/// lanes[1] = 1;
/// sim.set_input_bits_lanes("x", &lanes);
/// sim.step();
/// assert_eq!(sim.output_bits_lane("y", 0), Some(1));
/// assert_eq!(sim.output_bits_lane("y", 1), Some(0));
/// # Ok::<(), optpower_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WidePlaneSim<'n, const W: usize = 1> {
    netlist: &'n Netlist,
    /// Current packed value of every net.
    values: Vec<WideWord<W>>,
    /// Pending primary-input words applied at the next step.
    input_next: Vec<WideWord<W>>,
    /// `true` for cells counted in the transition totals (logic cells);
    /// used by the DFF/input store paths (combinational cells carry
    /// the flag in their [`Op`]).
    is_logic: Vec<bool>,
    /// The combinational step program, in topological order.
    ops: Vec<Op>,
    /// The sequential cells, precomputed so [`WidePlaneSim::step`]
    /// does not rescan the whole cell list every cycle.
    dffs: Vec<CellId>,
    /// Reusable buffer for the pre-edge D words (two-phase capture).
    dff_scratch: Vec<WideWord<W>>,
    /// Total known↔known transitions across all lanes (logic cells).
    transitions_total: u64,
    /// Per-lane counters, present only after
    /// [`WidePlaneSim::track_lane_transitions`].
    lane_track: Option<LaneCounters<W>>,
    cycle: u64,
}

/// The classic 64-lane engine: [`WidePlaneSim`] at one chunk.
pub type BitParallelSim<'n> = WidePlaneSim<'n, 1>;

/// The 256-lane engine: [`WidePlaneSim`] at four chunks.
pub type BitParallelSim256<'n> = WidePlaneSim<'n, 4>;

/// The 512-lane engine: [`WidePlaneSim`] at eight chunks.
pub type BitParallelSim512<'n> = WidePlaneSim<'n, 8>;

impl<'n, const W: usize> WidePlaneSim<'n, W> {
    /// Lanes simulated per step: `64 * W`.
    pub const LANE_COUNT: usize = LANES * W;

    /// Creates a simulator with every net at `X` in every lane.
    pub fn new(netlist: &'n Netlist) -> Self {
        let is_logic = netlist.logic_mask();
        let dffs: Vec<CellId> = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(i, _)| CellId(i as u32))
            .collect();
        let dff_scratch = Vec::with_capacity(dffs.len());
        // Compile the combinational core into the flat step program.
        // Inputs and DFFs update through their own phases of `step`.
        let ops: Vec<Op> = netlist
            .topo_order()
            .iter()
            .map(|&id| (id, netlist.cell(id)))
            .filter(|(_, c)| !matches!(c.kind, CellKind::Input | CellKind::Dff))
            .map(|(id, cell)| {
                let mut ins = [0u32; 3];
                for (slot, net) in ins.iter_mut().zip(cell.inputs.iter()) {
                    *slot = net.index() as u32;
                }
                Op {
                    kind: cell.kind,
                    logic: is_logic[id.index()],
                    out: cell.output.index() as u32,
                    ins,
                }
            })
            .collect();
        Self {
            netlist,
            values: vec![WideWord::X; netlist.nets().len()],
            input_next: vec![WideWord::X; netlist.cells().len()],
            is_logic,
            ops,
            dffs,
            dff_scratch,
            transitions_total: 0,
            lane_track: None,
            cycle: 0,
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of [`WidePlaneSim::step`]s executed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of independent stimulus lanes (`64 * W`).
    pub fn lanes(&self) -> usize {
        Self::LANE_COUNT
    }

    /// Enables per-lane transition counting
    /// ([`WidePlaneSim::lane_logic_transitions`]). Off by default: the
    /// summed total is free, but per-lane counts put extra bookkeeping
    /// on every logic-cell write, which throughput-only consumers (the
    /// activity measurements) never read.
    ///
    /// # Panics
    ///
    /// Panics if any step has already executed — counts recorded from
    /// mid-run would silently miss the earlier cycles.
    pub fn track_lane_transitions(&mut self) {
        assert_eq!(
            self.cycle, 0,
            "per-lane tracking must be enabled before the first step"
        );
        self.lane_track.get_or_insert_with(LaneCounters::new);
    }

    /// Sets one primary input to per-lane levels given as a plane of
    /// `W` chunk words: bit `b` of `ones[c]` drives lane `64c + b` to
    /// `1`, otherwise to `0` (takes effect at the next step).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell or
    /// `ones.len() != W`.
    pub fn set_input_plane(&mut self, input: CellId, ones: &[u64]) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{input:?} is not a primary input"
        );
        assert_eq!(ones.len(), W, "plane must carry {W} chunk words");
        let mut w = WideWord::splat(false);
        w.ones.copy_from_slice(ones);
        self.input_next[input.index()] = w;
    }

    /// Sets one primary input to the same known level in every lane
    /// (shared control signals such as `rst`).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell.
    pub fn set_input_all_lanes(&mut self, input: CellId, value: bool) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{input:?} is not a primary input"
        );
        self.input_next[input.index()] = WideWord::splat(value);
    }

    /// Sets an entire input bus `{prefix}{0..}` from per-lane
    /// integers: lane `L` of the bus is driven with `values[L]`.
    ///
    /// # Panics
    ///
    /// Panics if no `{prefix}0` input exists or `values.len()` is not
    /// the lane count (`64 * W`).
    pub fn set_input_bits_lanes(&mut self, prefix: &str, values: &[u64]) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        assert_eq!(
            values.len(),
            LANES * W,
            "one value per lane (0..{})",
            LANES * W
        );
        // Pivot lane values into per-bit plane words one 64-lane chunk
        // at a time ([`transpose64`]); the bus reads its rows from the
        // transposed blocks.
        let mut planes = [[0u64; W]; LANES];
        let mut block = [0u64; LANES];
        for c in 0..W {
            block.copy_from_slice(&values[c * LANES..(c + 1) * LANES]);
            transpose64(&mut block);
            for (bit, plane) in planes.iter_mut().enumerate() {
                plane[c] = block[bit];
            }
        }
        for (bit, id) in bus.into_iter().enumerate() {
            self.set_input_plane(id, &planes[bit]);
        }
    }

    /// Sets an entire input bus to the *same* integer in every lane
    /// (shared control signals such as `rst`).
    pub fn set_input_bits_all_lanes(&mut self, prefix: &str, value: u64) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (bit, id) in bus.into_iter().enumerate() {
            self.set_input_all_lanes(id, (value >> bit) & 1 == 1);
        }
    }

    /// Current value of a net in one lane.
    pub fn value(&self, net: optpower_netlist::NetId, lane: usize) -> Logic {
        self.values[net.index()].lane(lane)
    }

    /// Decodes an output bus `{prefix}{0..}` in one lane; `None` if any
    /// bit of that lane is `X`.
    pub fn output_bits_lane(&self, prefix: &str, lane: usize) -> Option<u64> {
        let bus = bus_outputs(self.netlist, prefix);
        if bus.is_empty() {
            return None;
        }
        let bits: Vec<Logic> = bus
            .iter()
            .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()].lane(lane))
            .collect();
        decode_bus(&bits)
    }

    /// Advances one clock cycle in every lane: clocks every DFF
    /// (capturing the D word settled in the previous cycle), applies
    /// pending inputs, then evaluates the combinational core once in
    /// topological order — the exact step semantics of
    /// [`crate::ZeroDelaySim`], a whole plane of lanes at a time.
    pub fn step(&mut self) {
        // 1. Sample every D pin first (pre-edge words; DFF-to-DFF
        // chains must not see this cycle's Q), then update all Q
        // outputs. The scratch buffer is reused across steps.
        let dffs = core::mem::take(&mut self.dffs);
        let mut scratch = core::mem::take(&mut self.dff_scratch);
        scratch.clear();
        scratch.extend(
            dffs.iter()
                .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()]),
        );
        for (&id, &q) in dffs.iter().zip(scratch.iter()) {
            let net = self.netlist.cell(id).output.index();
            let logic = self.is_logic[id.index()];
            self.store(net, logic, q.ones, q.unk);
        }
        self.dffs = dffs;
        self.dff_scratch = scratch;
        // 2. Apply primary inputs.
        for &id in self.netlist.primary_inputs() {
            let w = self.input_next[id.index()];
            let net = self.netlist.cell(id).output.index();
            let logic = self.is_logic[id.index()];
            self.store(net, logic, w.ones, w.unk);
        }
        // 3. One pass over the prebuilt combinational program.
        let ops = core::mem::take(&mut self.ops);
        for op in &ops {
            self.exec(op);
        }
        self.ops = ops;
        self.cycle += 1;
    }

    /// Evaluates one op of the step program with the fused
    /// per-chunk store.
    #[inline(always)]
    fn exec(&mut self, op: &Op) {
        match op.kind {
            // Excluded from the program at build time.
            CellKind::Input | CellKind::Dff => {}
            CellKind::Const0 => {
                let w = WideWord::splat(false);
                self.store(op.out as usize, op.logic, w.ones, w.unk);
            }
            CellKind::Const1 => {
                let w = WideWord::splat(true);
                self.store(op.out as usize, op.logic, w.ones, w.unk);
            }
            CellKind::Output | CellKind::Buf => self.store1(op, |a| a),
            CellKind::Inv => self.store1(op, inv),
            CellKind::And2 => self.store2(op, and2),
            CellKind::Nand2 => self.store2(op, |a, b| inv(and2(a, b))),
            CellKind::Or2 => self.store2(op, or2),
            CellKind::Nor2 => self.store2(op, |a, b| inv(or2(a, b))),
            CellKind::Xor2 => self.store2(op, xor2),
            CellKind::Xnor2 => self.store2(op, |a, b| inv(xor2(a, b))),
            CellKind::Xor3 => self.store3(op, xor3),
            CellKind::Maj3 => self.store3(op, maj3),
            CellKind::Mux2 => self.store3(op, mux2),
        }
    }

    /// Applies a unary chunk op and stores the result.
    #[inline(always)]
    fn store1(&mut self, op: &Op, f: impl Fn(Chunk) -> Chunk) {
        let a = self.values[op.ins[0] as usize];
        let (mut ones, mut unk) = ([0u64; W], [0u64; W]);
        for c in 0..W {
            let r = f(a.chunk(c));
            ones[c] = r.ones;
            unk[c] = r.unk;
        }
        self.store(op.out as usize, op.logic, ones, unk);
    }

    /// Applies a binary chunk op and stores the result.
    #[inline(always)]
    fn store2(&mut self, op: &Op, f: impl Fn(Chunk, Chunk) -> Chunk) {
        let a = self.values[op.ins[0] as usize];
        let b = self.values[op.ins[1] as usize];
        let (mut ones, mut unk) = ([0u64; W], [0u64; W]);
        for c in 0..W {
            let r = f(a.chunk(c), b.chunk(c));
            ones[c] = r.ones;
            unk[c] = r.unk;
        }
        self.store(op.out as usize, op.logic, ones, unk);
    }

    /// Applies a ternary chunk op and stores the result.
    #[inline(always)]
    fn store3(&mut self, op: &Op, f: impl Fn(Chunk, Chunk, Chunk) -> Chunk) {
        let a = self.values[op.ins[0] as usize];
        let b = self.values[op.ins[1] as usize];
        let c3 = self.values[op.ins[2] as usize];
        let (mut ones, mut unk) = ([0u64; W], [0u64; W]);
        for c in 0..W {
            let r = f(a.chunk(c), b.chunk(c), c3.chunk(c));
            ones[c] = r.ones;
            unk[c] = r.unk;
        }
        self.store(op.out as usize, op.logic, ones, unk);
    }

    /// Stores a computed plane word into its output net, counting
    /// known↔known toggles for logic cells. One fused pass: toggle
    /// masks fall out of the old/new diff, the total advances by their
    /// popcounts, and per-lane counters (when tracking) absorb the
    /// masks via the bit-plane ripple.
    #[inline(always)]
    fn store(&mut self, net: usize, logic: bool, ones: [u64; W], unk: [u64; W]) {
        let old = self.values[net];
        if logic {
            let mut toggled = [0u64; W];
            let mut any = 0u64;
            for c in 0..W {
                // A lane transitions when both the old and new values
                // are known and the level actually toggles. `ones` is
                // 0 on X lanes (invariant), so the XOR is exact.
                let t = (old.ones[c] ^ ones[c]) & !(old.unk[c] | unk[c]);
                toggled[c] = t;
                any |= t;
            }
            if any != 0 {
                let mut delta = 0u64;
                for &t in &toggled {
                    delta += u64::from(t.count_ones());
                }
                self.transitions_total += delta;
                if let Some(track) = &mut self.lane_track {
                    track.add(&toggled);
                }
            }
        }
        self.values[net] = WideWord { ones, unk };
    }

    /// Total known↔known transitions of logic-cell outputs, summed over
    /// all lanes.
    pub fn logic_transitions(&self) -> u64 {
        self.transitions_total
    }

    /// Per-lane known↔known transitions of logic-cell outputs, one
    /// entry per lane (`64 * W` entries): entry `L` equals
    /// [`crate::ZeroDelaySim::logic_transitions`] of a scalar run
    /// driven with lane `L`'s stimulus. Takes `&mut self` to fold the
    /// pending bit-plane counters into the totals first.
    ///
    /// # Panics
    ///
    /// Panics unless [`WidePlaneSim::track_lane_transitions`] was
    /// called before the first step.
    pub fn lane_logic_transitions(&mut self) -> &[u64] {
        let track = self
            .lane_track
            .as_mut()
            .expect("per-lane counts need track_lane_transitions() before stepping");
        track.flush();
        &track.totals
    }

    /// Resets the transition counters (e.g. after warm-up cycles).
    pub fn reset_transitions(&mut self) {
        self.transitions_total = 0;
        if let Some(track) = &mut self.lane_track {
            track.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroDelaySim;
    use optpower_netlist::NetlistBuilder;
    use Logic::{One, Zero, X};

    /// Every 1/2/3-input kind, every three-valued input combination:
    /// each lane of `eval_wide` equals the scalar `CellKind::eval`, at
    /// one, four and eight chunks.
    #[test]
    fn eval_wide_matches_scalar_eval_exhaustively() {
        fn check<const W: usize>(lanes: &[usize]) {
            let levels = [Zero, One, X];
            let word_of = |v: Logic, lane: usize| -> WideWord<W> {
                let mut w = WideWord::splat(false);
                match v {
                    Zero => {}
                    One => w.ones[lane / LANES] |= 1 << (lane % LANES),
                    X => w.unk[lane / LANES] |= 1 << (lane % LANES),
                }
                w
            };
            for kind in CellKind::ALL {
                let arity = kind.arity();
                let combos = 3usize.pow(arity as u32);
                for combo in 0..combos {
                    let mut scalar_ins = Vec::with_capacity(arity);
                    let mut c = combo;
                    for _ in 0..arity {
                        scalar_ins.push(levels[c % 3]);
                        c /= 3;
                    }
                    // Spread the same combo over a few lanes, including
                    // the top lane, to catch shift/sign mistakes.
                    for &lane in lanes {
                        let words: Vec<WideWord<W>> =
                            scalar_ins.iter().map(|&v| word_of(v, lane)).collect();
                        let got = eval_wide(kind, &words).lane(lane);
                        let want = kind.eval(&scalar_ins);
                        // Input cells: scalar eval returns X; eval_wide
                        // is never called on them in `step`, but keep
                        // parity.
                        assert_eq!(got, want, "{kind} {scalar_ins:?} lane {lane} W={W}");
                        // Off-combo lanes saw all-known-0 inputs: they
                        // must hold the all-zero evaluation, not leak
                        // lane data.
                        if lane != 0 {
                            let zero_ins = vec![Zero; arity];
                            assert_eq!(
                                eval_wide(kind, &words).lane(0),
                                kind.eval(&zero_ins),
                                "{kind} cross-lane leak W={W}"
                            );
                        }
                    }
                }
            }
        }
        check::<1>(&[0, 1, 31, 63]);
        check::<4>(&[0, 64, 130, 255]);
        check::<8>(&[0, 63, 64, 320, 511]);
    }

    #[test]
    fn word_invariant_holds_after_eval() {
        let mut a = WideWord::<4>::splat(false);
        a.ones = [0b0110, 0, 0b0110, u64::MAX >> 1];
        a.unk = [0b1000, u64::MAX, 0b1000, 0];
        let mut b = WideWord::<4>::splat(false);
        b.ones = [0b0101, 0b0101, 0, 1 << 63];
        b.unk = [0b0010, 0b0010, u64::MAX, 0];
        for kind in [
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
        ] {
            let w = eval_wide(kind, &[a, b]);
            for c in 0..4 {
                assert_eq!(w.ones[c] & w.unk[c], 0, "{kind} chunk {c}");
            }
        }
    }

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.add_input("a0");
        let x = b.add_input("b0");
        let c = b.add_input("c0");
        let s = b.add_cell(CellKind::Xor3, &[a, x, c]);
        let co = b.add_cell(CellKind::Maj3, &[a, x, c]);
        b.add_output("p0", s);
        b.add_output("p1", co);
        b.build().unwrap()
    }

    #[test]
    fn all_eight_adder_rows_in_one_step() {
        // The classic bit-parallel win: the whole truth table at once —
        // and at 512 lanes, in the top chunk too.
        fn check<const W: usize>(base: usize) {
            let nl = full_adder();
            let mut sim = WidePlaneSim::<W>::new(&nl);
            let mut a = vec![0u64; sim.lanes()];
            let mut b = vec![0u64; sim.lanes()];
            let mut c = vec![0u64; sim.lanes()];
            for row in 0..8 {
                let lane = base + row;
                a[lane] = (row as u64) & 1;
                b[lane] = (row as u64 >> 1) & 1;
                c[lane] = (row as u64 >> 2) & 1;
            }
            sim.set_input_bits_lanes("a", &a);
            sim.set_input_bits_lanes("b", &b);
            sim.set_input_bits_lanes("c", &c);
            sim.step();
            for row in 0..8 {
                let lane = base + row;
                let sum = a[lane] + b[lane] + c[lane];
                assert_eq!(
                    sim.output_bits_lane("p", lane),
                    Some(sum),
                    "lane {lane} W={W}"
                );
            }
        }
        check::<1>(0);
        check::<4>(190);
        check::<8>(504);
    }

    #[test]
    fn outputs_are_x_before_inputs_arrive() {
        let nl = full_adder();
        let mut sim = BitParallelSim::new(&nl);
        sim.step();
        assert_eq!(sim.output_bits_lane("p", 0), None);
        assert_eq!(sim.output_bits_lane("p", 63), None);
        let mut wide = BitParallelSim512::new(&nl);
        wide.step();
        assert_eq!(wide.output_bits_lane("p", 0), None);
        assert_eq!(wide.output_bits_lane("p", 511), None);
    }

    #[test]
    fn dff_delays_by_one_cycle_in_every_lane() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[d]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let mut sim = BitParallelSim256::new(&nl);
        let mut lanes = vec![0u64; sim.lanes()];
        lanes[5] = 1;
        lanes[63] = 1;
        lanes[255] = 1;
        sim.set_input_bits_lanes("a", &lanes);
        sim.step(); // q captured pre-edge X
        assert_eq!(sim.output_bits_lane("p", 5), None);
        sim.step(); // q captures the lane values
        assert_eq!(sim.output_bits_lane("p", 5), Some(1));
        assert_eq!(sim.output_bits_lane("p", 0), Some(0));
        assert_eq!(sim.output_bits_lane("p", 63), Some(1));
        assert_eq!(sim.output_bits_lane("p", 255), Some(1));
        assert_eq!(sim.output_bits_lane("p", 254), Some(0));
    }

    #[test]
    fn lane_transitions_match_scalar_runs() {
        // Drive 4 lanes (spread across chunks) with different streams;
        // each lane's count must equal a dedicated scalar run, and the
        // total must be the sum.
        let nl = full_adder();
        let streams: [[u64; 5]; 4] = [
            [0b000, 0b111, 0b000, 0b111, 0b000],
            [0b001, 0b001, 0b001, 0b001, 0b001],
            [0b010, 0b101, 0b011, 0b100, 0b110],
            [0b111, 0b000, 0b101, 0b010, 0b111],
        ];
        let driven = [0usize, 63, 64, 255];
        let mut bp = BitParallelSim256::new(&nl);
        bp.track_lane_transitions();
        for t in 0..streams[0].len() {
            let mut a = vec![0u64; bp.lanes()];
            let mut b = vec![0u64; bp.lanes()];
            let mut c = vec![0u64; bp.lanes()];
            for (&lane, s) in driven.iter().zip(streams.iter()) {
                a[lane] = s[t] & 1;
                b[lane] = (s[t] >> 1) & 1;
                c[lane] = (s[t] >> 2) & 1;
            }
            bp.set_input_bits_lanes("a", &a);
            bp.set_input_bits_lanes("b", &b);
            bp.set_input_bits_lanes("c", &c);
            bp.step();
        }
        let mut sum = 0;
        for (&lane, s) in driven.iter().zip(streams.iter()) {
            let mut zd = ZeroDelaySim::new(&nl);
            for &v in s {
                zd.set_input_bits("a", v & 1);
                zd.set_input_bits("b", (v >> 1) & 1);
                zd.set_input_bits("c", (v >> 2) & 1);
                zd.step();
            }
            assert_eq!(
                bp.lane_logic_transitions()[lane],
                zd.logic_transitions(),
                "lane {lane}"
            );
            sum += zd.logic_transitions();
        }
        // Undriven lanes (constant all-zero inputs) still settle once
        // from X, which is free in both engines.
        let mut zd = ZeroDelaySim::new(&nl);
        for _ in 0..streams[0].len() {
            zd.set_input_bits("a", 0);
            zd.set_input_bits("b", 0);
            zd.set_input_bits("c", 0);
            zd.step();
        }
        sum += (bp.lanes() as u64 - 4) * zd.logic_transitions();
        assert_eq!(bp.logic_transitions(), sum);
    }

    #[test]
    fn reset_transitions_clears_all_lanes() {
        let nl = full_adder();
        let mut sim = BitParallelSim512::new(&nl);
        sim.track_lane_transitions();
        let mut a = vec![0u64; sim.lanes()];
        sim.set_input_bits_lanes("a", &a);
        sim.set_input_bits_lanes("b", &a);
        sim.set_input_bits_lanes("c", &a);
        sim.step();
        a.iter_mut().for_each(|v| *v = 1);
        sim.set_input_bits_lanes("a", &a);
        sim.step();
        assert!(sim.logic_transitions() > 0);
        assert!(sim.lane_logic_transitions().iter().any(|&t| t > 0));
        sim.reset_transitions();
        assert_eq!(sim.logic_transitions(), 0);
        assert_eq!(sim.lane_logic_transitions().len(), 512);
        assert!(sim.lane_logic_transitions().iter().all(|&t| t == 0));
    }

    #[test]
    #[should_panic(expected = "track_lane_transitions")]
    fn lane_counts_without_tracking_panic() {
        let nl = full_adder();
        let mut sim = BitParallelSim::new(&nl);
        sim.step();
        let _ = sim.lane_logic_transitions();
    }

    #[test]
    #[should_panic(expected = "before the first step")]
    fn tracking_after_stepping_panics() {
        let nl = full_adder();
        let mut sim = BitParallelSim::new(&nl);
        sim.step();
        sim.track_lane_transitions();
    }

    /// The bit-plane counters survive internal flushes: force many more
    /// adds than one flush window and compare against a plain sum.
    #[test]
    fn lane_counters_flush_exactly() {
        let mut counters = LaneCounters::<2>::new();
        let mut expect = vec![0u64; 128];
        // Deterministic mask pattern with varying density; > 2 flush
        // windows worth of adds.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..(3 << COUNT_PLANES) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64);
            let masks = [state, state.rotate_left(17) & state.rotate_right(9)];
            for (c, &m) in masks.iter().enumerate() {
                for b in 0..64 {
                    expect[c * 64 + b] += (m >> b) & 1;
                }
            }
            counters.add(&masks);
        }
        counters.flush();
        assert_eq!(counters.totals, expect);
    }

    #[test]
    fn shared_control_bus_drives_every_lane() {
        let mut b = NetlistBuilder::new("mux");
        let rst = b.add_input("rst0");
        let one = b.add_cell(CellKind::Const1, &[]);
        let zero = b.add_cell(CellKind::Const0, &[]);
        let m = b.add_cell(CellKind::Mux2, &[one, zero, rst]);
        b.add_output("p0", m);
        let nl = b.build().unwrap();
        let mut sim = WidePlaneSim::<8>::new(&nl);
        sim.set_input_bits_all_lanes("rst", 1);
        sim.step();
        for lane in [0usize, 17, 63, 64, 300, 511] {
            assert_eq!(sim.output_bits_lane("p", lane), Some(0), "lane {lane}");
        }
        sim.set_input_bits_all_lanes("rst", 0);
        sim.step();
        for lane in [0usize, 17, 63, 64, 300, 511] {
            assert_eq!(sim.output_bits_lane("p", lane), Some(1), "lane {lane}");
        }
    }

    /// The wide planes are bit-identical to independent chunked 64-lane
    /// runs: chunk `c` of a `W`-chunk run equals a dedicated
    /// [`BitParallelSim`] run driven with lanes `64c..64c+64`.
    #[test]
    fn wide_plane_equals_chunked_64_lane_runs() {
        fn check<const W: usize>() {
            let nl = full_adder();
            let mut wide = WidePlaneSim::<W>::new(&nl);
            wide.track_lane_transitions();
            let mut narrow: Vec<BitParallelSim> = (0..W)
                .map(|_| {
                    let mut sim = BitParallelSim::new(&nl);
                    sim.track_lane_transitions();
                    sim
                })
                .collect();
            // A deterministic per-lane stream with lane-dependent
            // phase, exercising every chunk differently.
            for t in 0..6u64 {
                let values: Vec<u64> = (0..LANES * W)
                    .map(|lane| (lane as u64).wrapping_mul(7).wrapping_add(t * 3) & 0b111)
                    .collect();
                for (bus, shift) in [("a", 0u64), ("b", 1), ("c", 2)] {
                    let bits: Vec<u64> = values.iter().map(|v| (v >> shift) & 1).collect();
                    wide.set_input_bits_lanes(bus, &bits);
                    for (c, sim) in narrow.iter_mut().enumerate() {
                        sim.set_input_bits_lanes(bus, &bits[c * LANES..(c + 1) * LANES]);
                    }
                }
                wide.step();
                narrow.iter_mut().for_each(BitParallelSim::step);
            }
            let mut total = 0u64;
            for (c, sim) in narrow.iter_mut().enumerate() {
                for lane in 0..LANES {
                    assert_eq!(
                        wide.output_bits_lane("p", c * LANES + lane),
                        sim.output_bits_lane("p", lane),
                        "chunk {c} lane {lane} W={W}"
                    );
                    assert_eq!(
                        wide.lane_logic_transitions()[c * LANES + lane],
                        sim.lane_logic_transitions()[lane],
                        "chunk {c} lane {lane} W={W}"
                    );
                }
                total += sim.logic_transitions();
            }
            assert_eq!(wide.logic_transitions(), total, "W={W}");
        }
        check::<4>();
        check::<8>();
    }
}
