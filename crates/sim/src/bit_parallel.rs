//! The 64-lane bit-parallel zero-delay engine.
//!
//! Packs 64 *independent* stimulus streams into one `u64` word per net
//! and evaluates every cell's three-valued semantics with plain bitwise
//! ops, so one topological pass advances 64 simulations at once. All
//! operations are lane-local (no carries, no shifts across lanes), so
//! lane `L` of a [`BitParallelSim`] run is *bit-identical* — values and
//! transition counts — to a scalar [`crate::ZeroDelaySim`] run driven
//! with lane `L`'s stimulus. `tests/sim_differential.rs` locks this
//! equivalence down over random netlists and the full multiplier suite.
//!
//! Three-valued logic uses a two-plane encoding per net word:
//!
//! | plane | lane bit means |
//! |-------|----------------|
//! | `ones` | value is known `1` |
//! | `unk`  | value is `X` |
//!
//! with the invariant `ones & unk == 0`; a lane with neither bit set is
//! a known `0`. Controlling values still force known outputs through
//! `X` exactly as [`optpower_netlist::Logic`] does (e.g. `And2(0, X) =
//! 0`), because the known-zero and known-one planes are computed
//! independently and `X` is whatever neither plane claims.

use optpower_netlist::{CellId, CellKind, Logic, Netlist};

use crate::bus::{bus_inputs, bus_outputs, decode_bus};

/// Number of independent stimulus lanes packed into each net word.
pub const LANES: usize = 64;

/// One 64-lane three-valued word (two-plane encoding, see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Word {
    /// Lanes whose value is a known `1`.
    ones: u64,
    /// Lanes whose value is `X` (disjoint from `ones`).
    unk: u64,
}

impl Word {
    /// All lanes `X`.
    const X: Word = Word {
        ones: 0,
        unk: u64::MAX,
    };

    /// All lanes the same known value.
    fn splat(value: bool) -> Word {
        Word {
            ones: if value { u64::MAX } else { 0 },
            unk: 0,
        }
    }

    /// Lanes whose value is a known `0`.
    #[inline]
    fn zeros(self) -> u64 {
        !self.ones & !self.unk
    }

    /// The three-valued value of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` — a masked shift would silently alias
    /// `lane % 64` otherwise.
    #[inline]
    fn lane(self, lane: usize) -> Logic {
        assert!(lane < LANES, "lane {lane} out of range (0..{LANES})");
        if (self.unk >> lane) & 1 == 1 {
            Logic::X
        } else if (self.ones >> lane) & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Builds a word from per-lane known/one planes, normalising the
    /// `ones & unk == 0` invariant.
    #[inline]
    fn from_planes(ones: u64, zeros: u64) -> Word {
        debug_assert_eq!(ones & zeros, 0, "a lane cannot be both 0 and 1");
        Word {
            ones,
            unk: !(ones | zeros),
        }
    }
}

/// Lane-parallel [`CellKind::eval`]: each output lane equals the scalar
/// three-valued evaluation of that lane's inputs.
#[inline]
fn eval_word(kind: CellKind, ins: &[Word]) -> Word {
    match kind {
        CellKind::Input => Word::X,
        CellKind::Const0 => Word::splat(false),
        CellKind::Const1 => Word::splat(true),
        CellKind::Output | CellKind::Buf | CellKind::Dff => ins[0],
        CellKind::Inv => Word::from_planes(ins[0].zeros(), ins[0].ones),
        CellKind::And2 => and2(ins[0], ins[1]),
        CellKind::Nand2 => {
            let w = and2(ins[0], ins[1]);
            Word::from_planes(w.zeros(), w.ones)
        }
        CellKind::Or2 => or2(ins[0], ins[1]),
        CellKind::Nor2 => {
            let w = or2(ins[0], ins[1]);
            Word::from_planes(w.zeros(), w.ones)
        }
        CellKind::Xor2 => xor2(ins[0], ins[1]),
        CellKind::Xnor2 => {
            let w = xor2(ins[0], ins[1]);
            Word::from_planes(w.zeros(), w.ones)
        }
        CellKind::Xor3 => {
            let unk = ins[0].unk | ins[1].unk | ins[2].unk;
            Word {
                ones: (ins[0].ones ^ ins[1].ones ^ ins[2].ones) & !unk,
                unk,
            }
        }
        CellKind::Maj3 => {
            let (a, b, c) = (ins[0], ins[1], ins[2]);
            // Known as soon as two inputs agree on a value.
            let ones = (a.ones & b.ones) | (a.ones & c.ones) | (b.ones & c.ones);
            let zeros = (a.zeros() & b.zeros()) | (a.zeros() & c.zeros()) | (b.zeros() & c.zeros());
            Word::from_planes(ones, zeros)
        }
        CellKind::Mux2 => {
            let (a, b, sel) = (ins[0], ins[1], ins[2]);
            // sel=0 -> a, sel=1 -> b; X select known only where the
            // data inputs agree on a known value.
            let ones = (sel.zeros() & a.ones) | (sel.ones & b.ones) | (sel.unk & a.ones & b.ones);
            let zeros = (sel.zeros() & a.zeros())
                | (sel.ones & b.zeros())
                | (sel.unk & a.zeros() & b.zeros());
            Word::from_planes(ones, zeros)
        }
    }
}

#[inline]
fn and2(a: Word, b: Word) -> Word {
    Word::from_planes(a.ones & b.ones, a.zeros() | b.zeros())
}

#[inline]
fn or2(a: Word, b: Word) -> Word {
    Word::from_planes(a.ones | b.ones, a.zeros() & b.zeros())
}

#[inline]
fn xor2(a: Word, b: Word) -> Word {
    let unk = a.unk | b.unk;
    Word {
        ones: (a.ones ^ b.ones) & !unk,
        unk,
    }
}

/// 64-lane per-cycle functional simulator: the step semantics of
/// [`crate::ZeroDelaySim`] (DFFs clock simultaneously, then one
/// topological pass; glitch-free), applied to 64 independent stimulus
/// lanes at once for ~64× stimulus throughput per core.
///
/// Transition counting matches the scalar engine per lane: a lane
/// counts one transition when a logic cell's output toggles between two
/// *known* values; `X`↔known changes are free, exactly as in
/// [`crate::ZeroDelaySim`].
///
/// # Examples
///
/// ```
/// use optpower_netlist::{CellKind, NetlistBuilder};
/// use optpower_sim::BitParallelSim;
///
/// let mut b = NetlistBuilder::new("inv");
/// let x = b.add_input("x0");
/// let y = b.add_cell(CellKind::Inv, &[x]);
/// b.add_output("y0", y);
/// let nl = b.build()?;
///
/// let mut sim = BitParallelSim::new(&nl);
/// // Lane 0 drives 0, lane 1 drives 1, the rest drive 0.
/// let mut lanes = [0u64; 64];
/// lanes[1] = 1;
/// sim.set_input_bits_lanes("x", &lanes);
/// sim.step();
/// assert_eq!(sim.output_bits_lane("y", 0), Some(1));
/// assert_eq!(sim.output_bits_lane("y", 1), Some(0));
/// # Ok::<(), optpower_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitParallelSim<'n> {
    netlist: &'n Netlist,
    /// Current packed value of every net.
    values: Vec<Word>,
    /// Pending primary-input words applied at the next step.
    input_next: Vec<Word>,
    /// `true` for cells counted in the transition totals (logic cells).
    is_logic: Vec<bool>,
    /// The sequential cells, precomputed so [`BitParallelSim::step`]
    /// does not rescan the whole cell list every cycle.
    dffs: Vec<CellId>,
    /// Reusable buffer for the pre-edge D words (two-phase capture).
    dff_scratch: Vec<Word>,
    /// Total known↔known transitions across all lanes (logic cells).
    transitions_total: u64,
    /// Per-lane known↔known transition counts (logic cells).
    lane_transitions: [u64; LANES],
    cycle: u64,
}

impl<'n> BitParallelSim<'n> {
    /// Creates a simulator with every net at `X` in every lane.
    pub fn new(netlist: &'n Netlist) -> Self {
        let dffs: Vec<CellId> = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(i, _)| CellId(i as u32))
            .collect();
        let dff_scratch = Vec::with_capacity(dffs.len());
        Self {
            netlist,
            values: vec![Word::X; netlist.nets().len()],
            input_next: vec![Word::X; netlist.cells().len()],
            is_logic: netlist.logic_mask(),
            dffs,
            dff_scratch,
            transitions_total: 0,
            lane_transitions: [0; LANES],
            cycle: 0,
        }
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of [`BitParallelSim::step`]s executed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets one primary input to per-lane levels given as two planes:
    /// bit `L` of `ones` drives lane `L` to `1`, otherwise to `0`
    /// (takes effect at the next step).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary-input cell.
    pub fn set_input_lanes(&mut self, input: CellId, ones: u64) {
        assert!(
            self.netlist.cell(input).kind == CellKind::Input,
            "{input:?} is not a primary input"
        );
        self.input_next[input.index()] = Word { ones, unk: 0 };
    }

    /// Sets an entire input bus `{prefix}{0..}` from 64 per-lane
    /// integers: lane `L` of the bus is driven with `values[L]`.
    ///
    /// # Panics
    ///
    /// Panics if no `{prefix}0` input exists.
    pub fn set_input_bits_lanes(&mut self, prefix: &str, values: &[u64; LANES]) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (bit, id) in bus.into_iter().enumerate() {
            // Transpose: gather bit `bit` of every lane's value.
            let mut ones = 0u64;
            for (lane, &v) in values.iter().enumerate() {
                ones |= ((v >> bit) & 1) << lane;
            }
            self.set_input_lanes(id, ones);
        }
    }

    /// Sets an entire input bus to the *same* integer in every lane
    /// (shared control signals such as `rst`).
    pub fn set_input_bits_all_lanes(&mut self, prefix: &str, value: u64) {
        let bus = bus_inputs(self.netlist, prefix);
        assert!(!bus.is_empty(), "no input bus named {prefix}*");
        for (bit, id) in bus.into_iter().enumerate() {
            let ones = if (value >> bit) & 1 == 1 { u64::MAX } else { 0 };
            self.set_input_lanes(id, ones);
        }
    }

    /// Current value of a net in one lane.
    pub fn value(&self, net: optpower_netlist::NetId, lane: usize) -> Logic {
        self.values[net.index()].lane(lane)
    }

    /// Decodes an output bus `{prefix}{0..}` in one lane; `None` if any
    /// bit of that lane is `X`.
    pub fn output_bits_lane(&self, prefix: &str, lane: usize) -> Option<u64> {
        let bus = bus_outputs(self.netlist, prefix);
        if bus.is_empty() {
            return None;
        }
        let bits: Vec<Logic> = bus
            .iter()
            .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()].lane(lane))
            .collect();
        decode_bus(&bits)
    }

    /// Advances one clock cycle in every lane: clocks every DFF
    /// (capturing the D word settled in the previous cycle), applies
    /// pending inputs, then evaluates the combinational core once in
    /// topological order — the exact step semantics of
    /// [`crate::ZeroDelaySim`], 64 lanes at a time.
    pub fn step(&mut self) {
        // 1. Sample every D pin first (pre-edge words; DFF-to-DFF
        // chains must not see this cycle's Q), then update all Q
        // outputs. The scratch buffer is reused across steps.
        let dffs = core::mem::take(&mut self.dffs);
        let mut scratch = core::mem::take(&mut self.dff_scratch);
        scratch.clear();
        scratch.extend(
            dffs.iter()
                .map(|&id| self.values[self.netlist.cell(id).inputs[0].index()]),
        );
        for (&id, &q) in dffs.iter().zip(scratch.iter()) {
            self.write(id, q);
        }
        self.dffs = dffs;
        self.dff_scratch = scratch;
        // 2. Apply primary inputs.
        let netlist = self.netlist;
        for &id in netlist.primary_inputs() {
            let w = self.input_next[id.index()];
            self.write(id, w);
        }
        // 3. One topological pass over the combinational core.
        let mut ins = [Word::X; 3];
        for &id in self.netlist.topo_order() {
            let cell = self.netlist.cell(id);
            match cell.kind {
                CellKind::Input | CellKind::Dff => {} // already updated
                _ => {
                    for (slot, net) in ins.iter_mut().zip(cell.inputs.iter()) {
                        *slot = self.values[net.index()];
                    }
                    let out = eval_word(cell.kind, &ins[..cell.inputs.len()]);
                    self.write(id, out);
                }
            }
        }
        self.cycle += 1;
    }

    #[inline]
    fn write(&mut self, id: CellId, value: Word) {
        let net = self.netlist.cell(id).output;
        let old = self.values[net.index()];
        if old != value {
            if self.is_logic[id.index()] {
                // A lane transitions when both the old and new values
                // are known and the level actually toggles. `ones` is 0
                // on X lanes (invariant), so the XOR is exact.
                let mut toggled = (old.ones ^ value.ones) & !old.unk & !value.unk;
                self.transitions_total += u64::from(toggled.count_ones());
                while toggled != 0 {
                    let lane = toggled.trailing_zeros() as usize;
                    self.lane_transitions[lane] += 1;
                    toggled &= toggled - 1;
                }
            }
            self.values[net.index()] = value;
        }
    }

    /// Total known↔known transitions of logic-cell outputs, summed over
    /// all 64 lanes.
    pub fn logic_transitions(&self) -> u64 {
        self.transitions_total
    }

    /// Per-lane known↔known transitions of logic-cell outputs: entry
    /// `L` equals [`crate::ZeroDelaySim::logic_transitions`] of a
    /// scalar run driven with lane `L`'s stimulus.
    pub fn lane_logic_transitions(&self) -> &[u64; LANES] {
        &self.lane_transitions
    }

    /// Resets the transition counters (e.g. after warm-up cycles).
    pub fn reset_transitions(&mut self) {
        self.transitions_total = 0;
        self.lane_transitions = [0; LANES];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroDelaySim;
    use optpower_netlist::NetlistBuilder;
    use Logic::{One, Zero, X};

    /// Every 1/2/3-input kind, every three-valued input combination:
    /// each lane of `eval_word` equals the scalar `CellKind::eval`.
    #[test]
    fn eval_word_matches_scalar_eval_exhaustively() {
        let levels = [Zero, One, X];
        let word_of = |v: Logic, lane: usize| -> Word {
            let mut w = Word::splat(false);
            match v {
                Zero => {}
                One => w.ones |= 1 << lane,
                X => w.unk |= 1 << lane,
            }
            w
        };
        for kind in CellKind::ALL {
            let arity = kind.arity();
            let combos = 3usize.pow(arity as u32);
            for combo in 0..combos {
                let mut scalar_ins = Vec::with_capacity(arity);
                let mut c = combo;
                for _ in 0..arity {
                    scalar_ins.push(levels[c % 3]);
                    c /= 3;
                }
                // Spread the same combo over a few lanes, including the
                // top lane, to catch shift/sign mistakes.
                for lane in [0usize, 1, 31, 63] {
                    let words: Vec<Word> = scalar_ins.iter().map(|&v| word_of(v, lane)).collect();
                    let got = eval_word(kind, &words).lane(lane);
                    let want = kind.eval(&scalar_ins);
                    // Input cells: scalar eval returns X; eval_word is
                    // never called on them in `step`, but keep parity.
                    assert_eq!(got, want, "{kind} {scalar_ins:?} lane {lane}");
                    // Off-combo lanes saw all-known-0 inputs: they must
                    // hold the all-zero evaluation, not leak lane data.
                    if lane != 0 {
                        let zero_ins = vec![Zero; arity];
                        assert_eq!(
                            eval_word(kind, &words).lane(0),
                            kind.eval(&zero_ins),
                            "{kind} cross-lane leak"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn word_invariant_holds_after_eval() {
        let a = Word {
            ones: 0b0110,
            unk: 0b1000,
        };
        let b = Word {
            ones: 0b0101,
            unk: 0b0010,
        };
        for kind in [
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
        ] {
            let w = eval_word(kind, &[a, b]);
            assert_eq!(w.ones & w.unk, 0, "{kind}");
        }
    }

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.add_input("a0");
        let x = b.add_input("b0");
        let c = b.add_input("c0");
        let s = b.add_cell(CellKind::Xor3, &[a, x, c]);
        let co = b.add_cell(CellKind::Maj3, &[a, x, c]);
        b.add_output("p0", s);
        b.add_output("p1", co);
        b.build().unwrap()
    }

    #[test]
    fn all_eight_adder_rows_in_one_step() {
        // The classic bit-parallel win: the whole truth table at once.
        let nl = full_adder();
        let mut sim = BitParallelSim::new(&nl);
        let mut a = [0u64; LANES];
        let mut b = [0u64; LANES];
        let mut c = [0u64; LANES];
        for lane in 0..8 {
            a[lane] = (lane as u64) & 1;
            b[lane] = (lane as u64 >> 1) & 1;
            c[lane] = (lane as u64 >> 2) & 1;
        }
        sim.set_input_bits_lanes("a", &a);
        sim.set_input_bits_lanes("b", &b);
        sim.set_input_bits_lanes("c", &c);
        sim.step();
        for lane in 0..8 {
            let sum = a[lane] + b[lane] + c[lane];
            assert_eq!(sim.output_bits_lane("p", lane), Some(sum), "lane {lane}");
        }
    }

    #[test]
    fn outputs_are_x_before_inputs_arrive() {
        let nl = full_adder();
        let mut sim = BitParallelSim::new(&nl);
        sim.step();
        assert_eq!(sim.output_bits_lane("p", 0), None);
        assert_eq!(sim.output_bits_lane("p", 63), None);
    }

    #[test]
    fn dff_delays_by_one_cycle_in_every_lane() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.add_input("a0");
        let q = b.add_cell(CellKind::Dff, &[d]);
        b.add_output("p0", q);
        let nl = b.build().unwrap();
        let mut sim = BitParallelSim::new(&nl);
        let mut lanes = [0u64; LANES];
        lanes[5] = 1;
        lanes[63] = 1;
        sim.set_input_bits_lanes("a", &lanes);
        sim.step(); // q captured pre-edge X
        assert_eq!(sim.output_bits_lane("p", 5), None);
        sim.step(); // q captures the lane values
        assert_eq!(sim.output_bits_lane("p", 5), Some(1));
        assert_eq!(sim.output_bits_lane("p", 0), Some(0));
        assert_eq!(sim.output_bits_lane("p", 63), Some(1));
    }

    #[test]
    fn lane_transitions_match_scalar_runs() {
        // Drive 4 lanes with different streams; each lane's count must
        // equal a dedicated scalar run, and the total must be the sum.
        let nl = full_adder();
        let streams: [[u64; 5]; 4] = [
            [0b000, 0b111, 0b000, 0b111, 0b000],
            [0b001, 0b001, 0b001, 0b001, 0b001],
            [0b010, 0b101, 0b011, 0b100, 0b110],
            [0b111, 0b000, 0b101, 0b010, 0b111],
        ];
        let mut bp = BitParallelSim::new(&nl);
        for t in 0..streams[0].len() {
            let mut a = [0u64; LANES];
            let mut b = [0u64; LANES];
            let mut c = [0u64; LANES];
            for (lane, s) in streams.iter().enumerate() {
                a[lane] = s[t] & 1;
                b[lane] = (s[t] >> 1) & 1;
                c[lane] = (s[t] >> 2) & 1;
            }
            bp.set_input_bits_lanes("a", &a);
            bp.set_input_bits_lanes("b", &b);
            bp.set_input_bits_lanes("c", &c);
            bp.step();
        }
        let mut sum = 0;
        for (lane, s) in streams.iter().enumerate() {
            let mut zd = ZeroDelaySim::new(&nl);
            for &v in s {
                zd.set_input_bits("a", v & 1);
                zd.set_input_bits("b", (v >> 1) & 1);
                zd.set_input_bits("c", (v >> 2) & 1);
                zd.step();
            }
            assert_eq!(
                bp.lane_logic_transitions()[lane],
                zd.logic_transitions(),
                "lane {lane}"
            );
            sum += zd.logic_transitions();
        }
        // Undriven lanes (constant all-zero inputs) still settle once
        // from X, which is free in both engines.
        let mut zd = ZeroDelaySim::new(&nl);
        for _ in 0..streams[0].len() {
            zd.set_input_bits("a", 0);
            zd.set_input_bits("b", 0);
            zd.set_input_bits("c", 0);
            zd.step();
        }
        sum += (LANES as u64 - 4) * zd.logic_transitions();
        assert_eq!(bp.logic_transitions(), sum);
    }

    #[test]
    fn reset_transitions_clears_all_lanes() {
        let nl = full_adder();
        let mut sim = BitParallelSim::new(&nl);
        let mut a = [0u64; LANES];
        sim.set_input_bits_lanes("a", &a);
        sim.set_input_bits_lanes("b", &a);
        sim.set_input_bits_lanes("c", &a);
        sim.step();
        a.iter_mut().for_each(|v| *v = 1);
        sim.set_input_bits_lanes("a", &a);
        sim.step();
        assert!(sim.logic_transitions() > 0);
        sim.reset_transitions();
        assert_eq!(sim.logic_transitions(), 0);
        assert!(sim.lane_logic_transitions().iter().all(|&t| t == 0));
    }

    #[test]
    fn shared_control_bus_drives_every_lane() {
        let mut b = NetlistBuilder::new("mux");
        let rst = b.add_input("rst0");
        let one = b.add_cell(CellKind::Const1, &[]);
        let zero = b.add_cell(CellKind::Const0, &[]);
        let m = b.add_cell(CellKind::Mux2, &[one, zero, rst]);
        b.add_output("p0", m);
        let nl = b.build().unwrap();
        let mut sim = BitParallelSim::new(&nl);
        sim.set_input_bits_all_lanes("rst", 1);
        sim.step();
        for lane in [0usize, 17, 63] {
            assert_eq!(sim.output_bits_lane("p", lane), Some(0), "lane {lane}");
        }
        sim.set_input_bits_all_lanes("rst", 0);
        sim.step();
        for lane in [0usize, 17, 63] {
            assert_eq!(sim.output_bits_lane("p", lane), Some(1), "lane {lane}");
        }
    }
}
