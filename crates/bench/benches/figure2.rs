//! Regenerates Figure 2 (the Vdd^{1/alpha} linearisation) and benches
//! the least-squares fit.

use criterion::{criterion_group, criterion_main, Criterion};
use optpower_tech::Linearization;

fn bench_figure2(c: &mut Criterion) {
    let fig = optpower_report::figure2(601).expect("figure2 reproduces");
    println!("\n{}", optpower_report::render_figure2(&fig));

    c.bench_function("figure2/fit_alpha_1_5", |b| {
        b.iter(|| optpower_report::figure2(601).expect("reproduces"))
    });
    c.bench_function("figure2/linearization_fit_only", |b| {
        b.iter(|| Linearization::fit_paper_range(1.86).expect("fits"))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figure2
}
criterion_main!(benches);
