//! Runs and benches the ablation studies of DESIGN.md §5.

use criterion::{criterion_group, criterion_main, Criterion};
use optpower_report::ablation;

fn bench_ablations(c: &mut Criterion) {
    let fit = ablation::fit_range_sensitivity(1.86).expect("fits");
    println!("\n{}", ablation::render_fit_ranges(1.86, &fit));
    let opt = ablation::optimizer_ablation().expect("solves");
    println!("{}", ablation::render_optimizer(&opt));
    let glitch = ablation::glitch_ablation(100, 42).expect("measures");
    println!("{}", ablation::render_glitch(&glitch));

    c.bench_function("ablation/fit_range_sensitivity", |b| {
        b.iter(|| ablation::fit_range_sensitivity(1.86).expect("fits"))
    });
    c.bench_function("ablation/optimizer_grid_vs_golden", |b| {
        b.iter(|| ablation::optimizer_ablation().expect("solves"))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablations
}
criterion_main!(benches);
