//! Regenerates the Figures 3/4 structural comparison (horizontal vs
//! diagonal pipelining) and benches netlist generation + STA.

use criterion::{criterion_group, criterion_main, Criterion};
use optpower_mult::{rca_pipelined, PipelineStyle};
use optpower_netlist::Library;
use optpower_sta::TimingAnalysis;

fn bench_figure34(c: &mut Criterion) {
    let fig = optpower_report::figure34(16, 100).expect("figure34 reproduces");
    println!("\n{}", optpower_report::render_figure34(&fig));

    c.bench_function("figure34/generate_hpipe2_16bit", |b| {
        b.iter(|| rca_pipelined(16, 2, PipelineStyle::Horizontal).expect("generates"))
    });
    c.bench_function("figure34/generate_dpipe4_16bit", |b| {
        b.iter(|| rca_pipelined(16, 4, PipelineStyle::Diagonal).expect("generates"))
    });
    let nl = rca_pipelined(16, 4, PipelineStyle::Diagonal).expect("generates");
    let lib = Library::cmos13();
    c.bench_function("figure34/sta_dpipe4_16bit", |b| {
        b.iter(|| TimingAnalysis::analyze(&nl, &lib))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figure34
}
criterion_main!(benches);
