//! Regenerates Table 1 (13 multipliers, LL flavour) and benches the
//! calibrated reproduction path. The rows are printed once so a bench
//! run doubles as the experiment run.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    // Print the reproduction once (the bench's scientific payload).
    let rows = optpower_report::table1().expect("table1 reproduces");
    println!(
        "\n{}",
        optpower_report::render_rows("Table 1 reproduction (paper vs measured)", &rows)
    );
    for r in &rows {
        assert!(
            r.our_err_pct.abs() < 3.5,
            "{} err {}",
            r.name,
            r.our_err_pct
        );
    }

    c.bench_function("table1/full_reproduction_13_rows", |b| {
        b.iter(|| optpower_report::table1().expect("reproduces"))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table1
}
criterion_main!(benches);
