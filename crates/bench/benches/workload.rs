//! The workload API overhead check: driving a sweep through the
//! declarative `JobSpec -> Runtime -> Artifact` path must cost the
//! same as calling the underlying flow directly — the envelope is
//! organisational, not computational.
//!
//! * `workload/direct/table1`   — `table1_parallel` straight;
//! * `workload/runtime/table1`  — the same sweep as a `JobSpec` run by
//!   the runtime (spec parse from JSON included, as a service
//!   front-end would do it);
//! * `workload/runtime/batch3`  — a three-member batch, measuring the
//!   per-job envelope cost;
//! * `workload/serial_core/...` / `workload/parallel/...` — the
//!   pooled Pareto sweep JobSpec at 1 worker vs all cores (tracked in
//!   `BENCH_sweep.json` like every serial/parallel pair).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optpower_explore::Workers;
use optpower_report::table1_parallel;
use optpower_workload::{JobSpec, Runtime};

fn bench_envelope_overhead(c: &mut Criterion) {
    c.bench_function("workload/direct/table1", |b| {
        b.iter(|| black_box(table1_parallel(Workers::Auto).expect("table 1 solves")))
    });
    let spec_json = JobSpec::Table1Sweep.to_json();
    c.bench_function("workload/runtime/table1", |b| {
        b.iter(|| {
            let spec = JobSpec::from_json(black_box(&spec_json)).expect("wire form parses");
            let artifact = Runtime::default().run(&spec).expect("job runs");
            black_box(artifact.payload_json())
        })
    });
    let batch = JobSpec::Batch(vec![
        JobSpec::Table2,
        JobSpec::Figure2 { samples: 64 },
        JobSpec::Table3,
    ]);
    c.bench_function("workload/runtime/batch3", |b| {
        b.iter(|| black_box(Runtime::default().run(&batch).expect("batch runs")))
    });
}

fn bench_pooled_jobspec(c: &mut Criterion) {
    let spec = JobSpec::Pareto { freq_points: 12 };
    c.bench_function("workload/serial_core/pareto_12pts", |b| {
        b.iter(|| {
            black_box(
                Runtime::new(Workers::Fixed(1))
                    .run(&spec)
                    .expect("pareto runs"),
            )
        })
    });
    c.bench_function("workload/parallel/pareto_12pts", |b| {
        b.iter(|| black_box(Runtime::default().run(&spec).expect("pareto runs")))
    });
}

criterion_group!(benches, bench_envelope_overhead, bench_pooled_jobspec);
criterion_main!(benches);
