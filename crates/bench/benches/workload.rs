//! The workload API overhead check: driving a sweep through the
//! declarative `JobSpec -> Runtime -> Artifact` path must cost the
//! same as calling the underlying flow directly — the envelope is
//! organisational, not computational.
//!
//! * `workload/direct/table1`   — `table1_parallel` straight;
//! * `workload/runtime/table1`  — the same sweep as a `JobSpec` run by
//!   the runtime (spec parse from JSON included, as a service
//!   front-end would do it);
//! * `workload/runtime/batch3`  — a three-member batch, measuring the
//!   per-job envelope cost;
//! * `workload/serial_core/...` / `workload/parallel/...` — the
//!   pooled Pareto sweep JobSpec at 1 worker vs all cores (tracked in
//!   `BENCH_sweep.json` like every serial/parallel pair);
//! * `workload/.../dist_overhead_wallace16` — the same single-shard
//!   Wallace16 characterization run locally vs through a loopback
//!   coordinator/worker cluster, gating the wire protocol's overhead
//!   (connect + frame codec + payload re-parse + merge) at <= 10%.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optpower_dist::{spawn, Cluster};
use optpower_explore::Workers;
use optpower_report::table1_parallel;
use optpower_workload::{AbInitioSpec, JobSpec, Runtime};

fn bench_envelope_overhead(c: &mut Criterion) {
    c.bench_function("workload/direct/table1", |b| {
        b.iter(|| black_box(table1_parallel(Workers::Auto).expect("table 1 solves")))
    });
    let spec_json = JobSpec::Table1Sweep { archs: None }.to_json();
    c.bench_function("workload/runtime/table1", |b| {
        b.iter(|| {
            let spec = JobSpec::from_json(black_box(&spec_json)).expect("wire form parses");
            let artifact = Runtime::default().run(&spec).expect("job runs");
            black_box(artifact.payload_json())
        })
    });
    let batch = JobSpec::Batch(vec![
        JobSpec::Table2,
        JobSpec::Figure2 { samples: 64 },
        JobSpec::Table3,
    ]);
    c.bench_function("workload/runtime/batch3", |b| {
        b.iter(|| black_box(Runtime::default().run(&batch).expect("batch runs")))
    });
}

fn bench_pooled_jobspec(c: &mut Criterion) {
    let spec = JobSpec::Pareto { freq_points: 12 };
    c.bench_function("workload/serial_core/pareto_12pts", |b| {
        b.iter(|| {
            black_box(
                Runtime::new(Workers::Fixed(1))
                    .run(&spec)
                    .expect("pareto runs"),
            )
        })
    });
    c.bench_function("workload/parallel/pareto_12pts", |b| {
        b.iter(|| black_box(Runtime::default().run(&spec).expect("pareto runs")))
    });
}

/// The distribution tax: one Wallace16 characterization shard, run
/// locally vs routed through a loopback coordinator/worker pair. A
/// single-arch spec shards to exactly one cell, so both rows do the
/// same serial compute and the gap is pure wire cost — TCP connect,
/// frame codec, payload JSON round-trip and the merge. The
/// `dist_overhead_wallace16` acceptance row (speedup_min >= 0.9 in
/// `parse_bench.py`) keeps that tax at or below ~10%.
fn bench_dist_overhead(c: &mut Criterion) {
    let spec = JobSpec::AbInitio(AbInitioSpec {
        archs: Some(vec!["Wallace".to_string()]),
        items: 384,
        ..AbInitioSpec::default()
    });
    c.bench_function("workload/serial_core/dist_overhead_wallace16", |b| {
        let local = Runtime::new(Workers::Fixed(1));
        b.iter(|| black_box(local.run(&spec).expect("local run")))
    });
    c.bench_function("workload/parallel/dist_overhead_wallace16", |b| {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                spawn("127.0.0.1:0", Runtime::new(Workers::Fixed(1))).expect("bind loopback worker")
            })
            .collect();
        let cluster = Cluster::new(workers.iter().map(|w| w.addr().to_string()).collect())
            .with_workers(Workers::Fixed(1));
        b.iter(|| black_box(cluster.run(&spec).expect("cluster run")));
        drop(workers);
    });
}

criterion_group!(
    benches,
    bench_envelope_overhead,
    bench_pooled_jobspec,
    bench_dist_overhead
);
criterion_main!(benches);
