//! Serial vs parallel design-space sweeps at several grid sizes.
//!
//! Three variants per grid size quantify where the time goes:
//!
//! * `serial_core`  — the pre-existing serial path: one
//!   `optpower::sweep::frequency_sweep` per (tech, arch) pair,
//!   refitting the linearisation at every point;
//! * `engine_1worker` — the exploration engine pinned to one worker:
//!   same work, memoized calibration (isolates the caching win);
//! * `parallel`     — the engine on every available core (adds the
//!   threading win; this is the configuration the CI bench job tracks
//!   in `BENCH_sweep.json`).
//!
//! The equivalence of all three outputs is asserted by
//! `tests/engine_vs_serial.rs`; here only the clock runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optpower::sweep::frequency_sweep;
use optpower_explore::{
    available_workers, explore, parallel_frequency_sweep, ExploreConfig, Grid, Workers,
};
use optpower_units::Hertz;

const F_LO: Hertz = Hertz::new(1e6);
const F_HI: Hertz = Hertz::new(250e6);

fn bench_grid_sweeps(c: &mut Criterion) {
    // 13 architectures x 3 flavours x F frequencies.
    for &(points, label) in &[(5usize, "grid_195"), (12, "grid_468"), (25, "grid_975")] {
        let grid = Grid::paper_full(F_LO, F_HI, points).expect("paper grid builds");
        c.bench_function(&format!("sweep/serial_core/{label}"), |b| {
            b.iter(|| {
                let mut out = Vec::with_capacity(grid.len());
                for tech in grid.technologies() {
                    for arch in grid.architectures() {
                        out.extend(
                            frequency_sweep(*tech, arch, F_LO, F_HI, points).expect("valid range"),
                        );
                    }
                }
                black_box(out)
            })
        });
        c.bench_function(&format!("sweep/engine_1worker/{label}"), |b| {
            b.iter(|| black_box(explore(&grid, &ExploreConfig::with_workers(1))))
        });
        c.bench_function(&format!("sweep/parallel/{label}"), |b| {
            b.iter(|| black_box(explore(&grid, &ExploreConfig::default())))
        });
    }
}

fn bench_frequency_sweep(c: &mut Criterion) {
    // One (tech, arch) pair swept across many frequencies — the other
    // axis the engine parallelises.
    let grid = Grid::paper_full(F_LO, F_HI, 2).expect("paper grid builds");
    let tech = grid.technologies()[1]; // LL
    let arch = &grid.architectures()[7]; // basic Wallace
    let points = 64;
    c.bench_function("sweep/frequency/serial_64pts", |b| {
        b.iter(|| black_box(frequency_sweep(tech, arch, F_LO, F_HI, points).expect("valid")))
    });
    c.bench_function("sweep/frequency/parallel_64pts", |b| {
        b.iter(|| {
            black_box(
                parallel_frequency_sweep(tech, arch, F_LO, F_HI, points, Workers::Auto)
                    .expect("valid"),
            )
        })
    });
}

fn report_parallelism(c: &mut Criterion) {
    // Not a timing loop: record the worker count the parallel numbers
    // were taken with, so regressions can be read in context.
    c.bench_function(
        &format!("sweep/meta/available_workers_{}", available_workers()),
        |b| b.iter(|| black_box(available_workers())),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(2))
        .warm_up_time(core::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_grid_sweeps, bench_frequency_sweep, report_parallelism
}
criterion_main!(benches);
