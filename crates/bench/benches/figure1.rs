//! Regenerates Figure 1 (Ptot vs Vdd at several activities) and benches
//! the constraint-curve sweep + optimisation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure1(c: &mut Criterion) {
    let fig = optpower_report::figure1(256).expect("figure1 reproduces");
    println!("\n{}", optpower_report::render_figure1(&fig));

    c.bench_function("figure1/four_activity_curves_256pts", |b| {
        b.iter(|| optpower_report::figure1(256).expect("reproduces"))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figure1
}
criterion_main!(benches);
