//! Micro-benchmarks of the model kernels: Eq. 1 evaluation, the
//! numerical optimiser, the closed form, and reverse calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use optpower::calibrate::from_breakdown;
use optpower::reference::{PAPER_FREQUENCY, TABLE1};
use optpower::{ArchParams, PowerModel};
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Volts, Watts};
use std::hint::black_box;

fn rca_model() -> PowerModel {
    let arch = ArchParams::builder("RCA")
        .cells(608)
        .activity(0.5056)
        .logical_depth(61.0)
        .cap_per_cell(Farads::new(70.5e-15))
        .build()
        .expect("valid params");
    PowerModel::from_technology(
        Technology::stm_cmos09(Flavor::LowLeakage),
        arch,
        PAPER_FREQUENCY,
    )
    .expect("valid model")
}

fn bench_kernels(c: &mut Criterion) {
    let model = rca_model();
    c.bench_function("kernels/eq1_power_at", |b| {
        b.iter(|| model.power_at(black_box(Volts::new(0.478)), black_box(Volts::new(0.213))))
    });
    c.bench_function("kernels/optimize_golden", |b| {
        b.iter(|| model.optimize().expect("solves"))
    });
    c.bench_function("kernels/closed_form_eq13", |b| {
        b.iter(|| model.closed_form().expect("solves"))
    });
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let row = &TABLE1[0];
    c.bench_function("kernels/reverse_calibration", |b| {
        b.iter(|| {
            from_breakdown(
                &tech,
                Volts::new(row.vdd),
                Volts::new(row.vth),
                Watts::new(row.pdyn_uw * 1e-6),
                Watts::new(row.pstat_uw * 1e-6),
                f64::from(row.cells),
                row.activity,
                PAPER_FREQUENCY,
            )
            .expect("calibrates")
        })
    });
    c.bench_function("kernels/off_current", |b| {
        b.iter(|| tech.off_current(black_box(Volts::new(0.213))))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels
}
criterion_main!(benches);
