//! Scalar vs bit-parallel activity measurement on a Wallace-tree
//! netlist — the hot loop of the ab-initio characterization.
//!
//! Both engines measure the *same total stimulus volume* (640 vectors):
//! the scalar zero-delay engine runs 640 items on one stream, the
//! bit-parallel engine runs 10 items across 64 lanes. The ids use the
//! `serial_core`/`parallel` naming so `scripts/parse_bench.py` derives
//! the speedup pair the CI bench job tracks (acceptance: ≥ 10×).
//! Equivalence of the two engines' counts is asserted by
//! `tests/sim_differential.rs`; here only the clock runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optpower_mult::Architecture;
use optpower_netlist::Library;
use optpower_sim::{measure_activity, Engine, LANES};

fn bench_activity_measurement(c: &mut Criterion) {
    let design = Architecture::Wallace.generate(16).expect("wallace builds");
    let lib = Library::cmos13();
    let total_vectors = 640u64;
    c.bench_function("sim/serial_core/wallace16_640v", |b| {
        b.iter(|| {
            black_box(measure_activity(
                &design.netlist,
                &lib,
                Engine::ZeroDelay,
                total_vectors,
                1,
                2,
                42,
            ))
        })
    });
    c.bench_function("sim/parallel/wallace16_640v", |b| {
        b.iter(|| {
            black_box(measure_activity(
                &design.netlist,
                &lib,
                Engine::BitParallel,
                total_vectors / LANES as u64,
                1,
                2,
                42,
            ))
        })
    });
    // Context row: the glitch-counting engine the timed activity
    // column pays for (fewer items — event-driven is the slow path).
    c.bench_function("sim/timed/wallace16_64v", |b| {
        b.iter(|| {
            black_box(measure_activity(
                &design.netlist,
                &lib,
                Engine::Timed,
                64,
                1,
                2,
                42,
            ))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(2))
        .warm_up_time(core::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_activity_measurement
}
criterion_main!(benches);
