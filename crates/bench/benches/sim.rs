//! Activity-measurement throughput on a Wallace-tree netlist — the
//! hot loops of the ab-initio characterization.
//!
//! Two speedup pairs use the `serial_core`/`parallel` id convention so
//! `scripts/parse_bench.py` derives the ratios the CI bench job
//! tracks:
//!
//! * `wallace16_640v` — glitch-free path: scalar zero-delay engine vs
//!   the 64-lane bit-parallel engine at the same total stimulus volume
//!   (640 vectors; acceptance ≥ 10×).
//! * `timed_wallace16_640v` — glitch path: the frozen scalar timed
//!   reference (binary heap, per-event allocations, one stream of 640
//!   vectors) vs the pooled event-wheel engine (8 lane-seeded streams
//!   × 80 vectors across the worker pool) at the same total stimulus
//!   volume (acceptance ≥ 5×; single-core machines see the pure
//!   engine ratio, every extra worker multiplies it).
//! * `sta_vs_timed_wallace16` — static path: the dynamic glitch
//!   measurement (wheel engine, 640 vectors) vs one full static pass
//!   (STA windows + glitch bound); acceptance ≥ 100×.
//!
//! The `timed_scalar`/`timed_wheel` rows isolate the engine rebuild
//! itself (identical single-stream workloads, no pooling): what the
//! integer-tick bucket wheel + allocation-free propagation bought
//! before any threads enter the picture. Equivalence of all engines'
//! counts is asserted by `tests/sim_differential.rs` and
//! `tests/timed_differential.rs`; here only the clock runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use optpower_explore::{measure_timed_activity_pooled, TimedPoolConfig, Workers};
use optpower_mult::Architecture;
use optpower_netlist::Library;
use optpower_sim::{measure_activity, Engine, LANES};
use optpower_sta::{GlitchProfile, TimingAnalysis};

fn bench_activity_measurement(c: &mut Criterion) {
    let design = Architecture::Wallace.generate(16).expect("wallace builds");
    let lib = Library::cmos13();
    let total_vectors = 640u64;
    c.bench_function("sim/serial_core/wallace16_640v", |b| {
        b.iter(|| {
            black_box(
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::ZeroDelay,
                    total_vectors,
                    1,
                    2,
                    42,
                )
                .expect("measures"),
            )
        })
    });
    c.bench_function("sim/parallel/wallace16_640v", |b| {
        b.iter(|| {
            black_box(
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::BitParallel,
                    total_vectors / LANES as u64,
                    1,
                    2,
                    42,
                )
                .expect("measures"),
            )
        })
    });
    // Wide-plane acceptance pairs: the 64-lane engine vs the 256- and
    // 512-lane planes at equal total stimulus volume (10240 vectors).
    // The ratio is pure plane-width amortisation — same zero-delay
    // semantics, 4-8x fewer topological passes — and the CI guard in
    // scripts/parse_bench.py requires speedup_min >= 2.0 on both rows.
    // The volume is high enough that the fixed per-measurement costs
    // (simulator setup, the 2 warm-up items) stay a small fraction of
    // the 512-lane run too (20 counted items at W=8).
    let plane_vectors = 10_240u64;
    for (label, wide_engine, wide_lanes) in [
        ("bitparallel_256_wallace16", Engine::BitParallel256, 256u64),
        ("bitparallel_512_wallace16", Engine::BitParallel512, 512u64),
    ] {
        c.bench_function(&format!("sim/serial_core/{label}"), |b| {
            b.iter(|| {
                black_box(
                    measure_activity(
                        &design.netlist,
                        &lib,
                        Engine::BitParallel,
                        plane_vectors / LANES as u64,
                        1,
                        2,
                        42,
                    )
                    .expect("measures"),
                )
            })
        });
        c.bench_function(&format!("sim/parallel/{label}"), |b| {
            b.iter(|| {
                black_box(
                    measure_activity(
                        &design.netlist,
                        &lib,
                        wide_engine,
                        plane_vectors / wide_lanes,
                        1,
                        2,
                        42,
                    )
                    .expect("measures"),
                )
            })
        });
    }
    // Engine-only comparison: the frozen heap reference vs the event
    // wheel on identical single-stream workloads.
    c.bench_function("sim/timed_scalar/wallace16_64v", |b| {
        b.iter(|| {
            black_box(
                measure_activity(&design.netlist, &lib, Engine::TimedScalar, 64, 1, 2, 42)
                    .expect("measures"),
            )
        })
    });
    c.bench_function("sim/timed_wheel/wallace16_64v", |b| {
        b.iter(|| {
            black_box(
                measure_activity(&design.netlist, &lib, Engine::Timed, 64, 1, 2, 42)
                    .expect("measures"),
            )
        })
    });
    // Acceptance pair: the full glitch-path rebuild (wheel engine +
    // worker pool) vs the current scalar path at equal stimulus
    // volume (640 vectors, matching the zero-delay pair).
    let timed_vectors = 640u64;
    c.bench_function("sim/serial_core/timed_wallace16_640v", |b| {
        b.iter(|| {
            black_box(
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::TimedScalar,
                    timed_vectors,
                    1,
                    2,
                    42,
                )
                .expect("measures"),
            )
        })
    });
    let pooled_config = TimedPoolConfig {
        lanes: 8,
        items_per_lane: timed_vectors / 8,
        cycles_per_item: 1,
        warmup: 2,
        seed: 42,
        workers: Workers::Auto,
    };
    c.bench_function("sim/parallel/timed_wallace16_640v", |b| {
        b.iter(|| {
            black_box(
                measure_timed_activity_pooled(&design.netlist, &lib, &pooled_config)
                    .expect("measures"),
            )
        })
    });
    // Static-vs-dynamic cost: the dynamic glitch measurement (wheel
    // engine, one stream at the acceptance-pair volume of 640
    // vectors) vs one full static pass (integer-tick STA windows +
    // glitch bound) on the same netlist. The static pass is the
    // preflight the Runtime runs before every characterization; the
    // `sta_vs_timed_wallace16` speedup row documents that it is
    // effectively free (>= 100x cheaper than the simulation it
    // sanity-checks).
    c.bench_function("sim/serial_core/sta_vs_timed_wallace16", |b| {
        b.iter(|| {
            black_box(
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::Timed,
                    timed_vectors,
                    1,
                    2,
                    42,
                )
                .expect("measures"),
            )
        })
    });
    c.bench_function("sim/parallel/sta_vs_timed_wallace16", |b| {
        b.iter(|| {
            let sta = TimingAnalysis::analyze(&design.netlist, &lib);
            black_box(GlitchProfile::compute(&design.netlist, &sta))
        })
    });
    // Build-cost guard for the dead-cone prune pass: the raw
    // (unpruned) Wallace generator vs the production pruned path.
    // The prune runs *before* the single fanout/topo finalize, so the
    // pruned build must stay within 5% of the raw one — read the
    // `prune_build_wallace16` row's `speedup_min` (raw/pruned build
    // time on the per-run minima) and require >= 0.95. The min is the
    // statistic here because the 5% margin is far below the
    // run-to-run mean swing of a 1-core shared container, and the
    // in-place mask/compact cost this guards is a deterministic
    // per-cell walk, not a contention effect.
    c.bench_function("sim/serial_core/prune_build_wallace16", |b| {
        b.iter(|| {
            black_box(
                Architecture::Wallace
                    .generate_raw(16)
                    .expect("wallace builds"),
            )
        })
    });
    c.bench_function("sim/parallel/prune_build_wallace16", |b| {
        b.iter(|| black_box(Architecture::Wallace.generate(16).expect("wallace builds")))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(2))
        .warm_up_time(core::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_activity_measurement
}
criterion_main!(benches);
