//! Benches the ab-initio flow (generate -> simulate -> STA -> optimise)
//! on representative architectures, and prints the full Table 1'.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use optpower_mult::Architecture;
use optpower_netlist::Library;
use optpower_sim::{measure_activity, Engine};
use optpower_tech::Flavor;

fn bench_ab_initio(c: &mut Criterion) {
    let rows = optpower_report::ab_initio_table(Flavor::LowLeakage, 100, 42).expect("flow runs");
    println!("\n{}", optpower_report::render_ab_initio(&rows));

    c.bench_function("ab_initio/generate_rca16", |b| {
        b.iter(|| Architecture::Rca.generate(16).expect("generates"))
    });
    c.bench_function("ab_initio/generate_wallace16", |b| {
        b.iter(|| Architecture::Wallace.generate(16).expect("generates"))
    });
    let lib = Library::cmos13();
    let rca = Architecture::Rca.generate(16).expect("generates");
    c.bench_function("ab_initio/timed_activity_rca16_20items", |b| {
        b.iter_batched(
            || (),
            |()| {
                measure_activity(&rca.netlist, &lib, Engine::Timed, 20, 1, 2, 42).expect("measures")
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ab_initio/zero_delay_activity_rca16_20items", |b| {
        b.iter(|| {
            measure_activity(&rca.netlist, &lib, Engine::ZeroDelay, 20, 1, 2, 42).expect("measures")
        })
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ab_initio
}
criterion_main!(benches);
