//! Regenerates Tables 3 and 4 (Wallace family on ULL and HS flavours)
//! and benches the total-power reverse-calibration path.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    let t3 = optpower_report::table3().expect("table3 reproduces");
    let t4 = optpower_report::table4().expect("table4 reproduces");
    println!("\n{}", optpower_report::render_rows("Table 3 (ULL)", &t3));
    println!("{}", optpower_report::render_rows("Table 4 (HS)", &t4));
    println!("{}", optpower_report::table2());

    c.bench_function("table3/ull_wallace_family", |b| {
        b.iter(|| optpower_report::table3().expect("reproduces"))
    });
    c.bench_function("table4/hs_wallace_family", |b| {
        b.iter(|| optpower_report::table4().expect("reproduces"))
    });
}

fn config() -> Criterion {
    // Short measurement windows: each payload is deterministic model
    // code, and the bench's main job is regenerating the artefacts.
    Criterion::default()
        .sample_size(10)
        .measurement_time(core::time::Duration::from_secs(3))
        .warm_up_time(core::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tables
}
criterion_main!(benches);
