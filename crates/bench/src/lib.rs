//! Benchmark-only crate; all content lives in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
