//! Synthetic scaled technology nodes for the paper's closing remark:
//! "a smaller technology node with ultra-high speed and large leakage
//! might consume more than a larger techno with better balanced α, Io,
//! ζ, etc. at its optimal working point when considering the same
//! performances."
//!
//! These presets are *not* measured silicon — they are constructed from
//! first-order constant-field scaling rules applied to the published
//! 0.13 µm LL parameters, with the leakage trend of real sub-130 nm
//! nodes (off-current rising ~5–10× per node as Vth scales down):
//!
//! * capacitances (and thus `ζ`) shrink ≈ ×0.7 per node,
//! * `α` falls toward 1.3–1.5 (stronger velocity saturation),
//! * `Io` rises steeply, `Vth0` falls, `Vdd_nom` falls.

use optpower_units::{Amps, Farads, Volts};

use crate::{TechError, Technology};

/// First-order synthetic scaled nodes derived from the 0.13 µm LL data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaledNode {
    /// The published 0.13 µm LL baseline.
    Node130,
    /// A synthetic 90 nm "general purpose" node: faster, leakier.
    Node90,
    /// A synthetic 65 nm node: fastest, leakiest — the paper's
    /// cautionary "ultra-high speed and large leakage" case.
    Node65,
}

impl ScaledNode {
    /// All nodes, largest first.
    pub const ALL: [ScaledNode; 3] = [ScaledNode::Node130, ScaledNode::Node90, ScaledNode::Node65];

    /// Drawn gate length label (e.g. `"130nm"`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Node130 => "130nm",
            Self::Node90 => "90nm",
            Self::Node65 => "65nm",
        }
    }

    /// The synthetic [`Technology`] for this node.
    ///
    /// # Errors
    ///
    /// Propagates [`TechError`] from validation (unreachable — the
    /// presets are valid by construction).
    pub fn technology(self) -> Result<Technology, TechError> {
        let b = Technology::builder(match self {
            Self::Node130 => "scaled 130nm (LL baseline)",
            Self::Node90 => "scaled 90nm (synthetic)",
            Self::Node65 => "scaled 65nm (synthetic)",
        })
        .n(1.33)
        .zeta_chain_length(16.0);
        let b = match self {
            Self::Node130 => b
                .vdd_nom(Volts::new(1.2))
                .vth0_nom(Volts::new(0.354))
                .io(Amps::new(3.34e-6))
                .zeta(Farads::new(5.5e-12))
                .alpha(1.86),
            Self::Node90 => b
                .vdd_nom(Volts::new(1.0))
                .vth0_nom(Volts::new(0.30))
                .io(Amps::new(2.0e-5))
                .zeta(Farads::new(3.85e-12))
                .alpha(1.6),
            Self::Node65 => b
                .vdd_nom(Volts::new(0.9))
                .vth0_nom(Volts::new(0.25))
                .io(Amps::new(1.2e-4))
                .zeta(Farads::new(2.7e-12))
                .alpha(1.4),
        };
        b.build()
    }
}

impl core::fmt::Display for ScaledNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_build() {
        for node in ScaledNode::ALL {
            let t = node.technology().unwrap();
            assert!(t.alpha() > 1.0);
        }
    }

    #[test]
    fn smaller_nodes_are_faster() {
        // Gate delay at equal overdrive falls with scaling (smaller ζ).
        let delay = |n: ScaledNode| {
            let t = n.technology().unwrap();
            t.gate_delay(Volts::new(0.6), Volts::new(0.25))
                .unwrap()
                .value()
        };
        assert!(delay(ScaledNode::Node90) < delay(ScaledNode::Node130));
        assert!(delay(ScaledNode::Node65) < delay(ScaledNode::Node90));
    }

    #[test]
    fn smaller_nodes_leak_more() {
        let leak = |n: ScaledNode| {
            let t = n.technology().unwrap();
            t.off_current(t.vth0_nom()).value()
        };
        assert!(leak(ScaledNode::Node90) > 3.0 * leak(ScaledNode::Node130));
        assert!(leak(ScaledNode::Node65) > 3.0 * leak(ScaledNode::Node90));
    }

    #[test]
    fn labels_distinct() {
        assert_eq!(ScaledNode::Node130.to_string(), "130nm");
        assert_eq!(ScaledNode::Node65.label(), "65nm");
    }
}
