//! Device-physics models for the `optpower` workspace.
//!
//! Implements the technology-side equations of Schuster et al.
//! (DATE 2006):
//!
//! * the modified **alpha-power law** on-current, Eq. 2
//!   (`Ion = Io·(e·(Vdd−Vth)/(α·n·Ut))^α`),
//! * **sub-threshold leakage** per cell (`Io·exp(−Vth/(n·Ut))`, the
//!   static term of Eq. 1),
//! * the **DIBL** threshold shift, Eq. 3 (`Vth = Vth0 − η·Vdd`),
//! * the **gate delay** model, Eq. 4 (`t_gate = ζ·Vdd/Ion`),
//! * the **Vdd^{1/α} linearisation**, Eq. 7
//!   (`Vdd^{1/α} ≈ A·Vdd + B`, Figure 2),
//! * the three published **STM CMOS09 0.13 µm flavours** (Table 2):
//!   Ultra-Low-Leakage, Low-Leakage and High-Speed.
//!
//! # Examples
//!
//! ```
//! use optpower_tech::{Technology, Flavor};
//! use optpower_units::Volts;
//!
//! let ll = Technology::stm_cmos09(Flavor::LowLeakage);
//! // On-current grows with overdrive:
//! let i1 = ll.on_current(Volts::new(1.2), Volts::new(0.354))?;
//! let i2 = ll.on_current(Volts::new(1.0), Volts::new(0.354))?;
//! assert!(i1.value() > i2.value());
//! # Ok::<(), optpower_tech::TechError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod flavors;
mod linearize;
mod scaling;

pub use device::{TechError, Technology, TechnologyBuilder};
pub use flavors::Flavor;
pub use linearize::{Linearization, PAPER_FIT_RANGE};
pub use scaling::ScaledNode;
