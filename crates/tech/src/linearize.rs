//! The Eq. 7 linearisation `Vdd^{1/α} ≈ A·Vdd + B` (Figure 2).

use optpower_numeric::{fit_line, linspace, NumericError};
use optpower_units::Volts;

/// The fitting range used throughout the paper's evaluation: Vdd in
/// 0.3 V to 1.0 V ("The values of A and B used in Eq.13 were obtained
/// by minimizing the approximation error (7) for Vdd in the range of
/// 0.3-1.0V").
pub const PAPER_FIT_RANGE: (Volts, Volts) = (Volts::new(0.3), Volts::new(1.0));

/// A fitted linearisation of `Vdd^{1/α}` over a voltage range.
///
/// The coefficients `A` and `B` are the paper's fitting variables of
/// Eq. 7; for the LL flavour (α = 1.86) on the paper's range the fit
/// reproduces the published A = 0.671, B = 0.347.
///
/// # Examples
///
/// ```
/// use optpower_tech::{Linearization, PAPER_FIT_RANGE};
/// let lin = Linearization::fit(1.86, PAPER_FIT_RANGE.0, PAPER_FIT_RANGE.1)?;
/// assert!((lin.a() - 0.671).abs() < 0.01);
/// assert!((lin.b() - 0.347).abs() < 0.01);
/// # Ok::<(), optpower_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Linearization {
    alpha: f64,
    a: f64,
    b: f64,
    lo: Volts,
    hi: Volts,
    max_error: f64,
}

impl Linearization {
    /// Number of uniform samples used by [`Linearization::fit`]
    /// (1 mV resolution over the paper's 0.7 V range).
    pub const FIT_SAMPLES: usize = 701;

    /// Least-squares fit of `Vdd^{1/α}` over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Propagates [`NumericError`] from the underlying line fit
    /// (degenerate range, non-finite samples).
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` — there is no meaningful exponent to fit.
    pub fn fit(alpha: f64, lo: Volts, hi: Volts) -> Result<Self, NumericError> {
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        let samples: Vec<(f64, f64)> = linspace(lo.value(), hi.value(), Self::FIT_SAMPLES)
            .into_iter()
            .map(|v| (v, v.powf(1.0 / alpha)))
            .collect();
        let fit = fit_line(&samples)?;
        Ok(Self {
            alpha,
            a: fit.slope,
            b: fit.intercept,
            lo,
            hi,
            max_error: fit.max_error,
        })
    }

    /// Fit over the paper's published range (0.3 V – 1.0 V).
    ///
    /// # Errors
    ///
    /// Same as [`Linearization::fit`].
    pub fn fit_paper_range(alpha: f64) -> Result<Self, NumericError> {
        Self::fit(alpha, PAPER_FIT_RANGE.0, PAPER_FIT_RANGE.1)
    }

    /// The alpha exponent this linearisation was fitted for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fitted slope `A` of Eq. 7.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Fitted intercept `B` of Eq. 7.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Lower end of the fitted voltage range.
    pub fn lo(&self) -> Volts {
        self.lo
    }

    /// Upper end of the fitted voltage range.
    pub fn hi(&self) -> Volts {
        self.hi
    }

    /// Worst-case absolute approximation error over the fitted range.
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// Evaluates the linear approximation `A·Vdd + B`.
    pub fn approx(&self, vdd: Volts) -> f64 {
        self.a * vdd.value() + self.b
    }

    /// Evaluates the exact curve `Vdd^{1/α}`.
    pub fn exact(&self, vdd: Volts) -> f64 {
        vdd.value().powf(1.0 / self.alpha)
    }

    /// Signed residual `approx − exact` at `vdd`.
    pub fn residual(&self, vdd: Volts) -> f64 {
        self.approx(vdd) - self.exact(vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_published_a_b_for_ll_alpha() {
        // Paper: A = 0.671, B = 0.347 for alpha = 1.86 on 0.3–1.0 V.
        let lin = Linearization::fit_paper_range(1.86).unwrap();
        assert!((lin.a() - 0.671).abs() < 0.005, "A = {}", lin.a());
        assert!((lin.b() - 0.347).abs() < 0.005, "B = {}", lin.b());
    }

    #[test]
    fn figure2_alpha_15_fit_is_tight() {
        // Figure 2 plots alpha = 1.5 over 0.3–0.9 V; the visual match in
        // the figure corresponds to a worst-case error of ~17 mV^(1/α).
        let lin = Linearization::fit(1.5, Volts::new(0.3), Volts::new(0.9)).unwrap();
        assert!(lin.max_error() < 0.02, "max err {}", lin.max_error());
    }

    #[test]
    fn approximation_brackets_curve() {
        // line − concave curve is convex: the least-squares residual is
        // positive at the range ends and negative in the middle.
        let lin = Linearization::fit_paper_range(1.86).unwrap();
        assert!(lin.residual(Volts::new(0.3)) > 0.0);
        assert!(lin.residual(Volts::new(1.0)) > 0.0);
        assert!(lin.residual(Volts::new(0.65)) < 0.0);
    }

    #[test]
    fn alpha_one_is_exactly_linear() {
        let lin = Linearization::fit_paper_range(1.0).unwrap();
        assert!((lin.a() - 1.0).abs() < 1e-9);
        assert!(lin.b().abs() < 1e-9);
        assert!(lin.max_error() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_non_positive_alpha() {
        let _ = Linearization::fit_paper_range(0.0);
    }

    #[test]
    fn accessors_roundtrip() {
        let lin = Linearization::fit(2.0, Volts::new(0.4), Volts::new(0.8)).unwrap();
        assert_eq!(lin.alpha(), 2.0);
        assert_eq!(lin.lo(), Volts::new(0.4));
        assert_eq!(lin.hi(), Volts::new(0.8));
        assert!((lin.approx(Volts::new(0.5)) - (lin.a() * 0.5 + lin.b())).abs() < 1e-15);
        assert!((lin.exact(Volts::new(0.49)) - 0.7).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any alpha in the physical range the fit error stays small
        /// on the paper's range — the assumption behind Eq. 8.
        #[test]
        fn fit_error_bounded(alpha in 1.2f64..2.5) {
            let lin = Linearization::fit_paper_range(alpha).unwrap();
            prop_assert!(lin.max_error() < 0.03, "alpha={alpha} err={}", lin.max_error());
        }

        /// A is positive and B is non-negative for alpha > 1 on 0.3-1.0V:
        /// the curve is increasing and concave.
        #[test]
        fn coefficients_signs(alpha in 1.05f64..2.8) {
            let lin = Linearization::fit_paper_range(alpha).unwrap();
            prop_assert!(lin.a() > 0.0);
            prop_assert!(lin.b() > 0.0);
        }
    }
}
