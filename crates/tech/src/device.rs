//! The [`Technology`] model: alpha-power law, leakage, DIBL and delay.

use core::fmt;

use optpower_units::{thermal_voltage, Amps, Farads, Kelvin, Seconds, Volts, ROOM_TEMPERATURE};

use crate::flavors::Flavor;

/// Errors from evaluating the device models.
#[derive(Debug, Clone, PartialEq)]
pub enum TechError {
    /// The gate overdrive `Vdd − Vth` is not positive, so the
    /// alpha-power law on-current (Eq. 2) is undefined.
    NonPositiveOverdrive {
        /// Supply voltage requested.
        vdd: Volts,
        /// Threshold voltage requested.
        vth: Volts,
    },
    /// A builder field was given a non-physical value.
    InvalidParameter {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value (base SI units).
        value: f64,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveOverdrive { vdd, vth } => write!(
                f,
                "gate overdrive is not positive (vdd = {vdd}, vth = {vth})"
            ),
            Self::InvalidParameter { field, value } => {
                write!(f, "invalid technology parameter {field} = {value}")
            }
        }
    }
}

impl std::error::Error for TechError {}

/// A CMOS technology characterised by the paper's parameter set.
///
/// Construct with [`Technology::stm_cmos09`] for the published STM
/// flavours (Table 2), or via [`Technology::builder`] for custom nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    name: &'static str,
    vdd_nom: Volts,
    vth0_nom: Volts,
    io: Amps,
    zeta: Farads,
    zeta_chain_length: f64,
    alpha: f64,
    n: f64,
    eta: f64,
    temperature: Kelvin,
}

impl Technology {
    /// One of the published STM CMOS09 0.13 µm flavours (Table 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use optpower_tech::{Technology, Flavor};
    /// let hs = Technology::stm_cmos09(Flavor::HighSpeed);
    /// assert_eq!(hs.alpha(), 1.58);
    /// ```
    pub fn stm_cmos09(flavor: Flavor) -> Self {
        flavor.technology()
    }

    /// Starts building a custom technology from explicit parameters.
    pub fn builder(name: &'static str) -> TechnologyBuilder {
        TechnologyBuilder::new(name)
    }

    /// Human-readable flavour name (e.g. `"STM CMOS09 LL"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nominal supply voltage (1.2 V for all CMOS09 flavours).
    pub fn vdd_nom(&self) -> Volts {
        self.vdd_nom
    }

    /// Nominal zero-bias threshold voltage `Vth0`.
    pub fn vth0_nom(&self) -> Volts {
        self.vth0_nom
    }

    /// Average off-current per cell at `Vgs = Vth` (the paper's `Io`).
    pub fn io(&self) -> Amps {
        self.io
    }

    /// Delay fitting coefficient `ζ` of Eq. 4, in farads, as printed in
    /// Table 2 (a ring-oscillator *chain* fit; see
    /// [`Technology::zeta_per_gate`]).
    pub fn zeta(&self) -> Farads {
        self.zeta
    }

    /// Ring-oscillator chain length the printed `ζ` was fitted on.
    ///
    /// `1.0` for custom technologies (raw Eq. 4 semantics); `16.0` for
    /// the published STM presets — the paper's Table 2 `ζ` values are
    /// inverter-chain fits, and dividing by a 16-stage chain length is
    /// the unique scale that makes every published optimal point
    /// timing-feasible under Eq. 6 (recovered per-architecture
    /// `ζ_eff` ∈ [0.24, 0.47] pF vs `ζ/16` ∈ [0.34, 0.47] pF;
    /// documented substitution, DESIGN.md §2).
    pub fn zeta_chain_length(&self) -> f64 {
        self.zeta_chain_length
    }

    /// The per-gate (per unit of logical depth) delay coefficient
    /// actually used by Eq. 4 and Eq. 6: `ζ / chain_length`.
    pub fn zeta_per_gate(&self) -> Farads {
        self.zeta / self.zeta_chain_length
    }

    /// Alpha-power-law exponent `α` (velocity-saturation index).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Weak-inversion slope factor `n`.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// DIBL coefficient `η` of Eq. 3. The paper proves the optimal
    /// power (Eq. 13) is independent of `η`; it is retained for the
    /// nominal-point models.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Junction temperature used for `Ut` (default 300 K).
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Thermal voltage `Ut = kT/q` at this technology's temperature.
    pub fn ut(&self) -> Volts {
        thermal_voltage(self.temperature)
    }

    /// The sub-threshold swing voltage `n·Ut` (≈ 34.4 mV for LL at 300 K).
    pub fn n_ut(&self) -> Volts {
        self.ut() * self.n
    }

    /// DIBL-corrected threshold voltage at supply `vdd` (Eq. 3):
    /// `Vth = Vth0 − η·Vdd`.
    ///
    /// # Examples
    ///
    /// The published flavour presets use `η = 0` (the paper shows Eq. 13
    /// is independent of `η`); set it via [`TechnologyBuilder::eta`].
    ///
    /// ```
    /// # use optpower_tech::Technology;
    /// # use optpower_units::Volts;
    /// let t = Technology::builder("short channel").eta(0.08).build()?;
    /// let vth = t.dibl_vth(Volts::new(1.2));
    /// assert!(vth.value() < t.vth0_nom().value());
    /// # Ok::<(), optpower_tech::TechError>(())
    /// ```
    pub fn dibl_vth(&self, vdd: Volts) -> Volts {
        self.vth0_nom - vdd * self.eta
    }

    /// Alpha-power-law on-current (Eq. 2):
    /// `Ion = Io·(e·(Vdd−Vth)/(α·n·Ut))^α`.
    ///
    /// # Errors
    ///
    /// [`TechError::NonPositiveOverdrive`] when `vdd <= vth` — the
    /// transistor never turns on and the delay model diverges.
    pub fn on_current(&self, vdd: Volts, vth: Volts) -> Result<Amps, TechError> {
        let overdrive = vdd - vth;
        if overdrive.value() <= 0.0 {
            return Err(TechError::NonPositiveOverdrive { vdd, vth });
        }
        let x = core::f64::consts::E * overdrive.value() / (self.alpha * self.n_ut().value());
        Ok(self.io * x.powf(self.alpha))
    }

    /// Sub-threshold off-current per cell (static term of Eq. 1):
    /// `Ioff = Io·exp(−Vth/(n·Ut))`.
    ///
    /// Note this uses the *applied* threshold voltage; pass the result
    /// of [`Technology::dibl_vth`] to include DIBL.
    ///
    /// # Examples
    ///
    /// ```
    /// # use optpower_tech::{Technology, Flavor};
    /// # use optpower_units::Volts;
    /// let ll = Technology::stm_cmos09(Flavor::LowLeakage);
    /// // Lowering Vth by one decade's worth of swing multiplies leakage by 10.
    /// let swing = ll.n_ut() * std::f64::consts::LN_10;
    /// let base = ll.off_current(Volts::new(0.3));
    /// let hot = ll.off_current(Volts::new(0.3) - swing);
    /// assert!((hot.value() / base.value() - 10.0).abs() < 1e-9);
    /// ```
    pub fn off_current(&self, vth: Volts) -> Amps {
        self.io * (-vth.value() / self.n_ut().value()).exp()
    }

    /// Gate delay (Eq. 4): `t_gate = ζ·Vdd / Ion`.
    ///
    /// # Errors
    ///
    /// [`TechError::NonPositiveOverdrive`] when `vdd <= vth`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use optpower_tech::{Technology, Flavor};
    /// # use optpower_units::Volts;
    /// let ll = Technology::stm_cmos09(Flavor::LowLeakage);
    /// // Delay shrinks as Vdd rises at fixed Vth.
    /// let slow = ll.gate_delay(Volts::new(0.6), Volts::new(0.3))?;
    /// let fast = ll.gate_delay(Volts::new(1.2), Volts::new(0.3))?;
    /// assert!(fast.value() < slow.value());
    /// # Ok::<(), optpower_tech::TechError>(())
    /// ```
    pub fn gate_delay(&self, vdd: Volts, vth: Volts) -> Result<Seconds, TechError> {
        let ion = self.on_current(vdd, vth)?;
        Ok(Seconds::new(
            self.zeta_per_gate().value() * vdd.value() / ion.value(),
        ))
    }

    /// Returns a copy of this technology with a different junction
    /// temperature (for thermal-corner studies).
    pub fn with_temperature(mut self, temperature: Kelvin) -> Self {
        self.temperature = temperature;
        self
    }

    /// Returns a copy with a different effective off-current.
    ///
    /// Used by the reverse-calibration path: the paper's unpublished
    /// per-architecture leakage calibration is absorbed into an
    /// effective `Io` (see DESIGN.md §2).
    pub fn with_io(mut self, io: Amps) -> Self {
        self.io = io;
        self
    }
}

/// Builder for custom [`Technology`] instances.
///
/// # Examples
///
/// ```
/// use optpower_tech::Technology;
/// use optpower_units::{Amps, Farads, Volts};
///
/// let custom = Technology::builder("my 90nm")
///     .vdd_nom(Volts::new(1.0))
///     .vth0_nom(Volts::new(0.30))
///     .io(Amps::new(5.0e-6))
///     .zeta(Farads::new(4.0e-12))
///     .alpha(1.7)
///     .n(1.3)
///     .build()?;
/// assert_eq!(custom.alpha(), 1.7);
/// # Ok::<(), optpower_tech::TechError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyBuilder {
    name: &'static str,
    vdd_nom: Volts,
    vth0_nom: Volts,
    io: Amps,
    zeta: Farads,
    zeta_chain_length: f64,
    alpha: f64,
    n: f64,
    eta: f64,
    temperature: Kelvin,
}

impl TechnologyBuilder {
    pub(crate) fn new(name: &'static str) -> Self {
        // Defaults: the LL flavour, the paper's reference technology.
        Self {
            name,
            vdd_nom: Volts::new(1.2),
            vth0_nom: Volts::new(0.354),
            io: Amps::new(3.34e-6),
            zeta: Farads::new(5.5e-12),
            zeta_chain_length: 1.0,
            alpha: 1.86,
            n: 1.33,
            eta: 0.0,
            temperature: ROOM_TEMPERATURE,
        }
    }

    /// Sets the nominal supply voltage.
    pub fn vdd_nom(mut self, v: Volts) -> Self {
        self.vdd_nom = v;
        self
    }

    /// Sets the nominal zero-bias threshold voltage.
    pub fn vth0_nom(mut self, v: Volts) -> Self {
        self.vth0_nom = v;
        self
    }

    /// Sets the per-cell off-current `Io` at `Vgs = Vth`.
    pub fn io(mut self, io: Amps) -> Self {
        self.io = io;
        self
    }

    /// Sets the delay coefficient `ζ` (Eq. 4).
    pub fn zeta(mut self, zeta: Farads) -> Self {
        self.zeta = zeta;
        self
    }

    /// Sets the ring-oscillator chain length the `ζ` fit refers to
    /// (see [`Technology::zeta_chain_length`]). Defaults to 1.
    pub fn zeta_chain_length(mut self, len: f64) -> Self {
        self.zeta_chain_length = len;
        self
    }

    /// Sets the alpha-power-law exponent.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the weak-inversion slope factor.
    pub fn n(mut self, n: f64) -> Self {
        self.n = n;
        self
    }

    /// Sets the DIBL coefficient `η`.
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Sets the junction temperature.
    pub fn temperature(mut self, t: Kelvin) -> Self {
        self.temperature = t;
        self
    }

    /// Validates every parameter and builds the [`Technology`].
    ///
    /// # Errors
    ///
    /// [`TechError::InvalidParameter`] for non-positive voltages,
    /// currents, capacitances or slope factors, `α` outside `(1, 3]`,
    /// `η` outside `[0, 0.5)`, or a non-positive temperature.
    pub fn build(self) -> Result<Technology, TechError> {
        let check = |cond: bool, field: &'static str, value: f64| {
            if cond {
                Ok(())
            } else {
                Err(TechError::InvalidParameter { field, value })
            }
        };
        check(self.vdd_nom.value() > 0.0, "vdd_nom", self.vdd_nom.value())?;
        check(
            self.vth0_nom.value() > 0.0,
            "vth0_nom",
            self.vth0_nom.value(),
        )?;
        check(self.io.value() > 0.0, "io", self.io.value())?;
        check(self.zeta.value() > 0.0, "zeta", self.zeta.value())?;
        check(
            self.zeta_chain_length >= 1.0,
            "zeta_chain_length",
            self.zeta_chain_length,
        )?;
        check(self.alpha > 1.0 && self.alpha <= 3.0, "alpha", self.alpha)?;
        check(self.n >= 1.0 && self.n < 3.0, "n", self.n)?;
        check(self.eta >= 0.0 && self.eta < 0.5, "eta", self.eta)?;
        check(
            self.temperature.value() > 0.0,
            "temperature",
            self.temperature.value(),
        )?;
        Ok(Technology {
            name: self.name,
            vdd_nom: self.vdd_nom,
            vth0_nom: self.vth0_nom,
            io: self.io,
            zeta: self.zeta,
            zeta_chain_length: self.zeta_chain_length,
            alpha: self.alpha,
            n: self.n,
            eta: self.eta,
            temperature: self.temperature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flavor;

    fn ll() -> Technology {
        Technology::stm_cmos09(Flavor::LowLeakage)
    }

    #[test]
    fn n_ut_matches_paper_value() {
        // n = 1.33, Ut(300K) ≈ 25.85 mV → n·Ut ≈ 34.4 mV.
        assert!((ll().n_ut().value() - 0.03438).abs() < 1e-4);
    }

    #[test]
    fn on_current_rejects_negative_overdrive() {
        let err = ll()
            .on_current(Volts::new(0.2), Volts::new(0.3))
            .unwrap_err();
        assert!(matches!(err, TechError::NonPositiveOverdrive { .. }));
    }

    #[test]
    fn on_current_alpha_power_scaling() {
        // Doubling overdrive multiplies Ion by 2^alpha.
        let t = ll();
        let vth = Volts::new(0.2);
        let i1 = t.on_current(Volts::new(0.4), vth).unwrap();
        let i2 = t.on_current(Volts::new(0.6), vth).unwrap();
        let ratio = i2.value() / i1.value();
        assert!((ratio - 2f64.powf(t.alpha())).abs() < 1e-9);
    }

    #[test]
    fn off_current_decade_per_swing() {
        let t = ll();
        // Sub-threshold slope: S = n·Ut·ln(10) per decade.
        let s = t.n_ut().value() * core::f64::consts::LN_10;
        let i1 = t.off_current(Volts::new(0.3));
        let i2 = t.off_current(Volts::new(0.3 + s));
        assert!((i1.value() / i2.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn off_current_at_zero_vth_is_io() {
        let t = ll();
        assert!((t.off_current(Volts::ZERO).value() - t.io().value()).abs() < 1e-18);
    }

    #[test]
    fn gate_delay_monotonic_in_vth() {
        // Raising Vth at fixed Vdd slows the gate.
        let t = ll();
        let d1 = t.gate_delay(Volts::new(0.8), Volts::new(0.2)).unwrap();
        let d2 = t.gate_delay(Volts::new(0.8), Volts::new(0.35)).unwrap();
        assert!(d2.value() > d1.value());
    }

    #[test]
    fn dibl_lowers_threshold() {
        let t = Technology::builder("dibl test").eta(0.05).build().unwrap();
        let vth = t.dibl_vth(Volts::new(1.0));
        assert!((vth.value() - (t.vth0_nom().value() - 0.05)).abs() < 1e-12);
    }

    #[test]
    fn builder_validates_alpha() {
        let err = Technology::builder("bad").alpha(0.9).build().unwrap_err();
        assert!(matches!(
            err,
            TechError::InvalidParameter { field: "alpha", .. }
        ));
    }

    #[test]
    fn builder_validates_io() {
        let err = Technology::builder("bad")
            .io(Amps::new(-1.0))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TechError::InvalidParameter { field: "io", .. }
        ));
    }

    #[test]
    fn builder_validates_eta() {
        let err = Technology::builder("bad").eta(0.9).build().unwrap_err();
        assert!(matches!(
            err,
            TechError::InvalidParameter { field: "eta", .. }
        ));
    }

    #[test]
    fn with_io_overrides_leakage_only() {
        let t = ll();
        let t2 = t.with_io(Amps::new(1e-5));
        assert_eq!(t2.alpha(), t.alpha());
        assert!((t2.off_current(Volts::ZERO).value() - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn temperature_scaling_raises_leakage() {
        let cold = ll();
        let hot = ll().with_temperature(Kelvin::new(358.0));
        // Same Vth, higher Ut → larger exp(−Vth/nUt) → more leakage.
        let vth = Volts::new(0.3);
        assert!(hot.off_current(vth).value() > cold.off_current(vth).value());
    }

    #[test]
    fn error_display() {
        let err = TechError::NonPositiveOverdrive {
            vdd: Volts::new(0.2),
            vth: Volts::new(0.3),
        };
        assert!(err.to_string().contains("overdrive"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Flavor;
    use proptest::prelude::*;

    proptest! {
        /// Ion is strictly increasing in Vdd for any valid overdrive.
        #[test]
        fn ion_monotonic_in_vdd(vth in 0.1f64..0.5, dv in 0.01f64..0.7) {
            let t = Technology::stm_cmos09(Flavor::LowLeakage);
            let v1 = Volts::new(vth + dv);
            let v2 = Volts::new(vth + dv + 0.01);
            let i1 = t.on_current(v1, Volts::new(vth)).unwrap();
            let i2 = t.on_current(v2, Volts::new(vth)).unwrap();
            prop_assert!(i2.value() > i1.value());
        }

        /// Off-current is strictly decreasing in Vth and always positive.
        #[test]
        fn ioff_monotonic_in_vth(vth in 0.0f64..1.0) {
            let t = Technology::stm_cmos09(Flavor::UltraLowLeakage);
            let i1 = t.off_current(Volts::new(vth));
            let i2 = t.off_current(Volts::new(vth + 0.01));
            prop_assert!(i1.value() > i2.value());
            prop_assert!(i2.value() > 0.0);
        }

        /// Delay · Ion == ζ · Vdd exactly (Eq. 4 is self-consistent).
        #[test]
        fn delay_identity(vdd in 0.4f64..1.2, vth in 0.1f64..0.35) {
            let t = Technology::stm_cmos09(Flavor::HighSpeed);
            let d = t.gate_delay(Volts::new(vdd), Volts::new(vth)).unwrap();
            let ion = t.on_current(Volts::new(vdd), Volts::new(vth)).unwrap();
            let lhs = d.value() * ion.value();
            let rhs = t.zeta_per_gate().value() * vdd;
            prop_assert!(((lhs - rhs) / rhs).abs() < 1e-12);
        }
    }
}
