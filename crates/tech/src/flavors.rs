//! The published STM CMOS09 0.13 µm technology flavours (Table 2).

use core::fmt;

use optpower_units::{Amps, Farads, Volts};

use crate::device::Technology;

/// The three flavours of the STM CMOS09 0.13 µm process evaluated in
/// the paper (Table 2).
///
/// | flavour | Vth0 \[V\] | Io \[µA\] | ζ \[pF\] | α |
/// |---------|----------|---------|--------|-----|
/// | ULL     | 0.466    | 2.11    | 7.5    | 1.95 |
/// | LL      | 0.354    | 3.34    | 5.5    | 1.86 |
/// | HS      | 0.328    | 7.08    | 6.1    | 1.58 |
///
/// All flavours share `Vdd_nom = 1.2 V`; the weak-inversion slope
/// `n = 1.33` is only published for LL and is applied to all three
/// (documented substitution, DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// Ultra-Low-Leakage: high Vth, low Io, slow (`ζ` large).
    UltraLowLeakage,
    /// Low-Leakage: the paper's reference flavour and overall winner.
    LowLeakage,
    /// High-Speed: low Vth, leaky, low α (strong velocity saturation).
    HighSpeed,
}

impl Flavor {
    /// All flavours, in the paper's Table 2 order.
    pub const ALL: [Flavor; 3] = [
        Flavor::UltraLowLeakage,
        Flavor::LowLeakage,
        Flavor::HighSpeed,
    ];

    /// Short name used in the paper's tables ("ULL", "LL", "HS").
    pub fn abbreviation(self) -> &'static str {
        match self {
            Self::UltraLowLeakage => "ULL",
            Self::LowLeakage => "LL",
            Self::HighSpeed => "HS",
        }
    }

    /// The full [`Technology`] preset for this flavour.
    pub(crate) fn technology(self) -> Technology {
        let b = Technology::builder(match self {
            Self::UltraLowLeakage => "STM CMOS09 ULL",
            Self::LowLeakage => "STM CMOS09 LL",
            Self::HighSpeed => "STM CMOS09 HS",
        });
        let b = match self {
            Self::UltraLowLeakage => b
                .vth0_nom(Volts::new(0.466))
                .io(Amps::new(2.11e-6))
                .zeta(Farads::new(7.5e-12))
                .alpha(1.95),
            Self::LowLeakage => b
                .vth0_nom(Volts::new(0.354))
                .io(Amps::new(3.34e-6))
                .zeta(Farads::new(5.5e-12))
                .alpha(1.86),
            Self::HighSpeed => b
                .vth0_nom(Volts::new(0.328))
                .io(Amps::new(7.08e-6))
                .zeta(Farads::new(6.1e-12))
                .alpha(1.58),
        };
        b.vdd_nom(Volts::new(1.2))
            .n(1.33)
            .zeta_chain_length(16.0)
            .build()
            .expect("published Table 2 presets are valid by construction")
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_ll() {
        let t = Technology::stm_cmos09(Flavor::LowLeakage);
        assert_eq!(t.vdd_nom(), Volts::new(1.2));
        assert_eq!(t.vth0_nom(), Volts::new(0.354));
        assert_eq!(t.io(), Amps::new(3.34e-6));
        assert_eq!(t.zeta(), Farads::new(5.5e-12));
        assert_eq!(t.alpha(), 1.86);
        assert_eq!(t.n(), 1.33);
    }

    #[test]
    fn table2_values_ull() {
        let t = Technology::stm_cmos09(Flavor::UltraLowLeakage);
        assert_eq!(t.vth0_nom(), Volts::new(0.466));
        assert_eq!(t.io(), Amps::new(2.11e-6));
        assert_eq!(t.zeta(), Farads::new(7.5e-12));
        assert_eq!(t.alpha(), 1.95);
    }

    #[test]
    fn table2_values_hs() {
        let t = Technology::stm_cmos09(Flavor::HighSpeed);
        assert_eq!(t.vth0_nom(), Volts::new(0.328));
        assert_eq!(t.io(), Amps::new(7.08e-6));
        assert_eq!(t.zeta(), Farads::new(6.1e-12));
        assert_eq!(t.alpha(), 1.58);
    }

    #[test]
    fn leakage_ordering_hs_worst() {
        // At equal Vth the flavour off-currents order HS > LL > ULL.
        let vth = Volts::new(0.3);
        let ull = Technology::stm_cmos09(Flavor::UltraLowLeakage).off_current(vth);
        let ll = Technology::stm_cmos09(Flavor::LowLeakage).off_current(vth);
        let hs = Technology::stm_cmos09(Flavor::HighSpeed).off_current(vth);
        assert!(hs.value() > ll.value());
        assert!(ll.value() > ull.value());
    }

    #[test]
    fn speed_ordering_near_threshold() {
        // In the low-Vdd regime where the optimal points live
        // (0.3–0.5 V), HS is the fastest flavour and ULL the slowest —
        // the effect Section 5 attributes to "low Io and high ζ of ULL".
        let delay = |f: Flavor| {
            let t = Technology::stm_cmos09(f);
            t.gate_delay(Volts::new(0.5), t.vth0_nom()).unwrap().value()
        };
        assert!(delay(Flavor::HighSpeed) < delay(Flavor::LowLeakage));
        assert!(delay(Flavor::LowLeakage) < delay(Flavor::UltraLowLeakage));
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(Flavor::UltraLowLeakage.to_string(), "ULL");
        assert_eq!(Flavor::LowLeakage.to_string(), "LL");
        assert_eq!(Flavor::HighSpeed.to_string(), "HS");
    }

    #[test]
    fn all_contains_three_distinct() {
        assert_eq!(Flavor::ALL.len(), 3);
        assert_ne!(Flavor::ALL[0], Flavor::ALL[1]);
        assert_ne!(Flavor::ALL[1], Flavor::ALL[2]);
    }
}
