//! Integration coverage of the dimensional-arithmetic contract: only
//! physically meaningful unit combinations exist, and every quantity
//! renders with SI-prefixed `Display`.

use optpower_units::{
    Amps, Coulombs, Farads, Hertz, Seconds, SiFormat, SquareMicrons, Unitless, Volts, Watts,
};

#[test]
fn volts_times_amps_is_watts() {
    let p: Watts = Volts::new(1.2) * Amps::new(0.5);
    assert_eq!(p, Watts::new(0.6));
    // Commutes.
    assert_eq!(Amps::new(0.5) * Volts::new(1.2), p);
}

#[test]
fn watts_divide_back_into_factors() {
    let p = Watts::new(0.6);
    let i: Amps = p / Volts::new(1.2);
    let v: Volts = p / Amps::new(0.5);
    assert!((i.value() - 0.5).abs() < 1e-15);
    assert!((v.value() - 1.2).abs() < 1e-15);
}

#[test]
fn coulombs_over_seconds_is_amps() {
    let q: Coulombs = Farads::new(2.0e-15) * Volts::new(0.5);
    assert_eq!(q, Coulombs::new(1.0e-15));
    let i: Amps = q / Seconds::new(1.0e-9);
    assert!((i.value() - 1.0e-6).abs() < 1e-18);
    // ... and charge over current recovers the time.
    let t: Seconds = q / i;
    assert!((t.value() - 1.0e-9).abs() < 1e-21);
}

#[test]
fn charge_commutes_and_period_inverts() {
    assert_eq!(
        Volts::new(0.5) * Farads::new(2.0),
        Farads::new(2.0) * Volts::new(0.5)
    );
    let f = Hertz::new(31.25e6);
    assert!((f.period().value() - 32e-9).abs() < 1e-18);
    assert!((f.period().frequency().value() - f.value()).abs() < 1e-3);
}

#[test]
fn scalar_and_same_unit_arithmetic() {
    let v = Volts::new(0.3) + Volts::new(0.1) * 2.0;
    assert!((v.value() - 0.5).abs() < 1e-15);
    let half = 0.5 * Volts::new(1.0) - Volts::new(1.0) / 2.0;
    assert!(half.value().abs() < 1e-15);
    // Ratio of like quantities is a plain f64.
    assert!((Watts::new(3.0).ratio(Watts::new(2.0)) - 1.5).abs() < 1e-15);
    assert!((Volts::new(-0.3).abs().value() - 0.3).abs() < 1e-15);
    assert_eq!(Volts::new(0.2).min(Volts::new(0.3)), Volts::new(0.2));
    assert_eq!(Volts::new(0.2).max(Volts::new(0.3)), Volts::new(0.3));
}

#[test]
fn display_uses_si_prefixes() {
    // The paper's own numbers, as the report crate prints them.
    assert_eq!(format!("{}", Watts::new(191.44e-6)), "191.440 uW");
    assert_eq!(format!("{}", Volts::new(0.478)), "478.000 mV");
    assert_eq!(format!("{}", Farads::new(70.5e-15)), "70.500 fF");
    assert_eq!(format!("{}", Hertz::new(31.25e6)), "31.250 MHz");
    assert_eq!(format!("{}", Seconds::new(32e-9)), "32.000 ns");
    assert_eq!(format!("{}", Amps::new(3.0)), "3.000 A");
}

#[test]
fn display_respects_precision_and_degenerate_values() {
    assert_eq!(format!("{:.1}", Volts::new(0.478)), "478.0 mV");
    assert_eq!(format!("{:.0}", Watts::new(1.0)), "1 W");
    // Zero keeps no prefix.
    assert_eq!(format!("{}", Watts::new(0.0)), "0.000 W");
    // Negative values keep their sign on the mantissa.
    assert_eq!(format!("{}", Volts::new(-0.25)), "-250.000 mV");
}

#[test]
fn si_format_extension_matches_display() {
    assert_eq!(
        191.44e-6.si_format("W"),
        format!("{}", Watts::new(191.44e-6))
    );
    assert_eq!(1.5e3.si_format("Hz"), "1.500 kHz");
}

#[test]
fn dimensionless_units_round_trip() {
    let a = Unitless::new(0.5056);
    assert!((a.value() - 0.5056).abs() < 1e-15);
    let area = SquareMicrons::new(11038.0);
    assert_eq!(format!("{:.0}", area), "11 kum2");
}
