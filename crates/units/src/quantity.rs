//! The quantity newtypes and their dimensional arithmetic.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Declares a `f64` newtype quantity with the standard constructors,
/// accessors, same-unit arithmetic and scalar scaling.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw `f64` value expressed in the base SI unit.
            ///
            /// # Examples
            ///
            /// ```
            /// # use optpower_units::Volts;
            /// let vdd = Volts::new(1.2);
            /// assert_eq!(vdd.value(), 1.2);
            /// ```
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base SI unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The SI symbol for this unit (e.g. `"V"`).
            pub const SYMBOL: &'static str = $symbol;

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// `true` when the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Dimensionless ratio of two like quantities.
            ///
            /// # Examples
            ///
            /// ```
            /// # use optpower_units::Volts;
            /// assert_eq!(Volts::new(1.2).ratio(Volts::new(0.6)), 2.0);
            /// ```
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                crate::display::format_si(f, self.0, $symbol)
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Electric charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// Silicon area in square micrometres.
    SquareMicrons,
    "um2"
);
quantity!(
    /// A dimensionless quantity that still benefits from the common API.
    Unitless,
    ""
);

// ---- cross-unit arithmetic (only dimensionally valid combinations) ----

impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

impl Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.value() / rhs.value())
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs::new(self.value() * rhs.value())
    }
}

impl Mul<Farads> for Volts {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Farads) -> Coulombs {
        rhs * self
    }
}

impl Div<Seconds> for Coulombs {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Seconds) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

impl Div<Amps> for Coulombs {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Amps) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Hertz {
    /// The period `1/f`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use optpower_units::{Hertz, Seconds};
    /// assert_eq!(Hertz::new(2.0).period(), Seconds::new(0.5));
    /// ```
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(self.value().recip())
    }
}

impl Seconds {
    /// The frequency `1/t`.
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz::new(self.value().recip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_unit_arithmetic() {
        let a = Volts::new(0.3);
        let b = Volts::new(0.1);
        assert_eq!(a + b, Volts::new(0.4));
        assert!((a - b).value() - 0.2 < 1e-12);
        assert_eq!(-a, Volts::new(-0.3));
        assert_eq!(a * 2.0, Volts::new(0.6));
        assert_eq!(2.0 * a, Volts::new(0.6));
        assert!((a / 3.0 - Volts::new(0.1)).abs().value() < 1e-12);
        assert!((a / b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn assign_ops() {
        let mut p = Watts::new(1.0);
        p += Watts::new(0.5);
        p -= Watts::new(0.25);
        assert_eq!(p, Watts::new(1.25));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = (1..=4).map(|i| Watts::new(f64::from(i))).sum();
        assert_eq!(total, Watts::new(10.0));
    }

    #[test]
    fn min_max_abs() {
        let a = Volts::new(-0.5);
        let b = Volts::new(0.2);
        assert_eq!(a.abs(), Volts::new(0.5));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn charge_over_time_is_current() {
        let q = Farads::new(2e-15) * Volts::new(1.0);
        let i = q / Seconds::new(1e-9);
        assert!((i.value() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_and_default_agree() {
        assert_eq!(Volts::ZERO, Volts::default());
    }

    #[test]
    fn finiteness() {
        assert!(Volts::new(1.0).is_finite());
        assert!(!Volts::new(f64::NAN).is_finite());
        assert!(!Volts::new(f64::INFINITY).is_finite());
    }
}
