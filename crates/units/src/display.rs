//! SI-prefixed display formatting shared by all quantities.

use core::fmt;

/// SI prefixes from atto to tera, with their decimal exponents.
const PREFIXES: &[(i32, &str)] = &[
    (-18, "a"),
    (-15, "f"),
    (-12, "p"),
    (-9, "n"),
    (-6, "u"),
    (-3, "m"),
    (0, ""),
    (3, "k"),
    (6, "M"),
    (9, "G"),
    (12, "T"),
];

/// Formats `value` with an SI prefix so the mantissa lands in `[1, 1000)`.
///
/// Used by the `Display` impls of every quantity in this crate; exposed
/// so downstream report code can format raw floats the same way.
pub(crate) fn format_si(f: &mut fmt::Formatter<'_>, value: f64, symbol: &str) -> fmt::Result {
    let (mantissa, prefix) = split_si(value);
    match f.precision() {
        Some(p) => write!(f, "{mantissa:.p$} {prefix}{symbol}"),
        None => write!(f, "{mantissa:.3} {prefix}{symbol}"),
    }
}

/// Splits a value into an SI mantissa and prefix string.
fn split_si(value: f64) -> (f64, &'static str) {
    if value == 0.0 || !value.is_finite() {
        return (value, "");
    }
    let exp3 = (value.abs().log10() / 3.0).floor() as i32 * 3;
    let exp3 = exp3.clamp(-18, 12);
    let prefix = PREFIXES
        .iter()
        .find(|(e, _)| *e == exp3)
        .map(|(_, p)| *p)
        .unwrap_or("");
    (value / 10f64.powi(exp3), prefix)
}

/// Extension trait formatting a raw `f64` with an SI prefix and unit.
///
/// # Examples
///
/// ```
/// use optpower_units::SiFormat;
/// assert_eq!(191.44e-6.si_format("W"), "191.440 uW");
/// ```
pub trait SiFormat {
    /// Renders the value with an SI prefix, three decimals, and `unit`.
    fn si_format(&self, unit: &str) -> String;
}

impl SiFormat for f64 {
    fn si_format(&self, unit: &str) -> String {
        let (mantissa, prefix) = split_si(*self);
        format!("{mantissa:.3} {prefix}{unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Volts, Watts};

    #[test]
    fn display_micro_watts() {
        assert_eq!(format!("{}", Watts::new(191.44e-6)), "191.440 uW");
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.1}", Volts::new(0.478)), "478.0 mV");
    }

    #[test]
    fn display_zero() {
        assert_eq!(format!("{}", Watts::new(0.0)), "0.000 W");
    }

    #[test]
    fn display_plain_units() {
        assert_eq!(format!("{}", Volts::new(1.2)), "1.200 V");
    }

    #[test]
    fn display_large() {
        assert_eq!(format!("{}", crate::Hertz::new(31.25e6)), "31.250 MHz");
    }

    #[test]
    fn si_format_trait() {
        assert_eq!(3.34e-6.si_format("A"), "3.340 uA");
        assert_eq!(5.5e-12.si_format("F"), "5.500 pF");
    }

    #[test]
    fn split_handles_extremes() {
        let (m, p) = split_si(1e-21);
        assert_eq!(p, "a");
        assert!((m - 1e-3).abs() < 1e-15);
        let (m, p) = split_si(1e15);
        assert_eq!(p, "T");
        assert!((m - 1e3).abs() < 1e-9);
    }
}
