//! Physical constants and the thermal voltage `Ut = kT/q`.

use crate::{Kelvin, Volts};

/// Boltzmann constant in J/K (2019 SI exact value).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge in coulombs (2019 SI exact value).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Room temperature (300 K) used throughout the paper's evaluation.
pub const ROOM_TEMPERATURE: Kelvin = Kelvin::new(300.0);

/// Thermal voltage `Ut = kT/q`.
///
/// At 300 K this is ≈ 25.85 mV; the paper's weak-inversion slope term
/// `n·Ut` multiplies this by n = 1.33 for the STM LL flavour.
///
/// # Examples
///
/// ```
/// use optpower_units::{thermal_voltage, ROOM_TEMPERATURE};
/// let ut = thermal_voltage(ROOM_TEMPERATURE);
/// assert!((ut.value() - 0.025852).abs() < 1e-5);
/// ```
#[inline]
pub fn thermal_voltage(temperature: Kelvin) -> Volts {
    Volts::new(BOLTZMANN * temperature.value() / ELEMENTARY_CHARGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_linearly_with_temperature() {
        let t1 = thermal_voltage(Kelvin::new(300.0));
        let t2 = thermal_voltage(Kelvin::new(600.0));
        assert!((t2.value() - 2.0 * t1.value()).abs() < 1e-12);
    }

    #[test]
    fn hot_silicon_thermal_voltage() {
        // 85 °C = 358.15 K, a common industrial corner.
        let ut = thermal_voltage(Kelvin::new(358.15));
        assert!((ut.value() - 0.030863).abs() < 1e-4);
    }
}
