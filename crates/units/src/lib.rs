//! Typed physical quantities for the `optpower` workspace.
//!
//! Every quantity that crosses a crate boundary in this workspace is a
//! newtype over `f64` carrying its unit: [`Volts`], [`Amps`], [`Watts`],
//! [`Farads`], [`Seconds`], [`Hertz`], [`Kelvin`] and [`SquareMicrons`].
//! This statically prevents the classic modelling bugs (passing a
//! threshold voltage where a supply voltage is expected is still
//! possible — both are volts — but passing a capacitance where a
//! current is expected is not).
//!
//! Arithmetic between quantities is implemented only where it is
//! dimensionally meaningful, e.g. `Volts * Amps = Watts` and
//! `Farads * Volts / Seconds` is not provided directly but
//! `Coulombs / Seconds = Amps` is.
//!
//! # Examples
//!
//! ```
//! use optpower_units::{Volts, Amps, Watts};
//! let p: Watts = Volts::new(1.2) * Amps::new(0.5);
//! assert_eq!(p, Watts::new(0.6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod display;
mod quantity;
mod thermal;

pub use display::SiFormat;
pub use quantity::{
    Amps, Coulombs, Farads, Hertz, Kelvin, Seconds, SquareMicrons, Unitless, Volts, Watts,
};
pub use thermal::{thermal_voltage, BOLTZMANN, ELEMENTARY_CHARGE, ROOM_TEMPERATURE};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volts_times_amps_is_watts() {
        assert_eq!(Volts::new(2.0) * Amps::new(3.0), Watts::new(6.0));
    }

    #[test]
    fn watts_divided_by_volts_is_amps() {
        assert_eq!(Watts::new(6.0) / Volts::new(2.0), Amps::new(3.0));
    }

    #[test]
    fn farads_times_volts_is_coulombs() {
        assert_eq!(Farads::new(1e-15) * Volts::new(1.0), Coulombs::new(1e-15));
    }

    #[test]
    fn hertz_inverts_to_seconds() {
        assert_eq!(Hertz::new(31.25e6).period(), Seconds::new(1.0 / 31.25e6));
    }

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let ut = thermal_voltage(ROOM_TEMPERATURE);
        assert!((ut.value() - 0.02585).abs() < 1e-4, "Ut = {ut:?}");
    }
}
