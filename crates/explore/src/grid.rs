//! The design space: a cartesian grid of
//! `(Technology, ArchParams, Hertz)` points.

use optpower::reference::table1_arch_params;
use optpower::sweep::log_frequency_axis;
use optpower::{ArchParams, ModelError};
use optpower_tech::{Flavor, Technology};
use optpower_units::Hertz;

/// One point of the design space (borrowed from the owning [`Grid`]).
#[derive(Debug, Clone, Copy)]
pub struct GridPoint<'a> {
    /// Linear index of this point in grid order (frequency fastest,
    /// then architecture, then technology).
    pub index: usize,
    /// The technology to evaluate in.
    pub tech: &'a Technology,
    /// The architecture to evaluate.
    pub arch: &'a ArchParams,
    /// The throughput frequency.
    pub frequency: Hertz,
}

/// A cartesian design-space grid: every technology × every
/// architecture × every frequency.
///
/// Points are enumerated with frequency as the fastest-moving axis and
/// technology as the slowest — the same order a serial
/// `for tech { for arch { for f { … } } }` loop visits them, so result
/// sets line up with serial reference computations row by row.
#[derive(Debug, Clone)]
pub struct Grid {
    techs: Vec<Technology>,
    archs: Vec<ArchParams>,
    freqs: Vec<Hertz>,
}

impl Grid {
    /// Starts building a grid.
    pub fn builder() -> GridBuilder {
        GridBuilder {
            techs: Vec::new(),
            archs: Vec::new(),
            freqs: Vec::new(),
        }
    }

    /// The paper's full Table 1 design space: all thirteen 16-bit
    /// multiplier architectures × the three STM CMOS09 flavours ×
    /// `freq_points` log-spaced frequencies over `[f_lo, f_hi]`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFrequency`] for a non-positive or inverted
    /// frequency range.
    pub fn paper_full(f_lo: Hertz, f_hi: Hertz, freq_points: usize) -> Result<Self, ModelError> {
        Ok(Grid::builder()
            .technologies(Flavor::ALL.iter().map(|&fl| Technology::stm_cmos09(fl)))
            .architectures(table1_arch_params()?)
            .frequencies(log_frequency_axis(f_lo, f_hi, freq_points)?)
            .build()
            .expect("all three axes are non-empty and validated"))
    }

    /// Number of points in the grid.
    pub fn len(&self) -> usize {
        self.techs.len() * self.archs.len() * self.freqs.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The technology axis.
    pub fn technologies(&self) -> &[Technology] {
        &self.techs
    }

    /// The architecture axis.
    pub fn architectures(&self) -> &[ArchParams] {
        &self.archs
    }

    /// The frequency axis.
    pub fn frequencies(&self) -> &[Hertz] {
        &self.freqs
    }

    /// Decodes linear index `index` into its grid point.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn point(&self, index: usize) -> GridPoint<'_> {
        assert!(index < self.len(), "grid index {index} out of bounds");
        let nf = self.freqs.len();
        let na = self.archs.len();
        GridPoint {
            index,
            tech: &self.techs[index / (nf * na)],
            arch: &self.archs[(index / nf) % na],
            frequency: self.freqs[index % nf],
        }
    }

    /// Encodes axis positions into the linear grid index — the inverse
    /// of [`Grid::point`], for looking up a specific point in a
    /// [`ResultSet`](crate::ResultSet) (whose records are in grid
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if any axis position is out of range.
    pub fn index_of(&self, tech_ix: usize, arch_ix: usize, freq_ix: usize) -> usize {
        assert!(
            tech_ix < self.techs.len(),
            "tech index {tech_ix} out of bounds"
        );
        assert!(
            arch_ix < self.archs.len(),
            "arch index {arch_ix} out of bounds"
        );
        assert!(
            freq_ix < self.freqs.len(),
            "freq index {freq_ix} out of bounds"
        );
        (tech_ix * self.archs.len() + arch_ix) * self.freqs.len() + freq_ix
    }

    /// Iterates every point in grid order.
    pub fn points(&self) -> impl Iterator<Item = GridPoint<'_>> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }
}

/// Why a [`GridBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// An axis has no entries.
    EmptyAxis(&'static str),
    /// A frequency is not positive and finite.
    InvalidFrequency(f64),
}

impl core::fmt::Display for GridError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyAxis(axis) => write!(f, "grid axis '{axis}' is empty"),
            Self::InvalidFrequency(hz) => write!(f, "invalid grid frequency {hz} Hz"),
        }
    }
}

impl std::error::Error for GridError {}

/// Builder for [`Grid`]; see [`Grid::builder`].
#[derive(Debug, Clone)]
pub struct GridBuilder {
    techs: Vec<Technology>,
    archs: Vec<ArchParams>,
    freqs: Vec<Hertz>,
}

impl GridBuilder {
    /// Appends one technology to the technology axis.
    pub fn technology(mut self, tech: Technology) -> Self {
        self.techs.push(tech);
        self
    }

    /// Appends technologies to the technology axis.
    pub fn technologies(mut self, techs: impl IntoIterator<Item = Technology>) -> Self {
        self.techs.extend(techs);
        self
    }

    /// Appends one architecture to the architecture axis.
    pub fn architecture(mut self, arch: ArchParams) -> Self {
        self.archs.push(arch);
        self
    }

    /// Appends architectures to the architecture axis.
    pub fn architectures(mut self, archs: impl IntoIterator<Item = ArchParams>) -> Self {
        self.archs.extend(archs);
        self
    }

    /// Appends one frequency to the frequency axis.
    pub fn frequency(mut self, f: Hertz) -> Self {
        self.freqs.push(f);
        self
    }

    /// Appends frequencies to the frequency axis.
    pub fn frequencies(mut self, freqs: impl IntoIterator<Item = Hertz>) -> Self {
        self.freqs.extend(freqs);
        self
    }

    /// Validates the axes and builds the grid.
    ///
    /// # Errors
    ///
    /// [`GridError::EmptyAxis`] when an axis has no entries,
    /// [`GridError::InvalidFrequency`] for a non-positive or non-finite
    /// frequency (such a point would poison the whole evaluation: the
    /// timing-constraint derivation asserts on it).
    pub fn build(self) -> Result<Grid, GridError> {
        if self.techs.is_empty() {
            return Err(GridError::EmptyAxis("technologies"));
        }
        if self.archs.is_empty() {
            return Err(GridError::EmptyAxis("architectures"));
        }
        if self.freqs.is_empty() {
            return Err(GridError::EmptyAxis("frequencies"));
        }
        for f in &self.freqs {
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail the check
            if !(f.value() > 0.0) || !f.value().is_finite() {
                return Err(GridError::InvalidFrequency(f.value()));
            }
        }
        Ok(Grid {
            techs: self.techs,
            archs: self.archs,
            freqs: self.freqs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_units::Farads;

    fn arch(name: &str) -> ArchParams {
        ArchParams::builder(name)
            .cells(100)
            .activity(0.3)
            .logical_depth(10.0)
            .cap_per_cell(Farads::new(50e-15))
            .build()
            .unwrap()
    }

    #[test]
    fn index_decoding_matches_nested_loop_order() {
        let grid = Grid::builder()
            .technology(Technology::stm_cmos09(Flavor::LowLeakage))
            .technology(Technology::stm_cmos09(Flavor::HighSpeed))
            .architectures([arch("a"), arch("b"), arch("c")])
            .frequencies([Hertz::new(1e6), Hertz::new(2e6)])
            .build()
            .unwrap();
        assert_eq!(grid.len(), 2 * 3 * 2);
        let mut expect = Vec::new();
        for t in grid.technologies() {
            for a in grid.architectures() {
                for f in grid.frequencies() {
                    expect.push((t.name(), a.name().to_string(), f.value()));
                }
            }
        }
        let got: Vec<_> = grid
            .points()
            .map(|p| {
                (
                    p.tech.name(),
                    p.arch.name().to_string(),
                    p.frequency.value(),
                )
            })
            .collect();
        assert_eq!(got, expect);
        for (i, p) in grid.points().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn index_of_inverts_point() {
        let grid = Grid::builder()
            .technology(Technology::stm_cmos09(Flavor::LowLeakage))
            .technology(Technology::stm_cmos09(Flavor::HighSpeed))
            .architectures([arch("a"), arch("b"), arch("c")])
            .frequencies([Hertz::new(1e6), Hertz::new(2e6)])
            .build()
            .unwrap();
        for (t, tech) in grid.technologies().iter().enumerate() {
            for (a, ar) in grid.architectures().iter().enumerate() {
                for (f, freq) in grid.frequencies().iter().enumerate() {
                    let p = grid.point(grid.index_of(t, a, f));
                    assert_eq!(p.tech.name(), tech.name());
                    assert_eq!(p.arch.name(), ar.name());
                    assert_eq!(p.frequency, *freq);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "arch index")]
    fn index_of_rejects_out_of_range() {
        let grid = Grid::builder()
            .technology(Technology::stm_cmos09(Flavor::LowLeakage))
            .architecture(arch("a"))
            .frequency(Hertz::new(1e6))
            .build()
            .unwrap();
        let _ = grid.index_of(0, 1, 0);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let err = Grid::builder().build().unwrap_err();
        assert_eq!(err, GridError::EmptyAxis("technologies"));
        let err = Grid::builder()
            .technology(Technology::stm_cmos09(Flavor::LowLeakage))
            .frequency(Hertz::new(1e6))
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::EmptyAxis("architectures"));
        let err = Grid::builder()
            .technology(Technology::stm_cmos09(Flavor::LowLeakage))
            .architecture(arch("a"))
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::EmptyAxis("frequencies"));
    }

    #[test]
    fn bad_frequencies_are_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Grid::builder()
                .technology(Technology::stm_cmos09(Flavor::LowLeakage))
                .architecture(arch("a"))
                .frequency(Hertz::new(bad))
                .build()
                .unwrap_err();
            assert!(
                matches!(err, GridError::InvalidFrequency(_)),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn paper_full_grid_shape() {
        let grid = Grid::paper_full(Hertz::new(1e6), Hertz::new(250e6), 5).unwrap();
        assert_eq!(grid.technologies().len(), 3);
        assert_eq!(grid.architectures().len(), 13);
        assert_eq!(grid.frequencies().len(), 5);
        assert_eq!(grid.len(), 195);
        let err = Grid::paper_full(Hertz::new(1e6), Hertz::new(1e3), 5).unwrap_err();
        assert!(matches!(err, ModelError::InvalidFrequency { .. }));
    }

    #[test]
    fn grid_error_displays() {
        assert!(GridError::EmptyAxis("technologies")
            .to_string()
            .contains("technologies"));
        assert!(GridError::InvalidFrequency(-2.0).to_string().contains("-2"));
    }
}
