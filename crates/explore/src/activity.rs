//! Pooled timed (glitch-counting) activity measurement.
//!
//! The event-driven engine is the slow leg of ab-initio
//! characterization: unlike the zero-delay path it cannot be
//! bit-packed 64 lanes into a word, because every lane would need its
//! own event order. What *can* be done is the thread-level analogue of
//! [`optpower_sim::BitParallelSim`]: split the stimulus into
//! [`optpower_sim::lane_seed`]-derived independent streams, run one
//! `TimedSim` per lane, and shard the lanes across the worker pool.
//!
//! The measurement protocol per lane is exactly
//! [`optpower_sim::measure_activity`]'s `Driver` protocol (warm-up
//! windowing, reset pulse, hold cycles), and the combination rule is
//! [`ActivityReport::combine`] — plain integer sums. Consequently the
//! pooled result is **bit-identical for any worker count**, and equal
//! to the sum of dedicated scalar reference runs over the same lane
//! seeds (`tests/timed_differential.rs` pins both properties at
//! 1/2/8 workers).

use optpower_netlist::{Library, Netlist};
use optpower_sim::{lane_seed, measure_activity, ActivityReport, Engine, SimError};

use crate::pool::{par_map_indexed, Workers};

/// Configuration of one pooled timed activity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedPoolConfig {
    /// Number of independent lane-seeded stimulus streams. The lane
    /// split is part of the measurement definition (it decides which
    /// operands are applied), *not* a scheduling knob: the same
    /// `lanes` always yields the same result, whatever `workers` says.
    pub lanes: u32,
    /// Data items measured per lane (excluding warm-up).
    pub items_per_lane: u64,
    /// Clock cycles each data item occupies (1 for combinational and
    /// pipelined designs, the operand width for add-and-shift ones).
    pub cycles_per_item: u32,
    /// Warm-up items per lane, simulated but not counted.
    pub warmup: u64,
    /// Base seed; lane `L` draws its stream from
    /// [`lane_seed`]`(seed, L)`, so lane 0 is the scalar stream.
    pub seed: u64,
    /// Worker-count policy for sharding lanes across threads.
    pub workers: Workers,
}

impl TimedPoolConfig {
    /// A sensible default shape: `lanes` decorrelated streams at
    /// `items_per_lane` items each, one cycle per item, 4 warm-up
    /// items, automatic worker count.
    pub fn new(lanes: u32, items_per_lane: u64, seed: u64) -> Self {
        Self {
            lanes,
            items_per_lane,
            cycles_per_item: 1,
            warmup: 4,
            seed,
            workers: Workers::Auto,
        }
    }
}

/// Measures timed (glitch-counting) switching activity by running
/// `config.lanes` independent [`optpower_sim::TimedSim`] instances
/// over lane-seeded stimulus streams, sharded across the worker pool.
///
/// The combined report covers `lanes × items_per_lane` measured items;
/// its transition total is the plain sum of the per-lane totals, so
/// the result is bit-identical for any worker count and equal to
/// `lanes` scalar measurements run one after the other.
///
/// # Errors
///
/// The first [`SimError`] in lane order (invalid library delay or an
/// oscillating netlist). All lanes simulate the same netlist, so in
/// practice either every lane fails at construction or none does.
///
/// # Panics
///
/// Panics if the netlist has no `a`/`b` input buses, or if
/// `config.lanes == 0` or `config.items_per_lane == 0`.
pub fn measure_timed_activity_pooled(
    netlist: &Netlist,
    library: &Library,
    config: &TimedPoolConfig,
) -> Result<ActivityReport, SimError> {
    assert!(config.lanes > 0, "at least one stimulus lane is required");
    assert!(config.items_per_lane > 0, "items_per_lane must be positive");
    let workers = config.workers.resolve(config.lanes as usize);
    let reports = par_map_indexed(config.lanes as usize, workers, |lane| {
        measure_activity(
            netlist,
            library,
            Engine::Timed,
            config.items_per_lane,
            config.cycles_per_item,
            config.warmup,
            lane_seed(config.seed, lane as u32),
        )
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(ActivityReport::combine(&reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::{CellKind, NetlistBuilder};

    fn small_design() -> Netlist {
        let mut b = NetlistBuilder::new("small");
        let a0 = b.add_input("a0");
        let a1 = b.add_input("a1");
        let b0 = b.add_input("b0");
        let b1 = b.add_input("b1");
        let s0 = b.add_cell(CellKind::Xor2, &[a0, b0]);
        let c0 = b.add_cell(CellKind::And2, &[a0, b0]);
        let s1 = b.add_cell(CellKind::Xor3, &[a1, b1, c0]);
        let c1 = b.add_cell(CellKind::Maj3, &[a1, b1, c0]);
        b.add_output("p0", s0);
        b.add_output("p1", s1);
        b.add_output("p2", c1);
        b.build().unwrap()
    }

    #[test]
    fn pooled_equals_serial_lane_sum_for_any_worker_count() {
        let nl = small_design();
        let lib = Library::cmos13();
        let serial_sum: u64 = (0..6u32)
            .map(|lane| {
                measure_activity(&nl, &lib, Engine::Timed, 25, 1, 3, lane_seed(11, lane))
                    .unwrap()
                    .transitions
            })
            .sum();
        let mut config = TimedPoolConfig::new(6, 25, 11);
        config.warmup = 3;
        let mut reports = Vec::new();
        for workers in [1usize, 2, 8] {
            config.workers = Workers::Fixed(workers);
            let r = measure_timed_activity_pooled(&nl, &lib, &config).unwrap();
            assert_eq!(r.transitions, serial_sum, "workers = {workers}");
            assert_eq!(r.items, 6 * 25);
            reports.push(r);
        }
        // Bit-identical across worker counts, activity included.
        for r in &reports[1..] {
            assert_eq!(r.activity.to_bits(), reports[0].activity.to_bits());
            assert_eq!(r, &reports[0]);
        }
    }

    #[test]
    fn lane0_is_the_scalar_stream() {
        let nl = small_design();
        let lib = Library::cmos13();
        let mut config = TimedPoolConfig::new(1, 40, 77);
        config.warmup = 2;
        let pooled = measure_timed_activity_pooled(&nl, &lib, &config).unwrap();
        let scalar = measure_activity(&nl, &lib, Engine::Timed, 40, 1, 2, 77).unwrap();
        assert_eq!(pooled, scalar);
    }

    #[test]
    fn invalid_delays_surface_from_the_pool() {
        let nl = small_design();
        let lib = Library::with_uniform_delay(f64::INFINITY);
        let config = TimedPoolConfig::new(4, 5, 1);
        let err = measure_timed_activity_pooled(&nl, &lib, &config).unwrap_err();
        assert!(matches!(err, SimError::InvalidDelay { .. }));
    }
}
