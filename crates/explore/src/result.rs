//! Structured results of a design-space exploration: per-point
//! records, summary statistics, per-architecture optima, a Pareto
//! front, and CSV/JSON export.

use optpower::sweep::SweepOutcome;
use optpower::OperatingPoint;
use optpower_units::Hertz;

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Technology name.
    pub tech: &'static str,
    /// Architecture name.
    pub arch: String,
    /// Evaluated frequency.
    pub frequency: Hertz,
    /// What the optimiser did at this point.
    pub outcome: SweepOutcome,
}

impl EvalRecord {
    /// The interior optimum, if timing closed.
    pub fn optimum(&self) -> Option<OperatingPoint> {
        self.outcome.closed()
    }

    /// Machine-readable status tag (`closed`, `boundary_pinned`,
    /// `failed`) used by the CSV/JSON exports — delegates to the
    /// shared [`SweepOutcome::status`] definition.
    pub fn status(&self) -> &'static str {
        self.outcome.status()
    }
}

/// Aggregate statistics over a [`ResultSet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total evaluated points.
    pub points: usize,
    /// Points whose timing closed with an interior optimum.
    pub closed: usize,
    /// Points pinned at the optimiser's search boundary.
    pub boundary_pinned: usize,
    /// Points where model building or optimisation failed.
    pub failed: usize,
    /// Cheapest optimal total power among closed points, in watts.
    pub min_ptot: Option<f64>,
    /// Most expensive optimal total power among closed points, in watts.
    pub max_ptot: Option<f64>,
    /// Mean optimal total power among closed points, in watts.
    pub mean_ptot: Option<f64>,
}

/// The cheapest closed point of one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchOptimum {
    /// Architecture name.
    pub arch: String,
    /// Technology of the winning point.
    pub tech: &'static str,
    /// Frequency of the winning point.
    pub frequency: Hertz,
    /// The winning operating point.
    pub point: OperatingPoint,
}

/// The results of evaluating a design-space grid, in grid order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    records: Vec<EvalRecord>,
}

impl ResultSet {
    /// Wraps evaluated records (kept in the caller's order).
    pub fn new(records: Vec<EvalRecord>) -> Self {
        Self { records }
    }

    /// All records, in grid order.
    pub fn records(&self) -> &[EvalRecord] {
        &self.records
    }

    /// Concatenates result sets in the given order, each set keeping
    /// its internal grid order — the worker-count-invariant merge rule
    /// distributed executions compose per-shard sweeps with. Because a
    /// sweep's record order is a pure function of its grid, splitting
    /// a grid into contiguous slices, evaluating the slices anywhere,
    /// and `concat`ing them back in slice order is bit-identical to
    /// evaluating the whole grid in one process.
    pub fn concat(sets: impl IntoIterator<Item = ResultSet>) -> ResultSet {
        ResultSet::new(sets.into_iter().flat_map(|s| s.records).collect())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no points were evaluated.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records whose timing closed, with their optima.
    pub fn closed(&self) -> impl Iterator<Item = (&EvalRecord, OperatingPoint)> + '_ {
        self.records
            .iter()
            .filter_map(|r| r.optimum().map(|o| (r, o)))
    }

    /// Aggregate statistics over every record.
    pub fn summary(&self) -> Summary {
        let mut s = Summary {
            points: self.records.len(),
            closed: 0,
            boundary_pinned: 0,
            failed: 0,
            min_ptot: None,
            max_ptot: None,
            mean_ptot: None,
        };
        let mut sum = 0.0;
        for r in &self.records {
            match &r.outcome {
                SweepOutcome::Closed(opt) => {
                    s.closed += 1;
                    let p = opt.ptot().value();
                    sum += p;
                    s.min_ptot = Some(s.min_ptot.map_or(p, |m: f64| m.min(p)));
                    s.max_ptot = Some(s.max_ptot.map_or(p, |m: f64| m.max(p)));
                }
                SweepOutcome::BoundaryPinned(_) => s.boundary_pinned += 1,
                SweepOutcome::Failed(_) => s.failed += 1,
            }
        }
        if s.closed > 0 {
            s.mean_ptot = Some(sum / s.closed as f64);
        }
        s
    }

    /// The cheapest closed point of each architecture, in first-seen
    /// (grid) order. Architectures that never close timing are absent.
    pub fn best_per_architecture(&self) -> Vec<ArchOptimum> {
        let mut order: Vec<ArchOptimum> = Vec::new();
        for (r, opt) in self.closed() {
            match order.iter_mut().find(|b| b.arch == r.arch) {
                Some(best) => {
                    if opt.ptot().value() < best.point.ptot().value() {
                        best.tech = r.tech;
                        best.frequency = r.frequency;
                        best.point = opt;
                    }
                }
                None => order.push(ArchOptimum {
                    arch: r.arch.clone(),
                    tech: r.tech,
                    frequency: r.frequency,
                    point: opt,
                }),
            }
        }
        order
    }

    /// The Pareto front over (throughput ↑, optimal total power ↓)
    /// among closed points, sorted by ascending frequency.
    ///
    /// A point is on the front iff no other closed point delivers at
    /// least its frequency for at most its power (with one of the two
    /// strictly better). Frequency ties keep only the cheapest point;
    /// exact `(f, Ptot)` duplicates keep the first in grid order.
    pub fn pareto_front(&self) -> Vec<&EvalRecord> {
        let mut closed: Vec<(usize, f64, f64)> = self
            .records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.optimum()
                    .map(|o| (i, r.frequency.value(), o.ptot().value()))
            })
            .collect();
        // Fastest first; within a frequency, cheapest first, then grid
        // order for exact duplicates.
        closed.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(a.2.total_cmp(&b.2))
                .then(a.0.cmp(&b.0))
        });
        let mut front: Vec<&EvalRecord> = Vec::new();
        let mut best_ptot = f64::INFINITY;
        let mut last_freq = f64::NAN;
        for (i, f, p) in closed {
            if p < best_ptot && f != last_freq {
                front.push(&self.records[i]);
                best_ptot = p;
                last_freq = f;
            }
        }
        front.reverse();
        front
    }

    /// Renders every record as CSV (`tech,arch,frequency_hz,status,
    /// vdd_v,vth_v,pdyn_w,pstat_w,ptot_w,energy_per_op_j`). Points
    /// without a usable optimum leave the numeric columns empty.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "tech,arch,frequency_hz,status,vdd_v,vth_v,pdyn_w,pstat_w,ptot_w,energy_per_op_j\n",
        );
        for r in &self.records {
            out.push_str(&csv_field(r.tech));
            out.push(',');
            out.push_str(&csv_field(&r.arch));
            out.push_str(&format!(",{:e},{}", r.frequency.value(), r.status()));
            match r.optimum() {
                Some(opt) => {
                    let b = opt.breakdown();
                    out.push_str(&format!(
                        ",{:e},{:e},{:e},{:e},{:e},{:e}\n",
                        opt.vdd().value(),
                        opt.vth().value(),
                        b.pdyn().value(),
                        b.pstat().value(),
                        opt.ptot().value(),
                        opt.energy_per_item(r.frequency),
                    ));
                }
                None => out.push_str(",,,,,,\n"),
            }
        }
        out
    }

    /// Renders every record as a JSON document
    /// (`{"schema":"optpower-explore/v1","records":[…]}`) without any
    /// external serialisation dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"optpower-explore/v1\",\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tech\":{},\"arch\":{},\"frequency_hz\":{:e},\"status\":\"{}\"",
                json_string(r.tech),
                json_string(&r.arch),
                r.frequency.value(),
                r.status(),
            ));
            if let Some(opt) = r.optimum() {
                let b = opt.breakdown();
                out.push_str(&format!(
                    ",\"vdd_v\":{:e},\"vth_v\":{:e},\"pdyn_w\":{:e},\"pstat_w\":{:e},\"ptot_w\":{:e},\"energy_per_op_j\":{:e}",
                    opt.vdd().value(),
                    opt.vth().value(),
                    b.pdyn().value(),
                    b.pstat().value(),
                    opt.ptot().value(),
                    opt.energy_per_item(r.frequency),
                ));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Quotes a CSV field when it contains a separator, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Encodes a JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower::sweep::sample_at;
    use optpower::ArchParams;
    use optpower_tech::{Flavor, Technology};
    use optpower_units::Farads;

    fn record(arch: &str, f_hz: f64) -> EvalRecord {
        let a = ArchParams::builder(arch)
            .cells(729)
            .activity(0.2976)
            .logical_depth(17.0)
            .cap_per_cell(Farads::new(70e-15))
            .build()
            .unwrap();
        let tech = Technology::stm_cmos09(Flavor::LowLeakage);
        let s = sample_at(tech, &a, Hertz::new(f_hz));
        EvalRecord {
            tech: tech.name(),
            arch: arch.to_string(),
            frequency: s.frequency,
            outcome: s.outcome,
        }
    }

    fn sample_set() -> ResultSet {
        ResultSet::new(vec![
            record("wallace", 1e6),
            record("wallace", 10e6),
            record("wallace", 100e6),
            record("rca", 5e6),
            record("wallace", 50e9), // boundary-pinned: cannot close
        ])
    }

    #[test]
    fn summary_counts_every_status() {
        let rs = sample_set();
        let s = rs.summary();
        assert_eq!(s.points, 5);
        assert_eq!(s.closed, 4);
        assert_eq!(s.boundary_pinned, 1);
        assert_eq!(s.failed, 0);
        let (min, max, mean) = (
            s.min_ptot.unwrap(),
            s.max_ptot.unwrap(),
            s.mean_ptot.unwrap(),
        );
        assert!(min > 0.0 && min <= mean && mean <= max);
    }

    #[test]
    fn best_per_architecture_picks_cheapest_point() {
        let rs = sample_set();
        let best = rs.best_per_architecture();
        assert_eq!(best.len(), 2);
        // Grid order: wallace first.
        assert_eq!(best[0].arch, "wallace");
        assert_eq!(best[1].arch, "rca");
        // Cheapest wallace point is the lowest frequency.
        assert_eq!(best[0].frequency, Hertz::new(1e6));
    }

    #[test]
    fn pareto_front_is_monotone() {
        let rs = sample_set();
        let front = rs.pareto_front();
        assert!(!front.is_empty());
        // Ascending frequency implies ascending power along the front.
        for pair in front.windows(2) {
            assert!(pair[0].frequency < pair[1].frequency);
            assert!(
                pair[0].optimum().unwrap().ptot().value()
                    < pair[1].optimum().unwrap().ptot().value()
            );
        }
        // The fastest closed point always survives.
        assert_eq!(front.last().unwrap().frequency, Hertz::new(100e6));
        // Every front member is closed.
        for r in &front {
            assert_eq!(r.status(), "closed");
        }
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        // rca at 5 MHz burns more power than wallace at 10 MHz (same
        // tech, worse arch): rca must be dominated.
        let rs = sample_set();
        let p_rca = rs.records()[3].optimum().unwrap().ptot().value();
        let p_wal10 = rs.records()[1].optimum().unwrap().ptot().value();
        if p_wal10 < p_rca {
            assert!(rs.pareto_front().iter().all(|r| r.arch != "rca"));
        }
    }

    #[test]
    fn concat_of_contiguous_slices_is_identity() {
        let whole = sample_set();
        let records = whole.records().to_vec();
        let (left, right) = records.split_at(2);
        let glued = ResultSet::concat([
            ResultSet::new(left.to_vec()),
            ResultSet::new(right.to_vec()),
            ResultSet::default(),
        ]);
        assert_eq!(glued.records(), whole.records());
        assert_eq!(glued.to_csv(), whole.to_csv());
        assert_eq!(glued.to_json(), whole.to_json());
    }

    #[test]
    fn csv_has_header_and_one_line_per_record() {
        let rs = sample_set();
        let csv = rs.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + rs.len());
        assert!(lines[0].starts_with("tech,arch,frequency_hz,status"));
        assert!(lines[1].contains("closed"));
        assert!(lines[5].contains("boundary_pinned"));
        // Pinned row leaves numerics empty: 9 commas, nothing after.
        assert!(lines[5].ends_with(",,,,,,"));
    }

    #[test]
    fn csv_quotes_fields_with_separators() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let rs = sample_set();
        let json = rs.to_json();
        assert!(json.starts_with("{\"schema\":\"optpower-explore/v1\""));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"status\":").count(), rs.len());
        assert_eq!(json.matches("\"ptot_w\":").count(), 4);
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_result_set() {
        let rs = ResultSet::default();
        assert!(rs.is_empty());
        let s = rs.summary();
        assert_eq!((s.points, s.closed), (0, 0));
        assert_eq!(s.min_ptot, None);
        assert!(rs.pareto_front().is_empty());
        assert!(rs.best_per_architecture().is_empty());
        assert_eq!(
            rs.to_json(),
            "{\"schema\":\"optpower-explore/v1\",\"records\":[]}"
        );
    }
}
