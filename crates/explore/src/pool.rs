//! A std-only scoped-thread worker pool.
//!
//! The workspace is offline (no `rayon`), so parallelism is built from
//! `std::thread::scope` plus an atomic work-stealing cursor: every
//! worker repeatedly claims the next unclaimed index, computes it, and
//! stashes `(index, result)` locally; results are merged and re-sorted
//! into input order at the end. Work-stealing keeps cores busy even
//! when per-item cost varies wildly (e.g. boundary-pinned optimiser
//! runs are much cheaper than interior ones).
//!
//! Panics inside a worker propagate out of [`par_map_indexed`] — a
//! poisoned evaluation never yields a silently truncated result.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of workers the host can usefully run in parallel
/// (`std::thread::available_parallelism`, with a fallback of 1).
pub fn available_workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker-count policy for the parallel primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workers {
    /// One worker per available core ([`available_workers`]).
    #[default]
    Auto,
    /// An explicit worker count; `Fixed(0)` and `Fixed(1)` both run
    /// serially on the calling thread.
    Fixed(usize),
}

impl Workers {
    /// Resolves the policy to a concrete thread count for `n_items`
    /// work items (never more threads than items, never fewer than 1).
    pub fn resolve(self, n_items: usize) -> usize {
        let requested = match self {
            Workers::Auto => available_workers(),
            Workers::Fixed(n) => n,
        };
        requested.clamp(1, n_items.max(1))
    }
}

/// Maps `f` over `0..n` on `workers` scoped threads and returns the
/// results in index order.
///
/// The result is identical to `(0..n).map(f).collect()` for any pure
/// `f`, whatever the worker count — the scheduling only decides *who*
/// computes each index, never *what* is computed. `workers <= 1` (or
/// `n <= 1`) short-circuits to exactly that serial loop.
pub fn par_map_indexed<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                merged
                    .lock()
                    .expect("a sibling worker panicked; scope will propagate it")
                    .extend(local);
            });
        }
    });
    let mut pairs = merged
        .into_inner()
        .expect("all workers joined without panicking");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over a slice on `workers` scoped threads, preserving input
/// order. See [`par_map_indexed`] for the determinism contract.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), workers, |i| f(&items[i]))
}

/// A reusable handle on the exploration worker pool: one [`Workers`]
/// policy owned in one place and *handed into* every flow, instead of
/// each binary or study constructing its own policy ad hoc.
///
/// The pool itself is scoped-thread based (threads live only for the
/// duration of one `map` call), so the handle is cheap to copy and
/// share; what it centralises is the *policy* — the workload runtime
/// owns one `Pool` and every job it executes draws parallelism from
/// it. Results are independent of the policy by the
/// [`par_map_indexed`] determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pool {
    policy: Workers,
}

impl Pool {
    /// A pool with the given worker policy.
    pub fn new(policy: Workers) -> Self {
        Self { policy }
    }

    /// The policy this pool schedules with.
    pub fn policy(&self) -> Workers {
        self.policy
    }

    /// The concrete thread count the pool would use for `n_items`.
    pub fn resolve(&self, n_items: usize) -> usize {
        self.policy.resolve(n_items)
    }

    /// [`par_map`] on this pool's policy.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        par_map(items, self.policy.resolve(items.len()), f)
    }

    /// [`par_map_indexed`] on this pool's policy.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        par_map_indexed(n, self.policy.resolve(n), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_every_worker_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64, 1000] {
            let got = par_map(&items, workers, |&x| x * x);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        assert_eq!(par_map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn uneven_work_is_stolen_not_dropped() {
        // Index 0 is ~1000x more expensive than the rest; stealing must
        // still produce every result exactly once, in order.
        let n = 200;
        let got = par_map_indexed(n, 4, |i| {
            let spins = if i == 0 { 100_000 } else { 100 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(got.len(), n);
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn pool_handle_maps_like_the_free_functions() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for policy in [Workers::Auto, Workers::Fixed(1), Workers::Fixed(4)] {
            let pool = Pool::new(policy);
            assert_eq!(pool.policy(), policy);
            assert_eq!(pool.map(&items, |&x| x * 3 + 1), expect);
            assert_eq!(pool.map_indexed(items.len(), |i| items[i] * 3 + 1), expect);
            assert!(pool.resolve(items.len()) >= 1);
        }
        assert_eq!(Pool::default().policy(), Workers::Auto);
    }

    #[test]
    fn workers_policy_resolution() {
        assert_eq!(Workers::Fixed(8).resolve(3), 3, "capped by items");
        assert_eq!(Workers::Fixed(0).resolve(10), 1, "floor of one");
        assert_eq!(Workers::Fixed(4).resolve(0), 1, "empty input");
        let auto = Workers::Auto.resolve(1_000_000);
        assert!((1..=1_000_000).contains(&auto));
        assert_eq!(Workers::default(), Workers::Auto);
    }

    // `thread::scope` re-panics with its own "a scoped thread panicked"
    // payload rather than forwarding ours, so match on that.
    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panics_propagate() {
        let _ = par_map_indexed(16, 4, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Scheduling never changes results: for arbitrary sizes and
        /// worker counts, `par_map_indexed` equals the serial map.
        #[test]
        fn par_map_equals_serial_map(n in 0usize..300, workers in 0usize..40, seed in any::<u64>()) {
            let f = |i: usize| {
                (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
            };
            let serial: Vec<u64> = (0..n).map(f).collect();
            prop_assert_eq!(par_map_indexed(n, workers, f), serial);
        }

        /// `Workers::resolve` always lands in `[1, max(n, 1)]`.
        #[test]
        fn resolve_stays_in_bounds(requested in 0usize..10_000, n in 0usize..10_000) {
            for policy in [Workers::Fixed(requested), Workers::Auto] {
                let resolved = policy.resolve(n);
                prop_assert!(resolved >= 1);
                prop_assert!(resolved <= n.max(1));
            }
        }
    }
}
