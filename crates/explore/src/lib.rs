#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod engine;
pub mod grid;
pub mod pool;
pub mod result;
pub mod sweep;

pub use activity::{measure_timed_activity_pooled, TimedPoolConfig};
pub use engine::{explore, CalibrationCache, ExploreConfig};
pub use grid::{Grid, GridBuilder, GridError, GridPoint};
pub use pool::{available_workers, par_map, par_map_indexed, Pool, Workers};
pub use result::{ArchOptimum, EvalRecord, ResultSet, Summary};
pub use sweep::{parallel_frequency_sweep, parallel_rank_technologies};
