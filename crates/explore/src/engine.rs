//! The exploration engine: shards a [`Grid`] across a scoped-thread
//! worker pool and streams classified results into a [`ResultSet`].

use std::collections::HashMap;

use optpower::sweep::SweepOutcome;
use optpower::{ModelError, OptimizerConfig, PowerModel, TimingConstraint};
use optpower_tech::Linearization;

use crate::grid::{Grid, GridPoint};
use crate::pool::{par_map_indexed, Workers};
use crate::result::{EvalRecord, ResultSet};

/// Configuration of one exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExploreConfig {
    /// Worker-count policy.
    pub workers: Workers,
    /// Search window handed to every per-point optimiser call.
    pub optimizer: OptimizerConfig,
}

impl ExploreConfig {
    /// An explicit worker count with the default optimiser window.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: Workers::Fixed(workers),
            ..Self::default()
        }
    }
}

/// Memoised per-technology calibration shared by every worker.
///
/// Building a [`PowerModel`] refits the Eq. 7 linearisation — a
/// 701-sample least-squares fit that depends *only* on the
/// technology's `α`. A grid with `T` technologies, `A` architectures
/// and `F` frequencies would refit it `T·A·F` times; the cache fits
/// once per distinct `α` up front and hands out copies. Because the
/// fit is a pure function of `α`, cached models are bit-identical to
/// individually built ones (asserted by the engine equivalence tests).
#[derive(Debug, Clone, Default)]
pub struct CalibrationCache {
    linearizations: HashMap<u64, Result<Linearization, ModelError>>,
}

impl CalibrationCache {
    /// Pre-fits the linearisation for every distinct `α` in the grid's
    /// technology axis.
    pub fn for_grid(grid: &Grid) -> Self {
        let mut linearizations = HashMap::new();
        for tech in grid.technologies() {
            linearizations
                .entry(tech.alpha().to_bits())
                .or_insert_with(|| {
                    Linearization::fit_paper_range(tech.alpha()).map_err(ModelError::Numeric)
                });
        }
        Self { linearizations }
    }

    /// Number of distinct `α` values cached.
    pub fn len(&self) -> usize {
        self.linearizations.len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.linearizations.is_empty()
    }

    /// The cached fit for `alpha`, falling back to fitting on the spot
    /// for values the grid axis did not cover.
    fn linearization(&self, alpha: f64) -> Result<Linearization, ModelError> {
        match self.linearizations.get(&alpha.to_bits()) {
            Some(cached) => cached.clone(),
            None => Linearization::fit_paper_range(alpha).map_err(ModelError::Numeric),
        }
    }
}

/// Evaluates one grid point with the shared calibration cache —
/// exactly the computation of `optpower::sweep::sample_at`, with the
/// linearisation fit served from the cache instead of refitted.
fn evaluate_point(
    point: &GridPoint<'_>,
    cache: &CalibrationCache,
    optimizer: &OptimizerConfig,
) -> EvalRecord {
    let constraint =
        TimingConstraint::from_technology(point.tech, point.arch.logical_depth(), point.frequency);
    let result = cache.linearization(constraint.alpha()).and_then(|lin| {
        PowerModel::with_linearization(
            *point.tech,
            point.arch.clone(),
            point.frequency,
            constraint,
            lin,
        )?
        .optimize_with(*optimizer)
    });
    EvalRecord {
        tech: point.tech.name(),
        arch: point.arch.name().to_string(),
        frequency: point.frequency,
        outcome: SweepOutcome::classify(result, optimizer),
    }
}

/// Explores the whole grid in parallel and collects the results in
/// grid order.
///
/// Work is sharded point-by-point across the worker pool (stealing, so
/// expensive interior optimisations and cheap pinned points balance
/// out), repeated `(tech, arch)` calibrations are served from a
/// [`CalibrationCache`], and the output is independent of the worker
/// count — bit-identical to a serial evaluation of the same grid.
pub fn explore(grid: &Grid, config: &ExploreConfig) -> ResultSet {
    let cache = CalibrationCache::for_grid(grid);
    let workers = config.workers.resolve(grid.len());
    let records = par_map_indexed(grid.len(), workers, |i| {
        evaluate_point(&grid.point(i), &cache, &config.optimizer)
    });
    ResultSet::new(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower::sweep::sample_at;
    use optpower::ArchParams;
    use optpower_tech::{Flavor, Technology};
    use optpower_units::{Farads, Hertz};

    fn small_grid() -> Grid {
        let arch = |name: &str, cells, act, ld| {
            ArchParams::builder(name)
                .cells(cells)
                .activity(act)
                .logical_depth(ld)
                .cap_per_cell(Farads::new(60e-15))
                .build()
                .unwrap()
        };
        Grid::builder()
            .technologies([
                Technology::stm_cmos09(Flavor::LowLeakage),
                Technology::stm_cmos09(Flavor::HighSpeed),
            ])
            .architectures([arch("w", 729, 0.2976, 17.0), arch("r", 608, 0.5056, 61.0)])
            .frequencies([Hertz::new(1e6), Hertz::new(31.25e6), Hertz::new(200e6)])
            .build()
            .unwrap()
    }

    #[test]
    fn engine_matches_serial_sample_at_bitwise() {
        let grid = small_grid();
        let rs = explore(&grid, &ExploreConfig::with_workers(3));
        assert_eq!(rs.len(), grid.len());
        for (record, point) in rs.records().iter().zip(grid.points()) {
            let serial = sample_at(*point.tech, point.arch, point.frequency);
            assert_eq!(record.frequency, serial.frequency);
            assert_eq!(record.outcome, serial.outcome, "at index {}", point.index);
            assert_eq!(record.tech, point.tech.name());
            assert_eq!(record.arch, point.arch.name());
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = small_grid();
        let reference = explore(&grid, &ExploreConfig::with_workers(1));
        for workers in [2, 5, 16] {
            let rs = explore(&grid, &ExploreConfig::with_workers(workers));
            assert_eq!(rs, reference, "workers = {workers}");
        }
    }

    #[test]
    fn cache_holds_one_fit_per_distinct_alpha() {
        let grid = small_grid();
        let cache = CalibrationCache::for_grid(&grid);
        let mut alphas: Vec<u64> = grid
            .technologies()
            .iter()
            .map(|t| t.alpha().to_bits())
            .collect();
        alphas.sort_unstable();
        alphas.dedup();
        assert_eq!(cache.len(), alphas.len());
        assert!(!cache.is_empty());
        // Cache misses still produce the right fit.
        let lin = cache.linearization(1.5).unwrap();
        assert_eq!(lin, Linearization::fit_paper_range(1.5).unwrap());
    }

    #[test]
    fn custom_optimizer_window_is_respected() {
        let grid = small_grid();
        let mut config = ExploreConfig::with_workers(2);
        // A window so narrow every optimum pins at a wall.
        config.optimizer.vdd_min = optpower_units::Volts::new(1.30);
        config.optimizer.vdd_max = optpower_units::Volts::new(1.44);
        let rs = explore(&grid, &config);
        assert_eq!(rs.summary().closed, 0);
        assert_eq!(rs.summary().boundary_pinned, grid.len());
    }
}
