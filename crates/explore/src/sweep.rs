//! Parallel counterparts of the serial sweeps in `optpower::sweep`.
//!
//! Both functions delegate the per-point computation to the *same*
//! primitives the serial versions use (`sample_at`, `optimal_ptot`,
//! `TechnologyRanking::from_pairs`), so their results are bit-identical
//! to the serial path for every worker count — the pool only changes
//! who computes each point, never what is computed.

use optpower::sweep::{
    log_frequency_axis, optimal_ptot, sample_at, FrequencySample, TechnologyRanking,
};
use optpower::{ArchParams, ModelError};
use optpower_tech::Technology;
use optpower_units::Hertz;

use crate::pool::{par_map, Workers};

/// Parallel version of [`optpower::sweep::frequency_sweep`]: sweeps
/// the optimal working point of `(tech, arch)` across a logarithmic
/// frequency range, sharding the frequencies over the worker pool.
///
/// # Errors
///
/// [`ModelError::InvalidFrequency`] if the range is non-positive or
/// inverted — the same contract as the serial sweep.
pub fn parallel_frequency_sweep(
    tech: Technology,
    arch: &ArchParams,
    f_lo: Hertz,
    f_hi: Hertz,
    points: usize,
    workers: Workers,
) -> Result<Vec<FrequencySample>, ModelError> {
    let freqs = log_frequency_axis(f_lo, f_hi, points)?;
    let n = workers.resolve(freqs.len());
    Ok(par_map(&freqs, n, |&f| sample_at(tech, arch, f)))
}

/// Parallel version of [`optpower::sweep::rank_technologies`]: ranks
/// `techs` by optimal total power for `(arch, f)`, optimising each
/// technology on its own worker.
pub fn parallel_rank_technologies(
    techs: &[Technology],
    arch: &ArchParams,
    f: Hertz,
    workers: Workers,
) -> TechnologyRanking {
    let n = workers.resolve(techs.len());
    let pairs = par_map(techs, n, |t| {
        optimal_ptot(*t, arch, f).map(|p| (t.name(), p))
    });
    TechnologyRanking::from_pairs(pairs.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower::sweep::{frequency_sweep, rank_technologies};
    use optpower_tech::Flavor;
    use optpower_units::Farads;

    fn wallace_arch() -> ArchParams {
        let c = 56.69e-6 / (729.0 * 0.2976 * 31.25e6 * 0.372 * 0.372);
        ArchParams::builder("Wallace")
            .cells(729)
            .activity(0.2976)
            .logical_depth(17.0)
            .cap_per_cell(Farads::new(c))
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let tech = Technology::stm_cmos09(Flavor::LowLeakage);
        let arch = wallace_arch();
        let (lo, hi) = (Hertz::new(1e6), Hertz::new(10e9));
        let serial = frequency_sweep(tech, &arch, lo, hi, 14).unwrap();
        for workers in [1, 2, 8] {
            let par =
                parallel_frequency_sweep(tech, &arch, lo, hi, 14, Workers::Fixed(workers)).unwrap();
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_sweep_rejects_bad_range() {
        let err = parallel_frequency_sweep(
            Technology::stm_cmos09(Flavor::LowLeakage),
            &wallace_arch(),
            Hertz::new(10e6),
            Hertz::new(1e6),
            4,
            Workers::Auto,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidFrequency { .. }));
    }

    #[test]
    fn parallel_ranking_matches_serial() {
        let techs = [
            Technology::stm_cmos09(Flavor::UltraLowLeakage),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Technology::stm_cmos09(Flavor::HighSpeed),
        ];
        let arch = wallace_arch();
        for f_hz in [0.2e6, 31.25e6, 200e6] {
            let serial = rank_technologies(&techs, &arch, Hertz::new(f_hz));
            for workers in [1, 2, 8] {
                let par = parallel_rank_technologies(
                    &techs,
                    &arch,
                    Hertz::new(f_hz),
                    Workers::Fixed(workers),
                );
                assert_eq!(
                    par.ranking, serial.ranking,
                    "f = {f_hz}, workers = {workers}"
                );
            }
        }
    }
}
