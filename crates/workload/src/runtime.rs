//! The single execution engine behind every workload: a [`Runtime`]
//! owns the `optpower-explore` worker [`Pool`] and turns any
//! [`JobSpec`] into an [`Artifact`].
//!
//! One rule governs the whole module: **the pool is handed in, never
//! constructed ad hoc per flow.** Each job draws its parallelism from
//! the runtime's pool (specs may pin an explicit worker count for
//! their own run), and because every underlying flow is
//! worker-count-invariant, the artifact payload is a pure function of
//! the spec.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use optpower_explore::{available_workers, Pool, Workers};
use optpower_mult::Architecture;
use optpower_netlist::{Library, Netlist};
use optpower_report::ablation;
use optpower_report::extended::{scaling_study_parallel, sensitivity_report_parallel};
use optpower_report::{
    characterize_design_with, characterize_parallel_with, figure1, figure2, figure34,
    figure_pareto, glitch_sweep_from_rows, table1_names, table1_parallel, table1_subset_parallel,
    table3, table4, AbInitioRow, CharacterizeConfig, GlitchSweep, PlaneTiling, TIMED_LANES,
};
use optpower_sim::{measure_activity, Engine, VcdRecorder, ZeroDelaySim};
use optpower_sta::{GlitchProfile, LintReport, TimingAnalysis};
use optpower_tech::{Flavor, Technology};
use optpower_units::Hertz;

use crate::artifact::{
    Artifact, CacheStatus, ExportListing, FlavorRow, LintSummary, Payload, PruneDeltaRow,
    RowCacheStats, RunMeta, StaRow,
};
use crate::error::{SpecError, WorkloadError};
use crate::spec::{
    engine_name, fnv1a_64, AbInitioSpec, GlitchSweepSpec, JobSpec, LintSpec, PruneDeltaSpec,
    StaSpec,
};

/// Console title of the Table 1 artifact (the legacy binary's).
pub const TABLE1_TITLE: &str = "Table 1 - 16-bit multipliers at the optimal working point \
                                (ST LL, 31.25 MHz)\n(p) = paper columns; bare = this reproduction";
/// Console title of the Table 3 artifact.
pub const TABLE3_TITLE: &str = "Table 3 - Wallace family optimal power, ULL flavour (31.25 MHz)";
/// Console title of the Table 4 artifact.
pub const TABLE4_TITLE: &str = "Table 4 - Wallace family optimal power, HS flavour (31.25 MHz)";

/// A bounded, content-addressed artifact cache keyed by
/// [`JobSpec::canonical_key`]. Shared by handle: clones see (and
/// fill) the same store, which is how every executor thread of the
/// job service shares one cache through cloned [`Runtime`]s.
///
/// Eviction is FIFO on insertion order — artifacts are immutable
/// pure functions of their spec, so recency carries no correctness
/// weight and FIFO keeps eviction O(1) with no per-hit bookkeeping.
/// Each entry stores the spec's canonical JSON alongside the
/// artifact and a hit re-checks it, so a 64-bit FNV collision
/// degrades to a miss instead of serving the wrong artifact.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    inner: Arc<Mutex<CacheInner>>,
}

#[derive(Debug)]
struct CacheInner {
    entries: HashMap<String, CacheEntry>,
    order: VecDeque<String>,
    capacity: usize,
}

#[derive(Debug)]
struct CacheEntry {
    canonical_json: String,
    artifact: Artifact,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            })),
        }
    }

    /// Artifacts currently resident.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a spec up by key, verifying the stored canonical JSON so
    /// a hash collision reads as a miss.
    fn lookup(&self, key: &str, canonical_json: &str) -> Option<Artifact> {
        let inner = self.lock();
        let entry = inner.entries.get(key)?;
        (entry.canonical_json == canonical_json).then(|| entry.artifact.clone())
    }

    /// Inserts an artifact, evicting the oldest entry over capacity.
    fn insert(&self, key: String, canonical_json: String, artifact: &Artifact) {
        let mut inner = self.lock();
        if inner.entries.contains_key(&key) {
            // A racing executor computed the same spec first; keep its
            // entry (the payloads are identical by determinism).
            return;
        }
        while inner.entries.len() >= inner.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.entries.remove(&oldest);
                }
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.entries.insert(
            key,
            CacheEntry {
                canonical_json,
                artifact: artifact.clone(),
            },
        );
    }

    /// A poisoned lock only means a panic mid-insert on another
    /// thread; the map itself is still structurally sound, so the
    /// cache keeps serving rather than cascading the panic.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The incremental re-simulation cache: individual [`AbInitioRow`]s
/// content-addressed by everything that decides one architecture's
/// characterization result — architecture, operand width, timed
/// lanes, baseline engine, resolved plane tiling, stimulus volume,
/// seed and technology flavour (see [`row_key`]). Where the
/// [`ArtifactCache`] only short-circuits byte-identical *specs*, this
/// cache lets *different* jobs that overlap on per-architecture
/// measurements (an ab-initio sweep, then an STA job with a measured
/// leg over a subset of the same architectures) skip the shared
/// simulations row by row.
///
/// Same sharing, eviction and collision story as [`ArtifactCache`]:
/// shared by handle, FIFO eviction, and the full key string stored
/// alongside each entry so a 64-bit FNV collision degrades to a miss.
#[derive(Debug, Clone)]
pub struct RowCache {
    inner: Arc<Mutex<RowCacheInner>>,
}

#[derive(Debug)]
struct RowCacheInner {
    entries: HashMap<u64, RowEntry>,
    order: VecDeque<u64>,
    capacity: usize,
}

#[derive(Debug)]
struct RowEntry {
    key: String,
    row: AbInitioRow,
}

impl RowCache {
    /// A cache holding at most `capacity` rows (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RowCacheInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            })),
        }
    }

    /// Rows currently resident.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: &str) -> Option<AbInitioRow> {
        let inner = self.lock();
        let entry = inner.entries.get(&fnv1a_64(key.as_bytes()))?;
        (entry.key == key).then(|| entry.row.clone())
    }

    fn insert(&self, key: String, row: &AbInitioRow) {
        let mut inner = self.lock();
        let hash = fnv1a_64(key.as_bytes());
        if inner.entries.contains_key(&hash) {
            return;
        }
        while inner.entries.len() >= inner.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.entries.remove(&oldest);
                }
                None => break,
            }
        }
        inner.order.push_back(hash);
        inner.entries.insert(
            hash,
            RowEntry {
                key,
                row: row.clone(),
            },
        );
    }

    fn lock(&self) -> MutexGuard<'_, RowCacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The content address of one architecture's characterization under a
/// given config: every field that decides the measured row, nothing
/// that doesn't (`workers` is pure scheduling). The baseline leg is
/// keyed by its *resolved* `(engine, per-lane items)` pair on top of
/// the raw `(baseline, items)` — the raw pair still matters because
/// the timed leg derives its per-lane volume from raw `items`.
fn row_key(
    arch: Architecture,
    flavor: Flavor,
    config: &CharacterizeConfig,
) -> Result<String, WorkloadError> {
    let (resolved_engine, resolved_items) = config.resolved_baseline()?;
    Ok(format!(
        "arch={};flavor={};width={};lanes={};baseline={};items={};plane={}x{};seed={}",
        arch.paper_name(),
        flavor.abbreviation(),
        config.width,
        config.lanes,
        engine_name(config.baseline),
        config.items,
        engine_name(resolved_engine),
        resolved_items,
        config.seed,
    ))
}

/// Executes [`JobSpec`]s on one shared worker pool.
#[derive(Debug, Clone)]
pub struct Runtime {
    pool: Pool,
    artifact_dir: PathBuf,
    cache: Option<ArtifactCache>,
    row_cache: Option<RowCache>,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new(Workers::Auto)
    }
}

impl Runtime {
    /// A runtime whose pool uses `workers`, writing side-effect
    /// artifacts (the export job) under `target/optpower-artifacts`.
    pub fn new(workers: Workers) -> Self {
        Self::with_pool(Pool::new(workers))
    }

    /// A runtime on an existing pool handle.
    pub fn with_pool(pool: Pool) -> Self {
        Self {
            pool,
            artifact_dir: PathBuf::from("target/optpower-artifacts"),
            cache: None,
            row_cache: None,
        }
    }

    /// Overrides the directory side-effect artifacts are written to.
    pub fn with_artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = dir.into();
        self
    }

    /// Attaches a fresh content-addressed artifact cache holding at
    /// most `capacity` artifacts, plus the incremental [`RowCache`]
    /// behind it (sized at one full 13-architecture sweep per
    /// artifact slot). Once attached, every [`Runtime::run`] stamps
    /// `meta.cache` and identical specs (by canonical JSON — key
    /// order and float spelling don't matter) are served from the
    /// artifact cache, while characterizing jobs additionally reuse
    /// any per-architecture rows a *different* spec already computed
    /// (stamped in `meta.row_cache`). Cloned runtimes share both
    /// stores.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ArtifactCache::new(capacity));
        self.row_cache = Some(RowCache::new(
            capacity.saturating_mul(Architecture::ALL.len()),
        ));
        self
    }

    /// The attached artifact cache, if any.
    pub fn cache(&self) -> Option<&ArtifactCache> {
        self.cache.as_ref()
    }

    /// The attached incremental row cache, if any.
    pub fn row_cache(&self) -> Option<&RowCache> {
        self.row_cache.as_ref()
    }

    /// The worker pool jobs draw parallelism from.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The directory side-effect artifacts are written to.
    pub fn artifact_dir(&self) -> &Path {
        &self.artifact_dir
    }

    /// Executes one job, returning its artifact.
    ///
    /// With a cache attached (see [`Runtime::with_cache`]) the spec's
    /// canonical key is consulted first: a hit returns the stored
    /// artifact with `meta.cache = hit` and the lookup's own wall
    /// time; a miss executes, stamps `meta.cache = miss` and inserts.
    /// Batch members recurse through this method, so each member is
    /// cached (and served) individually too. The export job is cached
    /// like any other: a hit returns the original listing — the files
    /// it names were written by the miss that populated the entry.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] — the single error surface of every workload.
    pub fn run(&self, spec: &JobSpec) -> Result<Artifact, WorkloadError> {
        let Some(cache) = &self.cache else {
            return self.execute(spec, None);
        };
        if let Some(artifact) = self.cache_lookup(spec) {
            return Ok(artifact);
        }
        let artifact = self.execute(spec, Some(CacheStatus::Miss))?;
        cache.insert(spec.canonical_key(), spec.canonical_json(), &artifact);
        Ok(artifact)
    }

    /// Serves a spec straight from the attached cache, if resident:
    /// the stored artifact with `meta.cache = hit` and the lookup's
    /// wall time. `None` when no cache is attached or the spec hasn't
    /// run yet. The job service uses this at admission so hits never
    /// occupy a queue slot.
    pub fn cache_lookup(&self, spec: &JobSpec) -> Option<Artifact> {
        let started = Instant::now();
        let cache = self.cache.as_ref()?;
        let mut artifact = cache.lookup(&spec.canonical_key(), &spec.canonical_json())?;
        artifact.meta.cache = Some(CacheStatus::Hit);
        artifact.meta.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        Some(artifact)
    }

    /// The uncached execution path behind [`Runtime::run`].
    fn execute(
        &self,
        spec: &JobSpec,
        cache_status: Option<CacheStatus>,
    ) -> Result<Artifact, WorkloadError> {
        let started = Instant::now();
        let workers = self.pool.policy();
        // Filled in by the characterizing arms when a row cache is
        // attached; `None` keeps every other job's envelope unchanged.
        let mut row_stats: Option<RowCacheStats> = None;
        let (payload, meta_seed, meta_engine, meta_workers) = match spec {
            JobSpec::Table1Sweep { archs } => (
                Payload::Rows {
                    title: TABLE1_TITLE.to_string(),
                    rows: match archs {
                        None => table1_parallel(workers)?,
                        Some(names) => {
                            resolve_table1_names(names)?;
                            table1_subset_parallel(names, workers)?
                        }
                    },
                },
                None,
                None,
                resolved(workers),
            ),
            JobSpec::Table2 => (
                Payload::Flavors(
                    Flavor::ALL
                        .iter()
                        .map(|&flavor| {
                            let tech = Technology::stm_cmos09(flavor);
                            FlavorRow {
                                flavor: flavor.abbreviation(),
                                vdd_nom_v: tech.vdd_nom().value(),
                                vth0_nom_v: tech.vth0_nom().value(),
                                io_ua: tech.io().value() * 1e6,
                                zeta_pf: tech.zeta().value() * 1e12,
                                alpha: tech.alpha(),
                                n: tech.n(),
                            }
                        })
                        .collect(),
                ),
                None,
                None,
                1,
            ),
            JobSpec::Table3 => (
                Payload::Rows {
                    title: TABLE3_TITLE.to_string(),
                    rows: table3()?,
                },
                None,
                None,
                1,
            ),
            JobSpec::Table4 => (
                Payload::Rows {
                    title: TABLE4_TITLE.to_string(),
                    rows: table4()?,
                },
                None,
                None,
                1,
            ),
            JobSpec::ScalingStudy { frequencies_mhz } => (
                Payload::Scaling {
                    unscaled: scaling_study_parallel(frequencies_mhz, false, workers)?,
                    scaled: scaling_study_parallel(frequencies_mhz, true, workers)?,
                },
                None,
                None,
                resolved(workers),
            ),
            JobSpec::Sensitivity => (
                Payload::Sensitivity(sensitivity_report_parallel(workers)?),
                None,
                None,
                resolved(workers),
            ),
            JobSpec::Ablation { items, seed } => (
                Payload::Ablation {
                    alpha: 1.86,
                    fit: ablation::fit_range_sensitivity(1.86)?,
                    optimizer: ablation::optimizer_ablation()?,
                    glitch: ablation::glitch_ablation(*items, *seed)?,
                },
                Some(*seed),
                None,
                1,
            ),
            JobSpec::AbInitio(s) => {
                let job_workers = job_workers(workers, s.workers);
                (
                    Payload::AbInitio(self.characterize(s, job_workers, &mut row_stats)?),
                    Some(s.seed),
                    Some(engine_name(s.engine)),
                    resolved(job_workers),
                )
            }
            JobSpec::GlitchSweep(s) => {
                let job_workers = job_workers(workers, s.workers);
                (
                    Payload::Glitch(self.glitch_sweep(s, job_workers, &mut row_stats)?),
                    Some(s.seed),
                    Some(engine_name(s.engine)),
                    resolved(job_workers),
                )
            }
            JobSpec::ActivityMeasure(s) => {
                let arch = arch_by_name(&s.arch)?;
                if !arch.supports_width(s.width) {
                    return Err(width_error(arch, s.width));
                }
                let design = arch
                    .generate(s.width)
                    .expect("supported widths generate structurally valid netlists");
                lint_preflight(&design.netlist)?;
                let report = measure_activity(
                    &design.netlist,
                    &Library::cmos13(),
                    s.engine,
                    s.items,
                    design.cycles_per_item,
                    s.warmup,
                    s.seed,
                )?;
                (
                    Payload::Activity {
                        spec: s.clone(),
                        report,
                    },
                    Some(s.seed),
                    Some(engine_name(s.engine)),
                    1,
                )
            }
            JobSpec::Figure1 { samples } => (Payload::Figure1(figure1(*samples)?), None, None, 1),
            JobSpec::Figure2 { samples } => (Payload::Figure2(figure2(*samples)?), None, None, 1),
            JobSpec::Figure34 { width, items } => {
                (Payload::Figure34(figure34(*width, *items)?), None, None, 1)
            }
            JobSpec::Pareto { freq_points } => (
                Payload::Pareto(figure_pareto(*freq_points, workers)?),
                None,
                None,
                resolved(workers),
            ),
            JobSpec::Export => (Payload::Export(self.export()?), None, None, 1),
            JobSpec::Lint(s) => (Payload::Lint(lint_job(s)?), None, None, 1),
            JobSpec::Sta(s) => {
                let job_workers = job_workers(workers, s.workers);
                (
                    Payload::Sta(self.sta_job(s, job_workers, &mut row_stats)?),
                    Some(s.seed),
                    (s.items > 0).then_some("timed"),
                    resolved(job_workers),
                )
            }
            JobSpec::PruneDelta(s) => {
                let job_workers = job_workers(workers, s.workers);
                (
                    Payload::PruneDelta(prune_delta_job(s, job_workers)?),
                    Some(s.seed),
                    Some("timed"),
                    resolved(job_workers),
                )
            }
            JobSpec::Batch(jobs) => {
                let artifacts = jobs
                    .iter()
                    .map(|job| self.run(job))
                    .collect::<Result<Vec<_>, _>>()?;
                (Payload::Batch(artifacts), None, None, resolved(workers))
            }
        };
        Ok(Artifact {
            spec: spec.clone(),
            payload,
            meta: RunMeta {
                seed: meta_seed,
                workers: meta_workers,
                engine: meta_engine,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                cache: cache_status,
                row_cache: row_stats,
                dist: None,
            },
        })
    }

    /// [`characterize_parallel_with`] behind the incremental row
    /// cache: resident architectures are served as-is (bit-identical
    /// by determinism), the rest are characterized in one pooled call
    /// and inserted. Without an attached cache this is a plain
    /// pass-through and `stats` stays `None`; with one, `stats`
    /// accumulates hits and misses across every call of the job.
    fn cached_characterize(
        &self,
        archs: &[Architecture],
        flavor: Flavor,
        config: &CharacterizeConfig,
        stats: &mut Option<RowCacheStats>,
    ) -> Result<Vec<AbInitioRow>, WorkloadError> {
        let Some(cache) = &self.row_cache else {
            return Ok(characterize_parallel_with(archs, flavor, config)?);
        };
        let stats = stats.get_or_insert_with(RowCacheStats::default);
        let keys = archs
            .iter()
            .map(|&arch| row_key(arch, flavor, config))
            .collect::<Result<Vec<_>, _>>()?;
        let mut slots: Vec<Option<AbInitioRow>> = keys.iter().map(|k| cache.lookup(k)).collect();
        let missing: Vec<Architecture> = archs
            .iter()
            .zip(&slots)
            .filter(|(_, slot)| slot.is_none())
            .map(|(&arch, _)| arch)
            .collect();
        stats.hits += (archs.len() - missing.len()) as u64;
        stats.misses += missing.len() as u64;
        if !missing.is_empty() {
            // Results come back in `missing` order; `archs` has no
            // duplicates (the spec layer rejects them), so matching by
            // architecture restores input order.
            for row in characterize_parallel_with(&missing, flavor, config)? {
                let i = archs
                    .iter()
                    .position(|&a| a == row.arch)
                    .expect("characterization returns only requested architectures");
                cache.insert(keys[i].clone(), &row);
                slots[i] = Some(row);
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every architecture is either cached or recomputed"))
            .collect())
    }

    /// Ab-initio characterization for a spec: resolve the architecture
    /// subset, then run [`characterize_parallel_with`] on the pool
    /// (through the row cache when one is attached).
    fn characterize(
        &self,
        s: &AbInitioSpec,
        workers: Workers,
        stats: &mut Option<RowCacheStats>,
    ) -> Result<Vec<AbInitioRow>, WorkloadError> {
        let archs = resolve_archs(&s.archs)?;
        for &arch in &archs {
            if !arch.supports_width(s.width) {
                return Err(width_error(arch, s.width));
            }
            lint_preflight(&arch.generate(s.width)?.netlist)?;
        }
        let config = CharacterizeConfig {
            width: s.width,
            lanes: s.lanes,
            baseline: s.engine,
            plane: s.plane,
            items: s.items,
            seed: s.seed,
            workers,
        };
        self.cached_characterize(&archs, Flavor::LowLeakage, &config, stats)
    }

    /// The glitch-aware sweep over the spec's operand-width axis:
    /// characterize per width, concatenate the rows (width-qualified
    /// axis names keep them distinct), sweep once.
    fn glitch_sweep(
        &self,
        s: &GlitchSweepSpec,
        workers: Workers,
        stats: &mut Option<RowCacheStats>,
    ) -> Result<GlitchSweep, WorkloadError> {
        if s.widths.is_empty() {
            return Err(SpecError::new("\"widths\" must not be empty").into());
        }
        if let Some(dup) = first_duplicate(&s.widths) {
            // A repeated width would characterize everything twice and
            // alias two identically named rows on the sweep axis.
            return Err(SpecError::new(format!("\"widths\" lists {dup} more than once")).into());
        }
        let archs = resolve_archs(&s.archs)?;
        let mut rows = Vec::new();
        for &width in &s.widths {
            // With an explicit arch list an unsupported width is an
            // error; with the default (all thirteen) the axis narrows
            // to the architectures that exist at that width.
            let subset: Vec<Architecture> = if s.archs.is_some() {
                for &arch in &archs {
                    if !arch.supports_width(width) {
                        return Err(width_error(arch, width));
                    }
                }
                archs.clone()
            } else {
                archs
                    .iter()
                    .copied()
                    .filter(|a| a.supports_width(width))
                    .collect()
            };
            if subset.is_empty() {
                return Err(SpecError::new(format!(
                    "no requested architecture supports width {width}"
                ))
                .into());
            }
            for &arch in &subset {
                lint_preflight(&arch.generate(width)?.netlist)?;
            }
            let config = CharacterizeConfig {
                width,
                lanes: s.lanes,
                baseline: s.engine,
                plane: s.plane,
                items: s.items,
                seed: s.seed,
                workers,
            };
            rows.extend(self.cached_characterize(&subset, Flavor::LowLeakage, &config, stats)?);
        }
        Ok(glitch_sweep_from_rows(rows, s.freq_points, workers)?)
    }

    /// The structural export job: Verilog + DOT per architecture and a
    /// short RCA VCD trace, written under the artifact directory.
    fn export(&self) -> Result<ExportListing, WorkloadError> {
        let dir = &self.artifact_dir;
        std::fs::create_dir_all(dir)
            .map_err(|e| WorkloadError::io(dir.display().to_string(), e))?;
        let mut files = Vec::new();
        let mut write = |name: String, contents: String| -> Result<(), WorkloadError> {
            let path = dir.join(&name);
            std::fs::write(&path, contents)
                .map_err(|e| WorkloadError::io(path.display().to_string(), e))?;
            files.push(name);
            Ok(())
        };
        for arch in Architecture::ALL {
            let design = arch.generate(16)?;
            let stem = design.netlist.name().to_string();
            write(
                format!("{stem}.v"),
                optpower_netlist::to_verilog(&design.netlist),
            )?;
            write(
                format!("{stem}.dot"),
                optpower_netlist::to_dot(&design.netlist, |_| None),
            )?;
        }
        // A short VCD trace of the basic RCA multiplying random
        // operands (same stimulus as the legacy export binary).
        let design = Architecture::Rca.generate(16)?;
        let mut sim = ZeroDelaySim::new(&design.netlist);
        let mut vcd = VcdRecorder::all_nets(&design.netlist);
        for i in 0..32u64 {
            sim.set_input_bits("a", (i * 2654435761) & 0xFFFF);
            sim.set_input_bits("b", (i * 40503) & 0xFFFF);
            sim.step();
            vcd.sample(&sim);
        }
        write("rca.vcd".to_string(), vcd.finish())?;
        Ok(ExportListing {
            dir: dir.display().to_string(),
            files,
        })
    }
}

/// The runtime's preflight: structural lint before any simulation,
/// failing with the typed [`WorkloadError::Lint`] on error-severity
/// diagnostics (warnings pass). Generating a netlist is orders of
/// magnitude cheaper than simulating it, so the gate is effectively
/// free next to the jobs it protects.
fn lint_preflight(netlist: &Netlist) -> Result<(), WorkloadError> {
    let report = LintReport::lint(netlist);
    if report.gate().is_err() {
        return Err(WorkloadError::Lint {
            netlist: netlist.name().to_string(),
            report,
        });
    }
    Ok(())
}

/// The lint job: one report per (architecture, width). `widths: None`
/// is the CI gate shape — every width each architecture supports.
fn lint_job(s: &LintSpec) -> Result<Vec<LintSummary>, WorkloadError> {
    let archs = resolve_archs(&s.archs)?;
    if let Some(ws) = &s.widths {
        if ws.is_empty() {
            return Err(SpecError::new("\"widths\" must not be empty").into());
        }
        if let Some(dup) = first_duplicate(ws) {
            return Err(SpecError::new(format!("\"widths\" lists {dup} more than once")).into());
        }
    }
    let mut out = Vec::new();
    for &arch in &archs {
        // Same semantics as the glitch sweep: explicit arch list +
        // unsupported width is an error; the default (all thirteen)
        // narrows to the widths each architecture exists at.
        let widths: Vec<usize> = match &s.widths {
            Some(ws) if s.archs.is_some() => {
                for &w in ws {
                    if !arch.supports_width(w) {
                        return Err(width_error(arch, w));
                    }
                }
                ws.clone()
            }
            Some(ws) => ws
                .iter()
                .copied()
                .filter(|&w| arch.supports_width(w))
                .collect(),
            None => (2..=32).filter(|&w| arch.supports_width(w)).collect(),
        };
        for width in widths {
            let design = arch.generate(width)?;
            out.push(LintSummary {
                arch: arch.paper_name().to_string(),
                width,
                report: LintReport::lint(&design.netlist),
            });
        }
    }
    Ok(out)
}

impl Runtime {
    /// The STA job: integer-tick windows, path statistics and the
    /// static glitch bound per architecture; when `items > 0` a
    /// measured timed leg runs on the pool (through the row cache
    /// when one is attached — an earlier characterization sweep over
    /// the same measurement shape hands its rows over for free) and
    /// each row carries the simulated glitch factor for the
    /// static-vs-measured correlation.
    fn sta_job(
        &self,
        s: &StaSpec,
        workers: Workers,
        stats: &mut Option<RowCacheStats>,
    ) -> Result<Vec<StaRow>, WorkloadError> {
        let archs = resolve_archs(&s.archs)?;
        for &arch in &archs {
            if !arch.supports_width(s.width) {
                return Err(width_error(arch, s.width));
            }
        }
        let measured: Vec<(Architecture, f64, f64)> = if s.items > 0 {
            let config = CharacterizeConfig {
                width: s.width,
                lanes: s.lanes,
                baseline: Engine::BitParallel,
                plane: PlaneTiling::Fixed(64),
                items: s.items,
                seed: s.seed,
                workers,
            };
            self.cached_characterize(&archs, Flavor::LowLeakage, &config, stats)?
                .iter()
                .map(|r| (r.arch, r.glitch_factor(), r.activity))
                .collect()
        } else {
            Vec::new()
        };
        let lib = Library::cmos13();
        let mut rows = Vec::new();
        for &arch in &archs {
            let design = arch.generate(s.width)?;
            lint_preflight(&design.netlist)?;
            let sta = TimingAnalysis::try_analyze(&design.netlist, &lib)?;
            let glitch = GlitchProfile::compute(&design.netlist, &sta);
            let critical_path_cells = sta
                .critical_path(&design.netlist, &lib)
                .map(|p| p.cells.len())
                .unwrap_or(0);
            rows.push(StaRow {
                arch: arch.paper_name().to_string(),
                width: s.width,
                cells: design.netlist.logic_cell_count(),
                stride_ticks: sta.stride(),
                logical_depth: sta.logical_depth(),
                shortest_path: sta.shortest_endpoint_path(),
                path_spread: sta.path_spread(),
                mean_input_skew: sta.mean_input_skew(),
                critical_path_cells,
                static_glitch_factor: glitch.static_glitch_factor(),
                measured_glitch_factor: measured
                    .iter()
                    .find(|(a, _, _)| *a == arch)
                    .map(|&(_, g, _)| g),
                // Activity is per data item; the per-cycle cell bound
                // scales by the item's cycle count.
                static_activity_bound: glitch.mean_cell_bound() * f64::from(design.cycles_per_item),
                measured_activity: measured
                    .iter()
                    .find(|(a, _, _)| *a == arch)
                    .map(|&(_, _, a)| a),
            });
        }
        Ok(rows)
    }
}

/// The dead-cone prune delta job: per (architecture, width), generate
/// the raw (pre-prune) and production (pruned) netlists and push both
/// through the identical timed characterization + power optimisation
/// flow at the paper's working point (ST LL, 31.25 MHz). The raw leg
/// deliberately skips the lint preflight — surfacing what the dead
/// cones cost is the point — while the pruned leg keeps it as the
/// invariant check.
fn prune_delta_job(
    s: &PruneDeltaSpec,
    workers: Workers,
) -> Result<Vec<PruneDeltaRow>, WorkloadError> {
    if s.widths.is_empty() {
        return Err(SpecError::new("\"widths\" must not be empty").into());
    }
    if let Some(dup) = first_duplicate(&s.widths) {
        return Err(SpecError::new(format!("\"widths\" lists {dup} more than once")).into());
    }
    let archs = resolve_archs(&s.archs)?;
    let lib = Library::cmos13();
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let freq = Hertz::new(31.25e6);
    let mut rows = Vec::new();
    for &width in &s.widths {
        // Same width semantics as the glitch sweep: explicit arch list
        // + unsupported width is an error; the default (all thirteen)
        // narrows to the architectures that exist at that width.
        let subset: Vec<Architecture> = if s.archs.is_some() {
            for &arch in &archs {
                if !arch.supports_width(width) {
                    return Err(width_error(arch, width));
                }
            }
            archs.clone()
        } else {
            archs
                .iter()
                .copied()
                .filter(|a| a.supports_width(width))
                .collect()
        };
        if subset.is_empty() {
            return Err(SpecError::new(format!(
                "no requested architecture supports width {width}"
            ))
            .into());
        }
        let config = CharacterizeConfig {
            width,
            lanes: TIMED_LANES,
            baseline: Engine::BitParallel,
            plane: PlaneTiling::Fixed(64),
            items: s.items,
            seed: s.seed,
            workers,
        };
        // Deliberately bypasses the row cache: the raw and pruned legs
        // of one architecture share every key field, so caching would
        // serve one leg's row for the other.
        for &arch in &subset {
            let raw = arch.generate_raw(width)?;
            let pruned = arch.generate(width)?;
            lint_preflight(&pruned.netlist)?;
            let before = characterize_design_with(&raw, &lib, tech, freq, &config)?;
            let after = characterize_design_with(&pruned, &lib, tech, freq, &config)?;
            rows.push(PruneDeltaRow {
                arch: arch.paper_name().to_string(),
                width,
                cells_before: raw.netlist.logic_cell_count(),
                cells_after: pruned.netlist.logic_cell_count(),
                dffs_before: raw.netlist.dff_count(),
                dffs_after: pruned.netlist.dff_count(),
                activity_before: before.activity,
                activity_after: after.activity,
                ptot_uw_before: before.ptot_uw,
                ptot_uw_after: after.ptot_uw,
            });
        }
    }
    Ok(rows)
}

/// A spec-level worker override wins over the runtime pool's policy.
fn job_workers(pool: Workers, over: Option<usize>) -> Workers {
    match over {
        Some(n) => Workers::Fixed(n),
        None => pool,
    }
}

/// The concrete worker count recorded in run metadata.
pub(crate) fn resolved(workers: Workers) -> usize {
    match workers {
        Workers::Auto => available_workers(),
        Workers::Fixed(n) => n.max(1),
    }
}

/// Looks one architecture up by paper name, as a typed error.
fn arch_by_name(name: &str) -> Result<Architecture, WorkloadError> {
    Architecture::from_paper_name(name).ok_or_else(|| {
        SpecError::new(format!(
            "unknown architecture {name:?} (Table 1 paper names expected)"
        ))
        .into()
    })
}

/// Validates an explicit Table 1 row-name list: non-empty, every name
/// a published row, no duplicates. The same vocabulary
/// [`JobSpec::shard`] splits along, so shard specs re-validate on the
/// worker exactly as the coordinator resolved them.
pub(crate) fn resolve_table1_names(names: &[String]) -> Result<(), WorkloadError> {
    if names.is_empty() {
        return Err(SpecError::new("\"archs\" must not be an empty list").into());
    }
    let known = table1_names();
    for name in names {
        if !known.contains(&name.as_str()) {
            return Err(SpecError::new(format!(
                "unknown architecture {name:?} (Table 1 paper names expected)"
            ))
            .into());
        }
    }
    if let Some(dup) = first_duplicate_by(names) {
        return Err(SpecError::new(format!("\"archs\" lists {dup:?} more than once")).into());
    }
    Ok(())
}

/// [`first_duplicate`] for non-`Copy` values.
fn first_duplicate_by<T: PartialEq>(items: &[T]) -> Option<&T> {
    items
        .iter()
        .enumerate()
        .find(|(i, v)| items[..*i].contains(v))
        .map(|(_, v)| v)
}

/// The first value appearing more than once, if any.
pub(crate) fn first_duplicate<T: PartialEq + Copy>(items: &[T]) -> Option<T> {
    items
        .iter()
        .enumerate()
        .find(|(i, v)| items[..*i].contains(v))
        .map(|(_, &v)| v)
}

/// Resolves paper names to architectures (`None` = all thirteen).
/// Duplicate names are rejected — they would silently double-count
/// every downstream aggregate. Shared with [`JobSpec::shard`] and the
/// shard merge, which must reproduce the runtime's resolution order.
pub(crate) fn resolve_archs(
    names: &Option<Vec<String>>,
) -> Result<Vec<Architecture>, WorkloadError> {
    match names {
        None => Ok(Architecture::ALL.to_vec()),
        Some(names) => {
            if names.is_empty() {
                return Err(SpecError::new("\"archs\" must not be an empty list").into());
            }
            let archs = names
                .iter()
                .map(|name| {
                    Architecture::from_paper_name(name).ok_or_else(|| {
                        SpecError::new(format!(
                            "unknown architecture {name:?} (Table 1 paper names expected)"
                        ))
                        .into()
                    })
                })
                .collect::<Result<Vec<_>, WorkloadError>>()?;
            if let Some(dup) = first_duplicate(&archs) {
                return Err(SpecError::new(format!(
                    "\"archs\" lists {:?} more than once",
                    dup.paper_name()
                ))
                .into());
            }
            Ok(archs)
        }
    }
}

pub(crate) fn width_error(arch: Architecture, width: usize) -> WorkloadError {
    SpecError::new(format!(
        "{} does not support operand width {width} \
         (arrays/trees: 2..=32; sequential family: power of two >= 4)",
        arch.paper_name()
    ))
    .into()
}
