//! A minimal, dependency-free JSON value with a strict parser and a
//! deterministic writer — the wire format of [`crate::JobSpec`] and
//! the [`crate::Artifact`] envelope.
//!
//! The workspace is offline (no `serde`), so the workload layer
//! carries its own JSON implementation, sized to exactly what the wire
//! format needs:
//!
//! * **lossless round-trips** — unsigned integers up to `u64::MAX`
//!   survive (a `seed` is a full `u64`; shoving it through `f64` would
//!   corrupt anything above 2⁵³), and floats are written with Rust's
//!   shortest-round-trip formatting (`{:?}`), so
//!   `parse(write(v)) == v` bit for bit;
//! * **total ordering of object keys is the writer's insertion
//!   order** — specs serialize field-by-field in a fixed order, so the
//!   same spec always produces the same bytes (golden-file friendly);
//! * **strict parsing** — trailing garbage, unterminated strings,
//!   invalid escapes and over-deep nesting are errors with a byte
//!   offset, not silent acceptance.

use core::fmt;

/// Maximum nesting depth the parser accepts — ample for any spec
/// (batches nest one level per `Batch`), small enough that a
/// pathological input cannot overflow the stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins on
    /// lookup, all are preserved on write).
    Obj(Vec<(String, Json)>),
}

/// A parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float value; non-finite floats become `null` (JSON has no
    /// literal for them).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Member lookup on an object (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an exact `u64` (integral floats qualify).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            // `u64::MAX as f64` rounds up to 2^64, which does not fit —
            // hence the strict bound.
            Json::Num(v) if v >= 0.0 && v < u64::MAX as f64 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as an `f64` (exact integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialises the value compactly (no whitespace), appending to
    /// `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(u) => {
                out.push_str(&u.to_string());
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let s = format!("{v:?}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// `Display` is the compact serialisation — `json.to_string()` is the
/// wire form.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a JSON string literal with the mandatory escapes.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                // Raw byte: strings are slices of valid UTF-8, so
                // multi-byte sequences pass through unmodified.
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync on char boundaries: push the whole char.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = core::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            core::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty()
            || text == "-"
            || integral_end == start + usize::from(text.starts_with('-'))
        {
            return Err(JsonError {
                offset: start,
                message: "invalid number".to_string(),
            });
        }
        if !is_float && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: "invalid number".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("writer output parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Num(-1.5),
            Json::Num(core::f64::consts::PI),
            Json::Num(1e300),
            Json::str("hello"),
            Json::str("esc \" \\ \n \t \u{1} π€"),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn u64_integers_are_exact() {
        // 2^53 + 1 is not representable in f64 — the UInt arm keeps it.
        let big = (1u64 << 53) + 1;
        let v = Json::UInt(big);
        assert_eq!(v.to_string(), big.to_string());
        assert_eq!(roundtrip(&v).as_u64(), Some(big));
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::UInt(1), Json::Null, Json::str("x")]),
            ),
            ("b", Json::obj([("nested", Json::Bool(false))])),
            ("n", Json::Num(0.25)),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(
            v.to_string(),
            r#"{"a":[1,null,"x"],"b":{"nested":false},"n":0.25}"#
        );
    }

    #[test]
    fn lookup_and_accessors() {
        let v = Json::parse(r#"{"s":"t","u":7,"f":1.5,"b":true,"arr":[1,2],"z":null}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("u").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(v.get("z").is_some_and(Json::is_null));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn integral_floats_convert_to_u64() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn whitespace_and_unicode_escapes_parse() {
        let v = Json::parse(" { \"k\" : [ 1 ,\t\"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("é😀"));
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} extra",
            "nul",
            "\"\\q\"",
            "\"\\ud800x\"",
            "-",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // 40 levels is fine.
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
