//! Legacy shim: `ab_initio` now forwards to the declarative workload
//! runtime; stdout is byte-identical to the retired bespoke binary.
use std::process::ExitCode;

fn main() -> ExitCode {
    optpower_workload::cli::legacy_main("ab_initio")
}
