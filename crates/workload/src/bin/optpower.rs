//! The single CLI over every workload: `optpower run <spec.json>`,
//! `optpower list`, `optpower table1`, `optpower ab-initio
//! --glitch-sweep`, … — see `optpower help`.
use std::process::ExitCode;

fn main() -> ExitCode {
    optpower_workload::cli::main_with_args(std::env::args().skip(1).collect())
}
