#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cli;
pub mod error;
pub mod json;
pub mod merge;
pub mod runtime;
pub mod shard;
pub mod spec;
pub mod wire;

pub use artifact::{
    Artifact, CacheStatus, DistMeta, ExportListing, FlavorRow, LintSummary, Payload, PruneDeltaRow,
    RowCacheStats, RunMeta, StaRow, ARTIFACT_SCHEMA,
};
pub use error::{SpecError, WorkloadError};
pub use json::{Json, JsonError};
pub use runtime::{ArtifactCache, RowCache, Runtime};
pub use spec::{
    engine_from_name, engine_name, fnv1a_64, AbInitioSpec, ActivitySpec, GlitchSweepSpec, JobSpec,
    LintSpec, PruneDeltaSpec, StaSpec, JOB_KINDS, JOB_SCHEMA,
};
pub use wire::{
    intern_error_code, reason_phrase, status_json, ErrorBody, JobRequest, JobResponse, ShardFrame,
    ShardResult, SubmitMode, WireFormat, ERROR_SCHEMA, SHARD_SCHEMA, STATUS_SCHEMA,
};
