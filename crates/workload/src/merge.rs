//! Reassembling shard artifacts into the single-host envelope.
//!
//! The inverse of [`JobSpec::shard`]: given the artifacts the shard
//! specs produced — in *any* order — rebuild the artifact the
//! unsharded spec would have produced, bit for bit. Two properties
//! carry the whole module:
//!
//! * **typed reconstruction** — shard payloads are re-parsed into the
//!   real row types ([`AbInitioRow`], [`RowComparison`]), and because
//!   the JSON writer uses shortest-round-trip float formatting,
//!   `parse(write(x)) == x` exactly, so the merged rendering is
//!   byte-identical to the single-host one;
//! * **spec-derived order** — the merge orders rows by the original
//!   spec's resolution order (the same order [`JobSpec::shard`] cut
//!   along), never by shard arrival order, so a retried or reordered
//!   shard cannot change the output.
//!
//! The underlying combination rules are the worker-count-invariant
//! ones the rest of the workspace already exposes: row union for the
//! characterization grids, [`optpower_sim::ActivityReport::combine`]
//! for pooled activity measurements, and the frequency sweep rebuilt
//! from merged rows via [`glitch_sweep_from_rows`] (whose
//! [`optpower_explore::ResultSet`] grids are themselves concatenations
//! of contiguous slices — see `ResultSet::concat`).

use std::collections::HashMap;

use optpower_explore::Workers;
use optpower_mult::Architecture;
use optpower_report::{glitch_sweep_from_rows, table1_names, AbInitioRow, RowComparison};
use optpower_sim::ActivityReport;

use crate::artifact::{Artifact, Payload, RunMeta, ARTIFACT_SCHEMA};
use crate::error::{SpecError, WorkloadError};
use crate::json::Json;
use crate::runtime::{resolve_archs, resolve_table1_names, resolved, TABLE1_TITLE};
use crate::shard::glitch_cells;
use crate::spec::{engine_name, JobSpec};

impl Artifact {
    /// Merges shard artifacts back into the artifact `spec` would have
    /// produced on one host. `shards` may arrive in any order and may
    /// contain duplicates (a raced retry); rows are keyed by their
    /// grid coordinates and emitted in the spec's own resolution
    /// order, so the merged [`Artifact::payload_json`] /
    /// [`Artifact::to_csv`] / [`Artifact::render_text`] are
    /// byte-identical to the single-host run.
    ///
    /// Meta is rebuilt from the spec (seed/engine as the runtime
    /// stamps them) with `wall_ms` zero and no cache/dist fields — the
    /// coordinator owns those.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] when the shard set does not cover the
    /// spec's grid, covers cells the spec never asked for, or carries
    /// payloads of the wrong kind.
    pub fn merge_shards(
        spec: &JobSpec,
        shards: Vec<Artifact>,
        workers: Workers,
    ) -> Result<Artifact, WorkloadError> {
        let mut meta = RunMeta {
            seed: None,
            workers: resolved(workers),
            engine: None,
            wall_ms: 0.0,
            cache: None,
            row_cache: None,
            dist: None,
        };
        let payload = match spec {
            JobSpec::AbInitio(s) => {
                meta.seed = Some(s.seed);
                meta.engine = Some(engine_name(s.engine));
                let order: Vec<(usize, String)> = resolve_archs(&s.archs)?
                    .iter()
                    .map(|a| (s.width, a.paper_name().to_string()))
                    .collect();
                Payload::AbInitio(collect_rows(&order, shards)?)
            }
            JobSpec::GlitchSweep(s) => {
                meta.seed = Some(s.seed);
                meta.engine = Some(engine_name(s.engine));
                let rows = collect_rows(&glitch_cells(s)?, shards)?;
                Payload::Glitch(glitch_sweep_from_rows(rows, s.freq_points, workers)?)
            }
            JobSpec::Table1Sweep { archs } => {
                let order: Vec<String> = match archs {
                    Some(names) => {
                        resolve_table1_names(names)?;
                        names.clone()
                    }
                    None => table1_names().iter().map(|&s| s.to_string()).collect(),
                };
                let mut by_name: HashMap<String, RowComparison> = HashMap::new();
                for shard in shards {
                    let Payload::Rows { rows, .. } = shard.payload else {
                        return Err(wrong_kind(spec, &shard).into());
                    };
                    for row in rows {
                        by_name.entry(row.name.clone()).or_insert(row);
                    }
                }
                let rows = order
                    .iter()
                    .map(|name| {
                        by_name.remove(name).ok_or_else(|| {
                            SpecError::new(format!("shard results missing row {name:?}"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Payload::Rows {
                    title: TABLE1_TITLE.to_string(),
                    rows,
                }
            }
            JobSpec::ActivityMeasure(s) => {
                meta.seed = Some(s.seed);
                meta.engine = Some(engine_name(s.engine));
                meta.workers = 1;
                let reports = shards
                    .into_iter()
                    .map(|shard| match shard.payload {
                        Payload::Activity { report, .. } => Ok(report),
                        _ => Err(wrong_kind(spec, &shard)),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if reports.is_empty() {
                    return Err(SpecError::new("no shard results to merge").into());
                }
                Payload::Activity {
                    spec: s.clone(),
                    report: ActivityReport::combine(&reports),
                }
            }
            JobSpec::Batch(jobs) => {
                let mut by_key: HashMap<String, Artifact> = HashMap::new();
                for shard in shards {
                    by_key.entry(shard.spec.canonical_key()).or_insert(shard);
                }
                let members = jobs
                    .iter()
                    .map(|job| {
                        by_key.get(&job.canonical_key()).cloned().ok_or_else(|| {
                            SpecError::new(format!(
                                "shard results missing batch member {:?}",
                                job.kind()
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Payload::Batch(members)
            }
            // Indivisible jobs: the single shard IS the artifact.
            _ => {
                let mut shards = shards;
                let shard = match (shards.pop(), shards.is_empty()) {
                    (Some(shard), true) => shard,
                    _ => {
                        return Err(SpecError::new(format!(
                            "job {:?} does not shard; expected exactly one shard result",
                            spec.kind()
                        ))
                        .into())
                    }
                };
                if shard.spec.canonical_key() != spec.canonical_key() {
                    return Err(wrong_kind(spec, &shard).into());
                }
                return Ok(shard);
            }
        };
        Ok(Artifact {
            spec: spec.clone(),
            payload,
            meta,
        })
    }

    /// Re-parses an [`Artifact::payload_json`] document back into a
    /// typed artifact — the coordinator's inverse of the wire
    /// rendering, for the kinds that travel as shards (`ab_initio`,
    /// `table1_sweep`/`table3`/`table4` comparison rows,
    /// `activity_measure`). Numbers round-trip exactly (the writer
    /// uses shortest-round-trip formatting and `null` encodes NaN), so
    /// re-rendering the parsed artifact reproduces the input bytes.
    /// Meta is zeroed: the payload document never carried any.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] on schema mismatch, a kind without a
    /// typed re-parser, or malformed rows.
    pub fn from_payload_json(text: &str) -> Result<Artifact, WorkloadError> {
        let doc = Json::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != ARTIFACT_SCHEMA {
            return Err(SpecError::new(format!(
                "unsupported artifact schema {schema:?} (expected {ARTIFACT_SCHEMA:?})"
            ))
            .into());
        }
        let spec = JobSpec::from_json_value(
            doc.get("spec")
                .ok_or_else(|| SpecError::new("artifact document needs a \"spec\" object"))?,
        )?;
        let payload = doc
            .get("payload")
            .ok_or_else(|| SpecError::new("artifact document needs a \"payload\" field"))?;
        let typed = match &spec {
            JobSpec::AbInitio(_) => Payload::AbInitio(
                rows_array(payload)?
                    .iter()
                    .map(ab_initio_row)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            JobSpec::Table1Sweep { .. } | JobSpec::Table3 | JobSpec::Table4 => {
                let title = payload
                    .get("title")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SpecError::new("rows payload needs a string \"title\""))?
                    .to_string();
                Payload::Rows {
                    title,
                    rows: rows_array(payload)?
                        .iter()
                        .map(comparison_row)
                        .collect::<Result<Vec<_>, _>>()?,
                }
            }
            JobSpec::ActivityMeasure(s) => Payload::Activity {
                spec: s.clone(),
                report: ActivityReport {
                    activity: f64_or_nan(payload, "activity")?,
                    transitions: uint(payload, "transitions")?,
                    items: uint(payload, "measured_items")?,
                    cells: uint(payload, "cells")? as usize,
                },
            },
            other => {
                return Err(SpecError::new(format!(
                    "job kind {:?} has no typed shard re-parser",
                    other.kind()
                ))
                .into())
            }
        };
        Ok(Artifact {
            spec,
            payload: typed,
            meta: RunMeta {
                seed: None,
                workers: 1,
                engine: None,
                wall_ms: 0.0,
                cache: None,
                row_cache: None,
                dist: None,
            },
        })
    }
}

/// Pools ab-initio rows from every shard and emits them in grid
/// order. Duplicate coverage (a raced retry) keeps the first copy —
/// all copies are bit-identical by determinism.
fn collect_rows(
    order: &[(usize, String)],
    shards: Vec<Artifact>,
) -> Result<Vec<AbInitioRow>, WorkloadError> {
    let mut by_cell: HashMap<(usize, String), AbInitioRow> = HashMap::new();
    for shard in shards {
        let Payload::AbInitio(rows) = shard.payload else {
            return Err(SpecError::new(format!(
                "shard for job {:?} returned a non-characterization payload",
                shard.spec.kind()
            ))
            .into());
        };
        for row in rows {
            by_cell
                .entry((row.width, row.arch.paper_name().to_string()))
                .or_insert(row);
        }
    }
    order
        .iter()
        .map(|cell| {
            by_cell.remove(cell).ok_or_else(|| {
                SpecError::new(format!(
                    "shard results missing {} at width {}",
                    cell.1, cell.0
                ))
                .into()
            })
        })
        .collect()
}

fn wrong_kind(spec: &JobSpec, shard: &Artifact) -> SpecError {
    SpecError::new(format!(
        "shard artifact of kind {:?} does not belong to job {:?}",
        shard.spec.kind(),
        spec.kind()
    ))
}

fn rows_array(payload: &Json) -> Result<&[Json], WorkloadError> {
    payload
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| SpecError::new("payload needs a \"rows\" array").into())
}

/// Reads a numeric row field, decoding the writer's `null` as NaN.
fn f64_or_nan(row: &Json, key: &str) -> Result<f64, WorkloadError> {
    match row.get(key) {
        Some(Json::Null) => Ok(f64::NAN),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SpecError::new(format!("row field {key:?} must be a number")).into()),
        None => Err(SpecError::new(format!("row is missing field {key:?}")).into()),
    }
}

fn uint(row: &Json, key: &str) -> Result<u64, WorkloadError> {
    row.get(key).and_then(Json::as_u64).ok_or_else(|| {
        SpecError::new(format!("row field {key:?} must be an unsigned integer")).into()
    })
}

/// One `ab_initio` payload row back to the typed form. The derived
/// `glitch_factor` field is skipped — it re-derives from the parsed
/// activities.
fn ab_initio_row(row: &Json) -> Result<AbInitioRow, WorkloadError> {
    let name = row
        .get("arch")
        .and_then(Json::as_str)
        .ok_or_else(|| SpecError::new("row needs a string \"arch\""))?;
    let arch = Architecture::from_paper_name(name).ok_or_else(|| {
        SpecError::new(format!(
            "unknown architecture {name:?} (Table 1 paper names expected)"
        ))
    })?;
    Ok(AbInitioRow {
        arch,
        width: uint(row, "width")? as usize,
        cells: uint(row, "cells")? as usize,
        area_um2: f64_or_nan(row, "area_um2")?,
        activity: f64_or_nan(row, "activity_timed")?,
        activity_zero_delay: f64_or_nan(row, "activity_zero_delay")?,
        cap_per_cell_f: f64_or_nan(row, "cap_per_cell_f")?,
        ld_eff: f64_or_nan(row, "ld_eff")?,
        vdd: f64_or_nan(row, "vdd_v")?,
        vth: f64_or_nan(row, "vth_v")?,
        ptot_uw: f64_or_nan(row, "ptot_uw")?,
        eq13_uw: f64_or_nan(row, "eq13_uw")?,
    })
}

/// One comparison payload row back to the typed form.
fn comparison_row(row: &Json) -> Result<RowComparison, WorkloadError> {
    Ok(RowComparison {
        name: row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("row needs a string \"name\""))?
            .to_string(),
        paper_vdd: f64_or_nan(row, "paper_vdd_v")?,
        our_vdd: f64_or_nan(row, "vdd_v")?,
        paper_vth: f64_or_nan(row, "paper_vth_v")?,
        our_vth: f64_or_nan(row, "vth_v")?,
        paper_ptot_uw: f64_or_nan(row, "paper_ptot_uw")?,
        our_ptot_uw: f64_or_nan(row, "ptot_uw")?,
        paper_eq13_uw: f64_or_nan(row, "paper_eq13_uw")?,
        our_eq13_uw: f64_or_nan(row, "eq13_uw")?,
        paper_err_pct: f64_or_nan(row, "paper_err_pct")?,
        our_err_pct: f64_or_nan(row, "err_pct")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AbInitioSpec;
    use optpower_explore::Workers;

    /// A synthetic characterization row (no simulation needed: every
    /// field is public and the merge never recomputes).
    fn row(arch: Architecture, width: usize, salt: f64) -> AbInitioRow {
        AbInitioRow {
            arch,
            width,
            cells: 100 + width,
            area_um2: 1234.5 + salt,
            activity: 1.5 + salt,
            activity_zero_delay: 1.1 + salt,
            cap_per_cell_f: 1.9e-15,
            ld_eff: 12.0 + salt,
            vdd: 0.5,
            vth: 0.3,
            ptot_uw: 10.0 + salt,
            eq13_uw: if arch == Architecture::Sequential {
                f64::NAN
            } else {
                9.0 + salt
            },
        }
    }

    fn shard_artifact(spec: JobSpec, payload: Payload) -> Artifact {
        Artifact {
            spec,
            payload,
            meta: RunMeta {
                seed: None,
                workers: 1,
                engine: None,
                wall_ms: 7.0,
                cache: None,
                row_cache: None,
                dist: None,
            },
        }
    }

    /// Shard order never matters: merging in any permutation (and with
    /// a duplicated shard, as after a raced retry) yields byte-equal
    /// renderings.
    #[test]
    fn ab_initio_merge_is_order_invariant() {
        let spec = JobSpec::AbInitio(AbInitioSpec {
            archs: Some(vec![
                "RCA".to_string(),
                "Wallace".to_string(),
                "Sequential".to_string(),
            ]),
            ..AbInitioSpec::default()
        });
        let shards = spec.shard(3).unwrap();
        let make = |i: usize| {
            let JobSpec::AbInitio(s) = &shards[i] else {
                panic!()
            };
            let names = s.archs.as_ref().unwrap();
            let rows = names
                .iter()
                .map(|n| row(Architecture::from_paper_name(n).unwrap(), s.width, i as f64))
                .collect();
            shard_artifact(shards[i].clone(), Payload::AbInitio(rows))
        };
        let forward =
            Artifact::merge_shards(&spec, vec![make(0), make(1), make(2)], Workers::Fixed(1))
                .unwrap();
        let shuffled = Artifact::merge_shards(
            &spec,
            vec![make(2), make(0), make(1), make(0)],
            Workers::Fixed(2),
        )
        .unwrap();
        assert_eq!(forward.payload_json(), shuffled.payload_json());
        assert_eq!(forward.to_csv(), shuffled.to_csv());
        assert_eq!(forward.render_text(), shuffled.render_text());
        // NaN eq13 survives the round trip through the payload parser.
        let reparsed = Artifact::from_payload_json(&forward.payload_json()).unwrap();
        assert_eq!(reparsed.payload_json(), forward.payload_json());
        // A missing architecture is a typed error, not a short table.
        let err = Artifact::merge_shards(&spec, vec![make(0)], Workers::Fixed(1)).unwrap_err();
        assert!(matches!(err, WorkloadError::Spec(_)), "{err:?}");
    }

    /// Table 1 shards reassemble in published-row order regardless of
    /// arrival order, under the full-table spec (`archs: None`).
    #[test]
    fn table1_merge_orders_rows_by_the_published_table() {
        let spec = JobSpec::Table1Sweep { archs: None };
        let shards = spec.shard(4).unwrap();
        let mut artifacts: Vec<Artifact> = shards
            .iter()
            .map(|shard| {
                let JobSpec::Table1Sweep { archs: Some(names) } = shard else {
                    panic!()
                };
                let rows = names
                    .iter()
                    .map(|n| RowComparison {
                        name: n.clone(),
                        paper_vdd: 1.0,
                        our_vdd: 1.0,
                        paper_vth: 0.3,
                        our_vth: 0.3,
                        paper_ptot_uw: 50.0,
                        our_ptot_uw: 51.0,
                        paper_eq13_uw: 49.0,
                        our_eq13_uw: 50.0,
                        paper_err_pct: 2.0,
                        our_err_pct: 2.0,
                    })
                    .collect();
                shard_artifact(
                    shard.clone(),
                    Payload::Rows {
                        title: "partial".to_string(),
                        rows,
                    },
                )
            })
            .collect();
        let forward = Artifact::merge_shards(&spec, artifacts.clone(), Workers::Fixed(1)).unwrap();
        artifacts.reverse();
        let backward = Artifact::merge_shards(&spec, artifacts, Workers::Fixed(1)).unwrap();
        assert_eq!(forward.payload_json(), backward.payload_json());
        assert_eq!(forward.to_csv(), backward.to_csv());
        let Payload::Rows { title, rows } = &forward.payload else {
            panic!()
        };
        assert_eq!(title, TABLE1_TITLE);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, table1_names());
    }

    /// Batch merge maps unique shard results back onto the member
    /// list, cloning for repeated members.
    #[test]
    fn batch_merge_clones_repeated_members() {
        let member = JobSpec::Figure2 { samples: 8 };
        let spec = JobSpec::Batch(vec![member.clone(), JobSpec::Table2, member.clone()]);
        let shards = spec.shard(4).unwrap();
        assert_eq!(shards.len(), 2);
        let results: Vec<Artifact> = shards
            .iter()
            .map(|shard| {
                // Payload contents are irrelevant to the mapping; use
                // an empty batch payload as a stand-in.
                shard_artifact(shard.clone(), Payload::Batch(Vec::new()))
            })
            .collect();
        let merged = Artifact::merge_shards(&spec, results, Workers::Fixed(1)).unwrap();
        let Payload::Batch(members) = &merged.payload else {
            panic!()
        };
        assert_eq!(members.len(), 3);
        assert_eq!(members[0].spec, member);
        assert_eq!(members[2].spec, member);
        assert_eq!(members[1].spec, JobSpec::Table2);
    }

    /// Indivisible jobs round-trip through the merge as a single
    /// shard; a foreign shard or a wrong count is a typed error.
    #[test]
    fn indivisible_jobs_expect_exactly_one_matching_shard() {
        let spec = JobSpec::Table2;
        let ok = shard_artifact(spec.clone(), Payload::Flavors(Vec::new()));
        let merged = Artifact::merge_shards(&spec, vec![ok.clone()], Workers::Fixed(1)).unwrap();
        assert_eq!(merged.spec, spec);
        assert!(Artifact::merge_shards(&spec, Vec::new(), Workers::Fixed(1)).is_err());
        assert!(Artifact::merge_shards(&spec, vec![ok.clone(), ok], Workers::Fixed(1)).is_err());
        let foreign = shard_artifact(JobSpec::Table3, Payload::Flavors(Vec::new()));
        assert!(Artifact::merge_shards(&spec, vec![foreign], Workers::Fixed(1)).is_err());
    }
}
