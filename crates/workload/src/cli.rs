//! The single `optpower` command-line front-end, plus the legacy shim
//! entry points the twelve retired report binaries forward to.
//!
//! ```text
//! optpower list                         # the job catalogue
//! optpower spec <kind>                  # the kind's default JobSpec JSON
//! optpower run <spec.json> [--workers N] [--out DIR] [--json|--csv]
//! optpower <kind> [flags]               # run one kind directly
//! optpower ab-initio --glitch-sweep     # the legacy flag set still works
//! ```
//!
//! `optpower run` is the wire-format path: the file (or `-` for
//! stdin) holds a `optpower-job/v1` JSON spec — exactly what
//! [`crate::JobSpec::to_json`] emits and what a service front-end
//! would POST.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use optpower_explore::Workers;
use optpower_report::{glitch_rows_to_csv, glitch_rows_to_json, GlitchSweep};

use crate::artifact::{Artifact, Payload};
use crate::error::{SpecError, WorkloadError};
use crate::runtime::Runtime;
use crate::spec::{AbInitioSpec, GlitchSweepSpec, JobSpec, JOB_KINDS};
use crate::wire::{ErrorBody, WireFormat};

/// Entry point of the `optpower` binary: parses `args` (without the
/// program name), runs, prints, and maps errors through the frozen
/// wire surface — the exit code is [`ErrorBody::exit_code`] (2 =
/// client error, 3 = job failed, 4 = host failure), the same
/// classification the job service sends as HTTP statuses.
pub fn main_with_args(args: Vec<String>) -> ExitCode {
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let body = ErrorBody::of(&e);
            eprintln!("error: {e}");
            ExitCode::from(body.exit_code())
        }
    }
}

/// Entry point of a legacy shim binary (`table1`, `ab_initio`, …):
/// byte-identical stdout to the retired bespoke binary, arguments
/// included.
pub fn legacy_main(kind: &str) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_legacy(kind, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), WorkloadError> {
    let Some(command) = args.first() else {
        print!("{}", usage());
        return Ok(());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        "list" => {
            println!("job kinds (run one with `optpower run <spec.json>` or `optpower <kind>`):");
            for &(kind, summary) in JOB_KINDS {
                println!("  {kind:<18} {summary}");
            }
            println!("\ndefault specs are printable with `optpower spec <kind>`");
            Ok(())
        }
        "spec" => {
            let kind = args
                .get(1)
                .ok_or_else(|| SpecError::new("usage: optpower spec <kind>"))?;
            let spec = JobSpec::default_for(kind).ok_or_else(|| {
                SpecError::new(format!("unknown job kind {kind:?} (see `optpower list`)"))
            })?;
            println!("{}", spec.to_json());
            Ok(())
        }
        "run" => run_command(&args[1..]),
        "lint" => run_lint(&args[1..]),
        "sta" => run_sta(&args[1..]),
        "prune-delta" => run_prune_delta(&args[1..]),
        // Every legacy binary name (and its kebab-case spelling) is an
        // `optpower` subcommand with the legacy flag set.
        other => {
            let kind = other.replace('-', "_");
            if is_legacy_kind(&kind) {
                run_legacy(&kind, &args[1..])
            } else {
                Err(SpecError::new(format!(
                    "unknown command {other:?}; try `optpower list` or `optpower help`"
                ))
                .into())
            }
        }
    }
}

fn usage() -> String {
    "optpower - declarative workloads over the Schuster et al. (DATE'06) reproduction\n\
     \n\
     usage:\n\
     \x20 optpower list                                   the job catalogue\n\
     \x20 optpower spec <kind>                            print a kind's default JobSpec JSON\n\
     \x20 optpower run <spec.json|-> [--workers N] [--cache N]\n\
     \x20               [--out DIR] [--json] [--csv]      execute a JSON JobSpec\n\
     \x20 optpower lint [--arch NAME]* [--width N]*\n\
     \x20               [--out DIR] [--json] [--csv]      structural netlist lint gate\n\
     \x20 optpower sta  [--arch NAME]* [--width N] [--items N] [--seed N]\n\
     \x20               [--workers N] [--out DIR]\n\
     \x20               [--json] [--csv]                  integer-tick STA + glitch bound\n\
     \x20 optpower prune-delta [--arch NAME]* [--width N]* [--items N] [--seed N]\n\
     \x20               [--workers N] [--out DIR]\n\
     \x20               [--json] [--csv]                  raw-vs-pruned power delta\n\
     \x20 optpower <kind> [flags]                         run one kind with its legacy flags\n\
     \n\
     kinds double as legacy binary names: table1..table4, scaling, sensitivity,\n\
     ablation, figure1, figure2, figure34, ab-initio [--smoke --workers N\n\
     --glitch-sweep --freq-points N], export, pareto [--freq-points N], activity\n\
     [--arch NAME --width N --engine E --items N --seed N]\n"
        .to_string()
}

fn run_command(args: &[String]) -> Result<(), WorkloadError> {
    let mut source: Option<String> = None;
    let mut workers = Workers::Auto;
    let mut cache: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut format = WireFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => workers = Workers::Fixed(parse_count(it.next(), "--workers")?),
            "--cache" => cache = Some(parse_count(it.next(), "--cache")?),
            "--out" => {
                out_dir =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        SpecError::new("--out needs a directory argument")
                    })?));
            }
            "--json" => format = WireFormat::Json,
            "--csv" => format = WireFormat::Csv,
            other if source.is_none() && !other.starts_with("--") => {
                source = Some(other.to_string());
            }
            other => {
                return Err(
                    SpecError::new(format!("unknown `optpower run` argument {other:?}")).into(),
                )
            }
        }
    }
    let source =
        source.ok_or_else(|| SpecError::new("usage: optpower run <spec.json|-> [flags]"))?;
    let text = if source == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| WorkloadError::io("<stdin>", e))?;
        buf
    } else {
        std::fs::read_to_string(&source).map_err(|e| WorkloadError::io(&source, e))?
    };
    let spec = JobSpec::from_json(&text)?;
    let mut runtime = Runtime::new(workers);
    if let Some(capacity) = cache {
        // Batch members recurse through the runtime, so one `--cache`
        // flag gives repeated members artifact-cache hits and
        // overlapping characterizations row-cache hits.
        runtime = runtime.with_cache(capacity);
    }
    let artifact = runtime.run(&spec)?;
    emit(&artifact, format, out_dir.as_deref())
}

/// `optpower lint [--arch NAME]* [--width N]* [--json|--csv] [--out DIR]`.
/// No `--arch` means all 13 architectures; no `--width` means every
/// supported width per architecture (the CI gate shape).
fn run_lint(args: &[String]) -> Result<(), WorkloadError> {
    let mut spec = crate::spec::LintSpec::default();
    let mut format = WireFormat::Text;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--arch" => {
                let name = it
                    .next()
                    .ok_or_else(|| SpecError::new("--arch needs a name"))?;
                spec.archs.get_or_insert_with(Vec::new).push(name.clone());
            }
            "--width" => {
                let w = parse_count(it.next(), "--width")?;
                spec.widths.get_or_insert_with(Vec::new).push(w);
            }
            "--json" => format = WireFormat::Json,
            "--csv" => format = WireFormat::Csv,
            "--out" => out_dir = Some(parse_path(it.next(), "--out")?),
            other => {
                return Err(SpecError::new(format!(
                    "unknown argument {other:?} \
                     (try --arch NAME / --width N / --json / --csv / --out DIR)"
                ))
                .into())
            }
        }
    }
    let artifact = Runtime::new(Workers::Auto).run(&JobSpec::Lint(spec))?;
    emit(&artifact, format, out_dir.as_deref())?;
    // The subcommand is a gate: emit the full report first, then fail
    // the invocation if any netlist carried an error-severity
    // diagnostic, so `optpower lint` works as a CI tripwire.
    if let crate::artifact::Payload::Lint(rows) = &artifact.payload {
        let errors: usize = rows.iter().map(|r| r.report.error_count()).sum();
        if errors > 0 {
            return Err(SpecError::new(format!(
                "lint found {errors} error-severity diagnostic(s); see the report above"
            ))
            .into());
        }
    }
    Ok(())
}

/// `optpower sta [--arch NAME]* [--width N] [--items N] [--seed N]
/// [--workers N] [--json|--csv] [--out DIR]`. `--items 0` skips the
/// measured (timed-simulation) leg and reports static columns only.
fn run_sta(args: &[String]) -> Result<(), WorkloadError> {
    let mut spec = crate::spec::StaSpec::default();
    let mut format = WireFormat::Text;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--arch" => {
                let name = it
                    .next()
                    .ok_or_else(|| SpecError::new("--arch needs a name"))?;
                spec.archs.get_or_insert_with(Vec::new).push(name.clone());
            }
            "--width" => spec.width = parse_count(it.next(), "--width")?,
            "--items" => spec.items = parse_count(it.next(), "--items")? as u64,
            "--seed" => spec.seed = parse_count(it.next(), "--seed")? as u64,
            "--workers" => spec.workers = Some(parse_count(it.next(), "--workers")?),
            "--json" => format = WireFormat::Json,
            "--csv" => format = WireFormat::Csv,
            "--out" => out_dir = Some(parse_path(it.next(), "--out")?),
            other => {
                return Err(SpecError::new(format!(
                    "unknown argument {other:?} (try --arch NAME / --width N / --items N \
                     / --seed N / --workers N / --json / --csv / --out DIR)"
                ))
                .into())
            }
        }
    }
    let artifact = Runtime::new(Workers::Auto).run(&JobSpec::Sta(spec))?;
    emit(&artifact, format, out_dir.as_deref())
}

/// `optpower prune-delta [--arch NAME]* [--width N]* [--items N]
/// [--seed N] [--workers N] [--json|--csv] [--out DIR]`. Explicit
/// `--width` flags replace the default {4, 8, 16, 24, 32} axis.
fn run_prune_delta(args: &[String]) -> Result<(), WorkloadError> {
    let mut spec = crate::spec::PruneDeltaSpec::default();
    let mut widths: Vec<usize> = Vec::new();
    let mut format = WireFormat::Text;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--arch" => {
                let name = it
                    .next()
                    .ok_or_else(|| SpecError::new("--arch needs a name"))?;
                spec.archs.get_or_insert_with(Vec::new).push(name.clone());
            }
            "--width" => widths.push(parse_count(it.next(), "--width")?),
            "--items" => spec.items = parse_count(it.next(), "--items")? as u64,
            "--seed" => spec.seed = parse_count(it.next(), "--seed")? as u64,
            "--workers" => spec.workers = Some(parse_count(it.next(), "--workers")?),
            "--json" => format = WireFormat::Json,
            "--csv" => format = WireFormat::Csv,
            "--out" => out_dir = Some(parse_path(it.next(), "--out")?),
            other => {
                return Err(SpecError::new(format!(
                    "unknown argument {other:?} (try --arch NAME / --width N / --items N \
                     / --seed N / --workers N / --json / --csv / --out DIR)"
                ))
                .into())
            }
        }
    }
    if !widths.is_empty() {
        spec.widths = widths;
    }
    let artifact = Runtime::new(Workers::Auto).run(&JobSpec::PruneDelta(spec))?;
    emit(&artifact, format, out_dir.as_deref())
}

/// Prints the artifact in the chosen format and optionally writes the
/// `<kind>.{json,csv,txt}` triple to `out_dir`.
fn emit(
    artifact: &Artifact,
    format: WireFormat,
    out_dir: Option<&Path>,
) -> Result<(), WorkloadError> {
    match format {
        WireFormat::Text => println!("{}", artifact.render_text()),
        WireFormat::Json => println!("{}", artifact.to_json()),
        WireFormat::Csv => print!("{}", artifact.to_csv()),
    }
    if let Some(dir) = out_dir {
        let written = write_artifact_files(artifact, dir)?;
        eprintln!("wrote {} artifact files to {}", written, dir.display());
    }
    Ok(())
}

/// Writes `<kind>.{json,csv,txt}` for the artifact (batch members get
/// an index prefix, and the batch envelope itself lands in
/// `batch.json`). Returns the number of files written.
pub fn write_artifact_files(artifact: &Artifact, dir: &Path) -> Result<usize, WorkloadError> {
    std::fs::create_dir_all(dir).map_err(|e| WorkloadError::io(dir.display().to_string(), e))?;
    let mut written = 0usize;
    let mut write = |name: String, contents: String| -> Result<(), WorkloadError> {
        let path = dir.join(name);
        std::fs::write(&path, contents)
            .map_err(|e| WorkloadError::io(path.display().to_string(), e))?;
        written += 1;
        Ok(())
    };
    match &artifact.payload {
        Payload::Batch(members) => {
            write("batch.json".to_string(), artifact.to_json())?;
            for (i, member) in members.iter().enumerate() {
                let stem = format!("{:02}_{}", i, member.kind());
                write(format!("{stem}.json"), member.to_json())?;
                write(format!("{stem}.csv"), member.to_csv())?;
                write(format!("{stem}.txt"), member.render_text())?;
            }
        }
        _ => {
            let stem = artifact.kind();
            write(format!("{stem}.json"), artifact.to_json())?;
            write(format!("{stem}.csv"), artifact.to_csv())?;
            write(format!("{stem}.txt"), artifact.render_text())?;
        }
    }
    Ok(written)
}

fn is_legacy_kind(kind: &str) -> bool {
    matches!(
        kind,
        "table1"
            | "table2"
            | "table3"
            | "table4"
            | "scaling"
            | "sensitivity"
            | "ablation"
            | "figure1"
            | "figure2"
            | "figure34"
            | "ab_initio"
            | "export"
            | "pareto"
            | "activity"
    )
}

/// Runs one legacy binary's workload with its legacy argument
/// conventions and prints its exact legacy stdout.
pub fn run_legacy(kind: &str, args: &[String]) -> Result<(), WorkloadError> {
    match kind {
        // The simple binaries took no arguments (and ignored any).
        "table1" => print_spec(&JobSpec::Table1Sweep { archs: None }, Workers::Auto),
        "table2" => print_spec(&JobSpec::Table2, Workers::Auto),
        "table3" => print_spec(&JobSpec::Table3, Workers::Auto),
        "table4" => print_spec(&JobSpec::Table4, Workers::Auto),
        "scaling" => print_spec(
            &JobSpec::default_for("scaling_study").expect("known kind"),
            Workers::Auto,
        ),
        "sensitivity" => print_spec(&JobSpec::Sensitivity, Workers::Auto),
        "ablation" => print_spec(
            &JobSpec::default_for("ablation").expect("known kind"),
            Workers::Auto,
        ),
        "figure1" => print_spec(&JobSpec::Figure1 { samples: 256 }, Workers::Auto),
        "figure2" => print_spec(&JobSpec::Figure2 { samples: 601 }, Workers::Auto),
        "figure34" => print_spec(
            &JobSpec::Figure34 {
                width: 16,
                items: 200,
            },
            Workers::Auto,
        ),
        "export" => print_spec(&JobSpec::Export, Workers::Auto),
        "pareto" => {
            let mut freq_points = 9usize;
            let mut workers = Workers::Auto;
            let mut it = args.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--freq-points" => freq_points = parse_count(it.next(), "--freq-points")?,
                    "--workers" => workers = Workers::Fixed(parse_count(it.next(), "--workers")?),
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown argument {other:?} (try --freq-points N / --workers N)"
                        ))
                        .into())
                    }
                }
            }
            print_spec(&JobSpec::Pareto { freq_points }, workers)
        }
        "activity" => {
            let mut spec = crate::spec::ActivitySpec::default();
            let mut it = args.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--arch" => {
                        spec.arch = it
                            .next()
                            .ok_or_else(|| SpecError::new("--arch needs a name"))?
                            .clone();
                    }
                    "--width" => spec.width = parse_count(it.next(), "--width")?,
                    "--engine" => {
                        let name = it
                            .next()
                            .ok_or_else(|| SpecError::new("--engine needs a name"))?;
                        spec.engine = crate::spec::engine_from_name(name).ok_or_else(|| {
                            SpecError::new(format!(
                                "unknown engine {name:?} \
                                 (zero_delay | timed | timed_scalar | bit_parallel \
                                 | bit_parallel_256 | bit_parallel_512)"
                            ))
                        })?;
                    }
                    "--items" => spec.items = parse_count(it.next(), "--items")? as u64,
                    "--seed" => spec.seed = parse_count(it.next(), "--seed")? as u64,
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown argument {other:?} \
                             (try --arch NAME / --width N / --engine E / --items N / --seed N)"
                        ))
                        .into())
                    }
                }
            }
            print_spec(&JobSpec::ActivityMeasure(spec), Workers::Auto)
        }
        "ab_initio" => run_legacy_ab_initio(args),
        other => Err(SpecError::new(format!("unknown legacy binary {other:?}")).into()),
    }
}

/// The legacy `ab_initio` flag set, faithfully: `--smoke`,
/// `--workers N`, `--glitch-sweep`, `--freq-points N`. Unknown
/// arguments panic with the legacy message (the old binary did).
fn run_legacy_ab_initio(args: &[String]) -> Result<(), WorkloadError> {
    let mut smoke = false;
    let mut glitch_sweep = false;
    let mut freq_points: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--glitch-sweep" => glitch_sweep = true,
            "--freq-points" => freq_points = Some(parse_count(it.next(), "--freq-points")?),
            "--workers" => workers = Some(parse_count(it.next(), "--workers")?),
            other => panic!(
                "unknown argument {other:?} \
                 (try --smoke / --workers N / --glitch-sweep / --freq-points N)"
            ),
        }
    }
    let base = if smoke {
        AbInitioSpec::smoke()
    } else {
        AbInitioSpec::default()
    };
    let runtime = Runtime::new(Workers::Auto);
    if !glitch_sweep {
        let spec = JobSpec::AbInitio(AbInitioSpec { workers, ..base });
        println!("{}", runtime.run(&spec)?.render_text());
        return Ok(());
    }
    let spec = JobSpec::GlitchSweep(GlitchSweepSpec {
        archs: base.archs,
        widths: vec![16],
        lanes: base.lanes,
        engine: base.engine,
        plane: base.plane,
        items: base.items,
        seed: base.seed,
        freq_points: freq_points.unwrap_or(if smoke { 3 } else { 9 }),
        workers,
    });
    let artifact = runtime.run(&spec)?;
    println!("{}", artifact.render_text());
    let Payload::Glitch(sweep) = &artifact.payload else {
        unreachable!("glitch_sweep jobs produce Payload::Glitch")
    };
    let dir = runtime.artifact_dir().to_path_buf();
    write_legacy_glitch_artifacts(sweep, &dir)?;
    println!(
        "wrote glitch characterization + sweep CSV/JSON to {}",
        dir.display()
    );
    Ok(())
}

/// Writes the six legacy `ab_initio --glitch-sweep` artifact files.
pub fn write_legacy_glitch_artifacts(sweep: &GlitchSweep, dir: &Path) -> Result<(), WorkloadError> {
    std::fs::create_dir_all(dir).map_err(|e| WorkloadError::io(dir.display().to_string(), e))?;
    let write = |name: &str, contents: String| -> Result<(), WorkloadError> {
        let path = dir.join(name);
        std::fs::write(&path, contents)
            .map_err(|e| WorkloadError::io(path.display().to_string(), e))
    };
    write("abinitio_glitch.csv", glitch_rows_to_csv(&sweep.rows))?;
    write("abinitio_glitch.json", glitch_rows_to_json(&sweep.rows))?;
    write("sweep_glitch_aware.csv", sweep.glitch_aware.to_csv())?;
    write("sweep_glitch_aware.json", sweep.glitch_aware.to_json())?;
    write("sweep_glitch_free.csv", sweep.glitch_free.to_csv())?;
    write("sweep_glitch_free.json", sweep.glitch_free.to_json())?;
    Ok(())
}

fn print_spec(spec: &JobSpec, workers: Workers) -> Result<(), WorkloadError> {
    let artifact = Runtime::new(workers).run(spec)?;
    println!("{}", artifact.render_text());
    Ok(())
}

fn parse_count(arg: Option<&String>, flag: &str) -> Result<usize, WorkloadError> {
    arg.and_then(|v| v.parse().ok())
        .ok_or_else(|| SpecError::new(format!("{flag} needs an unsigned integer")).into())
}

fn parse_path(arg: Option<&String>, flag: &str) -> Result<PathBuf, WorkloadError> {
    arg.map(PathBuf::from)
        .ok_or_else(|| SpecError::new(format!("{flag} needs a directory argument")).into())
}
