//! The unified workload error: every job kind — model solving,
//! simulation, netlist generation, spec parsing, artifact IO — fails
//! with one [`WorkloadError`], so callers (the CLI, a future service
//! front-end) handle exactly one error surface.

use core::fmt;

use optpower::ModelError;
use optpower_netlist::NetlistError;
use optpower_report::AbInitioError;
use optpower_sim::SimError;

/// A malformed or invalid job specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What was wrong.
    pub message: String,
}

impl SpecError {
    /// A spec error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid job spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Any failure of declaring, executing or persisting a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// Power-model building, calibration or optimisation failed.
    Model(ModelError),
    /// The ab-initio flow failed (carries the failing architecture
    /// for simulation errors).
    AbInitio(AbInitioError),
    /// A simulation engine rejected or aborted a netlist.
    Sim(SimError),
    /// Netlist generation or validation failed.
    Netlist(NetlistError),
    /// The lint preflight found error-severity diagnostics: the
    /// netlist would simulate to meaningless numbers.
    Lint {
        /// Name of the rejected netlist.
        netlist: String,
        /// The full lint report (error and warning diagnostics).
        report: optpower_sta::LintReport,
    },
    /// The job specification was malformed or invalid.
    Spec(SpecError),
    /// Reading a spec or writing an artifact failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying IO error.
        source: std::io::Error,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Model(e) => write!(f, "model failure: {e}"),
            Self::AbInitio(e) => write!(f, "ab-initio flow failure: {e}"),
            Self::Sim(e) => write!(f, "simulation failure: {e}"),
            Self::Netlist(e) => write!(f, "netlist failure: {e}"),
            Self::Lint { netlist, report } => {
                write!(
                    f,
                    "lint rejected netlist '{netlist}' ({} error(s)):",
                    report.error_count()
                )?;
                for d in report
                    .diagnostics()
                    .iter()
                    .filter(|d| d.rule.severity() == optpower_sta::Severity::Error)
                {
                    write!(f, " [{} {}] {};", d.rule.id(), d.rule.name(), d.message)?;
                }
                Ok(())
            }
            Self::Spec(e) => write!(f, "{e}"),
            Self::Io { path, source } => write!(f, "io failure at {path}: {source}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::AbInitio(e) => Some(e),
            Self::Sim(e) => Some(e),
            Self::Netlist(e) => Some(e),
            Self::Lint { .. } => None,
            Self::Spec(e) => Some(e),
            Self::Io { source, .. } => Some(source),
        }
    }
}

impl From<ModelError> for WorkloadError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<AbInitioError> for WorkloadError {
    fn from(e: AbInitioError) -> Self {
        Self::AbInitio(e)
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<NetlistError> for WorkloadError {
    fn from(e: NetlistError) -> Self {
        Self::Netlist(e)
    }
}

impl From<SpecError> for WorkloadError {
    fn from(e: SpecError) -> Self {
        Self::Spec(e)
    }
}

impl WorkloadError {
    /// Wraps an IO error with the path it occurred at.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources_are_wired() {
        let cases: Vec<WorkloadError> = vec![
            ModelError::InvalidFrequency { hertz: 0.0 }.into(),
            SpecError::new("bad field").into(),
            WorkloadError::io("/tmp/x", std::io::Error::other("boom")),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some());
        }
    }
}
