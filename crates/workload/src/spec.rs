//! The declarative job specification: every workload of the
//! reproduction as one serializable value.
//!
//! A [`JobSpec`] is the unit the [`crate::Runtime`] executes and the
//! wire format a future service front-end consumes verbatim: it
//! round-trips **losslessly** through JSON
//! (`JobSpec::from_json(&spec.to_json()) == spec`, locked by proptests
//! at the workspace level), and a spec plus a seed fully determines
//! the [`crate::Artifact`] payload — worker counts only change
//! wall-clock, never bytes.
//!
//! The JSON envelope is schema-versioned:
//!
//! ```json
//! {"schema":"optpower-job/v1","job":"ab_initio","width":16,"lanes":8,
//!  "engine":"bit_parallel","items":200,"seed":42,"workers":null,"archs":null}
//! ```

use optpower_report::PlaneTiling;
use optpower_sim::Engine;

use crate::error::{SpecError, WorkloadError};
use crate::json::Json;

/// Schema tag of the JobSpec wire format.
pub const JOB_SCHEMA: &str = "optpower-job/v1";

/// Simulation-engine choice on the wire (`zero_delay`, `timed`,
/// `timed_scalar`, `bit_parallel`, `bit_parallel_256`,
/// `bit_parallel_512`).
pub fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::ZeroDelay => "zero_delay",
        Engine::Timed => "timed",
        Engine::TimedScalar => "timed_scalar",
        Engine::BitParallel => "bit_parallel",
        Engine::BitParallel256 => "bit_parallel_256",
        Engine::BitParallel512 => "bit_parallel_512",
    }
}

/// Parses an engine wire name (the inverse of [`engine_name`]).
pub fn engine_from_name(name: &str) -> Option<Engine> {
    match name {
        "zero_delay" => Some(Engine::ZeroDelay),
        "timed" => Some(Engine::Timed),
        "timed_scalar" => Some(Engine::TimedScalar),
        "bit_parallel" => Some(Engine::BitParallel),
        "bit_parallel_256" => Some(Engine::BitParallel256),
        "bit_parallel_512" => Some(Engine::BitParallel512),
        _ => None,
    }
}

/// Ab-initio characterization spec (Table 1′): architectures are paper
/// names (`None` = all thirteen), the rest is the measurement
/// definition of [`optpower_report::CharacterizeConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct AbInitioSpec {
    /// Paper names of the architectures to characterize; `None` = all.
    pub archs: Option<Vec<String>>,
    /// Operand width in bits.
    pub width: usize,
    /// Stimulus lanes of the pooled timed (glitch) leg.
    pub lanes: u32,
    /// Glitch-free baseline engine (`bit_parallel` or `zero_delay`).
    pub engine: Engine,
    /// Plane tiling of the glitch-free baseline leg: `plane_lanes` on
    /// the wire, 64/256/512 or `"auto"` (default `Fixed(64)`, the
    /// legacy-identical measurement).
    pub plane: PlaneTiling,
    /// Random-stimulus volume per architecture.
    pub items: u64,
    /// Base stimulus seed.
    pub seed: u64,
    /// Worker override for this job; `None` = the runtime's pool.
    pub workers: Option<usize>,
}

impl Default for AbInitioSpec {
    fn default() -> Self {
        Self {
            archs: None,
            width: 16,
            lanes: optpower_report::TIMED_LANES,
            engine: Engine::BitParallel,
            plane: PlaneTiling::Fixed(64),
            items: 200,
            seed: 42,
            workers: None,
        }
    }
}

impl AbInitioSpec {
    /// The CI smoke shape: one array and one sequential architecture
    /// at a reduced stimulus volume (the legacy `--smoke` flag).
    pub fn smoke() -> Self {
        Self {
            archs: Some(vec!["RCA".to_string(), "Sequential".to_string()]),
            items: 60,
            ..Self::default()
        }
    }
}

/// Glitch-aware design-space sweep spec: characterize over an operand
/// **width axis** (strictly more expressive than the legacy
/// `--glitch-sweep` flag, which was pinned to 16 bits), then sweep the
/// measured parameters over all three flavours × a log frequency axis,
/// glitch-aware vs glitch-free.
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchSweepSpec {
    /// Paper names of the architectures to characterize; `None` = all
    /// (widths the sequential family cannot generate at are rejected
    /// at run time with a typed error).
    pub archs: Option<Vec<String>>,
    /// Operand widths to characterize at (e.g. `[8, 16, 24, 32]`).
    pub widths: Vec<usize>,
    /// Stimulus lanes of the pooled timed leg.
    pub lanes: u32,
    /// Glitch-free baseline engine.
    pub engine: Engine,
    /// Plane tiling of the glitch-free baseline leg (`plane_lanes` on
    /// the wire, as in [`AbInitioSpec`]).
    pub plane: PlaneTiling,
    /// Random-stimulus volume per architecture and width.
    pub items: u64,
    /// Base stimulus seed.
    pub seed: u64,
    /// Frequency-axis resolution of the sweep.
    pub freq_points: usize,
    /// Worker override for this job; `None` = the runtime's pool.
    pub workers: Option<usize>,
}

impl Default for GlitchSweepSpec {
    fn default() -> Self {
        Self {
            archs: None,
            widths: vec![16],
            lanes: optpower_report::TIMED_LANES,
            engine: Engine::BitParallel,
            plane: PlaneTiling::Fixed(64),
            items: 200,
            seed: 42,
            freq_points: 9,
            workers: None,
        }
    }
}

/// One activity measurement: an architecture, an engine, a stimulus
/// definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySpec {
    /// Paper name of the architecture.
    pub arch: String,
    /// Operand width in bits.
    pub width: usize,
    /// Which engine measures.
    pub engine: Engine,
    /// Data items measured (excluding warm-up).
    pub items: u64,
    /// Warm-up items, simulated but not counted.
    pub warmup: u64,
    /// Stimulus seed.
    pub seed: u64,
}

impl Default for ActivitySpec {
    fn default() -> Self {
        Self {
            arch: "RCA".to_string(),
            width: 16,
            engine: Engine::Timed,
            items: 200,
            warmup: 4,
            seed: 42,
        }
    }
}

/// Netlist lint spec: run the structural rules of
/// `optpower_sta::LintReport` over generated architectures, one
/// report per (architecture, width).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintSpec {
    /// Paper names of the architectures to lint; `None` = all.
    pub archs: Option<Vec<String>>,
    /// Operand widths to lint at; `None` = every width the
    /// architecture supports (the CI gate shape).
    pub widths: Option<Vec<usize>>,
}

/// Static-timing-analysis spec: integer-tick arrival windows, path
/// statistics and the static glitch bound per architecture, with an
/// optional measured-glitch leg for the static-vs-measured
/// correlation artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct StaSpec {
    /// Paper names of the architectures to analyze; `None` = all.
    pub archs: Option<Vec<String>>,
    /// Operand width in bits.
    pub width: usize,
    /// Stimulus lanes of the measured (timed pooled) leg.
    pub lanes: u32,
    /// Stimulus volume of the measured leg; `0` skips simulation
    /// entirely and reports static numbers only.
    pub items: u64,
    /// Base stimulus seed of the measured leg.
    pub seed: u64,
    /// Worker override for this job; `None` = the runtime's pool.
    pub workers: Option<usize>,
}

impl Default for StaSpec {
    fn default() -> Self {
        Self {
            archs: None,
            width: 16,
            lanes: optpower_report::TIMED_LANES,
            items: 120,
            seed: 42,
            workers: None,
        }
    }
}

/// Dead-cone prune before/after comparison spec: characterize the raw
/// (as-emitted) and pruned form of each (architecture, width) so the
/// power correction of the prune is quantified — cell counts, measured
/// activity and Table-1 power, old vs new.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneDeltaSpec {
    /// Paper names of the architectures to compare; `None` = all
    /// (widths an architecture cannot generate at are skipped).
    pub archs: Option<Vec<String>>,
    /// Operand widths to compare at.
    pub widths: Vec<usize>,
    /// Random-stimulus volume per characterization leg.
    pub items: u64,
    /// Base stimulus seed.
    pub seed: u64,
    /// Worker override for this job; `None` = the runtime's pool.
    pub workers: Option<usize>,
}

impl Default for PruneDeltaSpec {
    fn default() -> Self {
        Self {
            archs: None,
            widths: vec![4, 8, 16, 24, 32],
            items: 60,
            seed: 42,
            workers: None,
        }
    }
}

/// A declarative workload: everything previously reachable only
/// through one of the twelve bespoke report binaries, plus the
/// composed [`JobSpec::Batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Table 1: the thirteen calibrated multipliers (LL flavour),
    /// re-solved in parallel.
    Table1Sweep {
        /// Paper names of the rows to solve; `None` = the full table.
        /// The field is omitted from the wire form when `None`, so the
        /// default spec's canonical JSON (and cache key) is unchanged
        /// from before the axis existed.
        archs: Option<Vec<String>>,
    },
    /// Table 2: the published STM CMOS09 flavour parameters.
    Table2,
    /// Table 3: the Wallace family on the ULL flavour.
    Table3,
    /// Table 4: the Wallace family on the HS flavour.
    Table4,
    /// The technology-scaling study over a frequency axis (both the
    /// wire-dominated and the fully scaled port).
    ScalingStudy {
        /// Evaluated frequencies in MHz.
        frequencies_mhz: Vec<f64>,
    },
    /// Eq. 13 logarithmic sensitivities for all Table 1 architectures.
    Sensitivity,
    /// The three ablation studies (fit range, optimiser, glitches).
    Ablation {
        /// Stimulus volume of the glitch ablation.
        items: u64,
        /// Stimulus seed of the glitch ablation.
        seed: u64,
    },
    /// Ab-initio characterization (Table 1′).
    AbInitio(AbInitioSpec),
    /// The glitch-aware design-space sweep, with an operand-width axis.
    GlitchSweep(GlitchSweepSpec),
    /// One activity measurement on one architecture.
    ActivityMeasure(ActivitySpec),
    /// Figure 1: Ptot vs Vdd per activity.
    Figure1 {
        /// Samples per sweep curve.
        samples: usize,
    },
    /// Figure 2: the Vdd^{1/α} linearisation.
    Figure2 {
        /// Samples of the plotted range.
        samples: usize,
    },
    /// Figures 3/4: horizontal vs diagonal pipeline structures.
    Figure34 {
        /// Operand width in bits.
        width: usize,
        /// Stimulus volume of the activity measurement.
        items: u64,
    },
    /// The Ptot-vs-frequency Pareto figure over the explored design
    /// space.
    Pareto {
        /// Frequency-axis resolution.
        freq_points: usize,
    },
    /// Structural exports: Verilog + DOT per architecture and an RCA
    /// VCD trace, written under the runtime's artifact directory.
    Export,
    /// Netlist lint over architectures × widths.
    Lint(LintSpec),
    /// Integer-tick STA + static glitch bound, optionally correlated
    /// against the measured glitch factor.
    Sta(StaSpec),
    /// Dead-cone prune before/after power delta per (arch, width).
    PruneDelta(PruneDeltaSpec),
    /// A batch of jobs executed in order, yielding one artifact each.
    Batch(Vec<JobSpec>),
}

/// `(kind, summary)` of every job kind, in `optpower list` order.
pub const JOB_KINDS: &[(&str, &str)] = &[
    ("table1_sweep", "Table 1: 13 calibrated multipliers (LL)"),
    ("table2", "Table 2: STM CMOS09 flavour parameters"),
    ("table3", "Table 3: Wallace family, ULL flavour"),
    ("table4", "Table 4: Wallace family, HS flavour"),
    ("scaling_study", "technology-scaling study over frequency"),
    ("sensitivity", "Eq. 13 sensitivities per architecture"),
    ("ablation", "fit-range / optimiser / glitch ablations"),
    ("ab_initio", "Table 1': ab-initio netlist characterization"),
    (
        "glitch_sweep",
        "glitch-aware design-space sweep (width axis)",
    ),
    ("activity_measure", "one activity measurement, any engine"),
    ("figure1", "Figure 1: Ptot vs Vdd per activity"),
    ("figure2", "Figure 2: Vdd^(1/alpha) linearisation"),
    ("figure34", "Figures 3/4: pipeline structure comparison"),
    ("pareto", "Ptot-vs-frequency Pareto figure"),
    ("export", "Verilog/DOT/VCD structural exports"),
    ("lint", "structural netlist lint over archs x widths"),
    ("sta", "integer-tick STA + static glitch bound"),
    ("prune_delta", "dead-cone prune before/after power delta"),
    ("batch", "a list of jobs run in order"),
];

impl JobSpec {
    /// The wire kind tag (`job` field of the JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Table1Sweep { .. } => "table1_sweep",
            Self::Table2 => "table2",
            Self::Table3 => "table3",
            Self::Table4 => "table4",
            Self::ScalingStudy { .. } => "scaling_study",
            Self::Sensitivity => "sensitivity",
            Self::Ablation { .. } => "ablation",
            Self::AbInitio(_) => "ab_initio",
            Self::GlitchSweep(_) => "glitch_sweep",
            Self::ActivityMeasure(_) => "activity_measure",
            Self::Figure1 { .. } => "figure1",
            Self::Figure2 { .. } => "figure2",
            Self::Figure34 { .. } => "figure34",
            Self::Pareto { .. } => "pareto",
            Self::Export => "export",
            Self::Lint(_) => "lint",
            Self::Sta(_) => "sta",
            Self::PruneDelta(_) => "prune_delta",
            Self::Batch(_) => "batch",
        }
    }

    /// The default spec of a wire kind (what the legacy binary ran
    /// with no flags), or `None` for an unknown kind.
    pub fn default_for(kind: &str) -> Option<JobSpec> {
        Some(match kind {
            "table1_sweep" => Self::Table1Sweep { archs: None },
            "table2" => Self::Table2,
            "table3" => Self::Table3,
            "table4" => Self::Table4,
            "scaling_study" => Self::ScalingStudy {
                frequencies_mhz: vec![1.0, 4.0, 31.25, 125.0, 250.0],
            },
            "sensitivity" => Self::Sensitivity,
            "ablation" => Self::Ablation {
                items: 200,
                seed: 42,
            },
            "ab_initio" => Self::AbInitio(AbInitioSpec::default()),
            "glitch_sweep" => Self::GlitchSweep(GlitchSweepSpec::default()),
            "activity_measure" => Self::ActivityMeasure(ActivitySpec::default()),
            "figure1" => Self::Figure1 { samples: 256 },
            "figure2" => Self::Figure2 { samples: 601 },
            "figure34" => Self::Figure34 {
                width: 16,
                items: 200,
            },
            "pareto" => Self::Pareto { freq_points: 9 },
            "export" => Self::Export,
            "lint" => Self::Lint(LintSpec::default()),
            "sta" => Self::Sta(StaSpec::default()),
            "prune_delta" => Self::PruneDelta(PruneDeltaSpec::default()),
            "batch" => Self::Batch(Vec::new()),
            _ => return None,
        })
    }

    /// The JSON value form (see the module docs for the envelope).
    pub fn to_json_value(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".to_string(), Json::str(JOB_SCHEMA)),
            ("job".to_string(), Json::str(self.kind())),
        ];
        let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
        match self {
            Self::Table2 | Self::Table3 | Self::Table4 | Self::Sensitivity | Self::Export => {}
            Self::Table1Sweep { archs } => {
                // Emitted only when set: the no-axis wire form must
                // stay byte-identical to the historical unit variant.
                if archs.is_some() {
                    push("archs", opt_names(archs));
                }
            }
            Self::ScalingStudy { frequencies_mhz } => push(
                "frequencies_mhz",
                Json::Arr(frequencies_mhz.iter().map(|&f| Json::num(f)).collect()),
            ),
            Self::Ablation { items, seed } => {
                push("items", Json::UInt(*items));
                push("seed", Json::UInt(*seed));
            }
            Self::AbInitio(s) => {
                push("archs", opt_names(&s.archs));
                push("width", Json::UInt(s.width as u64));
                push("lanes", Json::UInt(u64::from(s.lanes)));
                push("engine", Json::str(engine_name(s.engine)));
                push("plane_lanes", plane_json(s.plane));
                push("items", Json::UInt(s.items));
                push("seed", Json::UInt(s.seed));
                push("workers", opt_uint(s.workers));
            }
            Self::GlitchSweep(s) => {
                push("archs", opt_names(&s.archs));
                push(
                    "widths",
                    Json::Arr(s.widths.iter().map(|&w| Json::UInt(w as u64)).collect()),
                );
                push("lanes", Json::UInt(u64::from(s.lanes)));
                push("engine", Json::str(engine_name(s.engine)));
                push("plane_lanes", plane_json(s.plane));
                push("items", Json::UInt(s.items));
                push("seed", Json::UInt(s.seed));
                push("freq_points", Json::UInt(s.freq_points as u64));
                push("workers", opt_uint(s.workers));
            }
            Self::ActivityMeasure(s) => {
                push("arch", Json::str(&s.arch));
                push("width", Json::UInt(s.width as u64));
                push("engine", Json::str(engine_name(s.engine)));
                push("items", Json::UInt(s.items));
                push("warmup", Json::UInt(s.warmup));
                push("seed", Json::UInt(s.seed));
            }
            Self::Figure1 { samples } | Self::Figure2 { samples } => {
                push("samples", Json::UInt(*samples as u64));
            }
            Self::Figure34 { width, items } => {
                push("width", Json::UInt(*width as u64));
                push("items", Json::UInt(*items));
            }
            Self::Pareto { freq_points } => {
                push("freq_points", Json::UInt(*freq_points as u64));
            }
            Self::Lint(s) => {
                push("archs", opt_names(&s.archs));
                push(
                    "widths",
                    match &s.widths {
                        Some(ws) => Json::Arr(ws.iter().map(|&w| Json::UInt(w as u64)).collect()),
                        None => Json::Null,
                    },
                );
            }
            Self::Sta(s) => {
                push("archs", opt_names(&s.archs));
                push("width", Json::UInt(s.width as u64));
                push("lanes", Json::UInt(u64::from(s.lanes)));
                push("items", Json::UInt(s.items));
                push("seed", Json::UInt(s.seed));
                push("workers", opt_uint(s.workers));
            }
            Self::PruneDelta(s) => {
                push("archs", opt_names(&s.archs));
                push(
                    "widths",
                    Json::Arr(s.widths.iter().map(|&w| Json::UInt(w as u64)).collect()),
                );
                push("items", Json::UInt(s.items));
                push("seed", Json::UInt(s.seed));
                push("workers", opt_uint(s.workers));
            }
            Self::Batch(jobs) => push(
                "jobs",
                Json::Arr(jobs.iter().map(JobSpec::to_json_value).collect()),
            ),
        }
        Json::Obj(pairs)
    }

    /// The compact JSON wire form.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The canonical JSON form: the byte sequence [`JobSpec::to_json`]
    /// emits, which is a pure function of the spec *value* — field
    /// order is fixed by the serializer, integers are written exactly,
    /// and floats use shortest-round-trip formatting. Two wire
    /// documents that parse to equal specs (whatever their key order,
    /// whitespace or float spelling) share one canonical form, so it
    /// is the content-address of the job.
    pub fn canonical_json(&self) -> String {
        self.to_json()
    }

    /// The content-addressed cache key: 64-bit FNV-1a over
    /// [`JobSpec::canonical_json`], as 16 lowercase hex digits.
    /// Deterministic across processes and platforms (no randomized
    /// hashing), so a client can predict the key of a spec it submits.
    pub fn canonical_key(&self) -> String {
        format!("{:016x}", fnv1a_64(self.canonical_json().as_bytes()))
    }

    /// Parses the JSON wire form. Unknown kinds, malformed fields and
    /// schema mismatches are [`WorkloadError::Spec`]; fields absent
    /// from the document take the kind's defaults, so hand-written
    /// specs stay terse — but *unrecognized* keys are rejected, so a
    /// typoed `"sed"` cannot silently run with the default seed.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] describing the first problem.
    pub fn from_json(input: &str) -> Result<JobSpec, WorkloadError> {
        let doc = Json::parse(input).map_err(|e| SpecError::new(e.to_string()))?;
        Self::from_json_value(&doc)
    }

    /// Parses an already-decoded JSON value (used recursively for
    /// batches).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] describing the first problem.
    pub fn from_json_value(doc: &Json) -> Result<JobSpec, WorkloadError> {
        match doc.get("schema") {
            None => {}
            Some(v) => {
                let schema = v
                    .as_str()
                    .ok_or_else(|| SpecError::new("\"schema\" must be a string when present"))?;
                if schema != JOB_SCHEMA {
                    return Err(SpecError::new(format!(
                        "unsupported spec schema {schema:?} (expected {JOB_SCHEMA:?})"
                    ))
                    .into());
                }
            }
        }
        let kind = doc
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("spec object needs a string \"job\" field"))?;
        let defaults = Self::default_for(kind).ok_or_else(|| {
            SpecError::new(format!(
                "unknown job kind {kind:?} (see `optpower list` for the catalogue)"
            ))
        })?;
        reject_unknown_fields(doc, kind)?;
        let spec = match defaults {
            Self::ScalingStudy { frequencies_mhz } => Self::ScalingStudy {
                frequencies_mhz: match doc.get("frequencies_mhz") {
                    Some(v) => float_array(v, "frequencies_mhz")?,
                    None => frequencies_mhz,
                },
            },
            Self::Ablation { items, seed } => Self::Ablation {
                items: uint_field(doc, "items", items)?,
                seed: uint_field(doc, "seed", seed)?,
            },
            Self::AbInitio(d) => Self::AbInitio(AbInitioSpec {
                archs: names_field(doc, "archs", d.archs)?,
                width: usize_field(doc, "width", d.width)?,
                lanes: u32_field(doc, "lanes", d.lanes)?,
                engine: engine_field(doc, d.engine)?,
                plane: plane_field(doc, d.plane)?,
                items: uint_field(doc, "items", d.items)?,
                seed: uint_field(doc, "seed", d.seed)?,
                workers: opt_usize_field(doc, "workers")?,
            }),
            Self::GlitchSweep(d) => Self::GlitchSweep(GlitchSweepSpec {
                archs: names_field(doc, "archs", d.archs)?,
                widths: match doc.get("widths") {
                    Some(v) => usize_array(v, "widths")?,
                    None => d.widths,
                },
                lanes: u32_field(doc, "lanes", d.lanes)?,
                engine: engine_field(doc, d.engine)?,
                plane: plane_field(doc, d.plane)?,
                items: uint_field(doc, "items", d.items)?,
                seed: uint_field(doc, "seed", d.seed)?,
                freq_points: usize_field(doc, "freq_points", d.freq_points)?,
                workers: opt_usize_field(doc, "workers")?,
            }),
            Self::ActivityMeasure(d) => Self::ActivityMeasure(ActivitySpec {
                arch: match doc.get("arch") {
                    Some(v) => v
                        .as_str()
                        .ok_or_else(|| SpecError::new("\"arch\" must be a string"))?
                        .to_string(),
                    None => d.arch,
                },
                width: usize_field(doc, "width", d.width)?,
                engine: engine_field(doc, d.engine)?,
                items: uint_field(doc, "items", d.items)?,
                warmup: uint_field(doc, "warmup", d.warmup)?,
                seed: uint_field(doc, "seed", d.seed)?,
            }),
            Self::Figure1 { samples } => Self::Figure1 {
                samples: usize_field(doc, "samples", samples)?,
            },
            Self::Figure2 { samples } => Self::Figure2 {
                samples: usize_field(doc, "samples", samples)?,
            },
            Self::Figure34 { width, items } => Self::Figure34 {
                width: usize_field(doc, "width", width)?,
                items: uint_field(doc, "items", items)?,
            },
            Self::Pareto { freq_points } => Self::Pareto {
                freq_points: usize_field(doc, "freq_points", freq_points)?,
            },
            Self::Lint(d) => Self::Lint(LintSpec {
                archs: names_field(doc, "archs", d.archs)?,
                widths: match doc.get("widths") {
                    None => d.widths,
                    Some(Json::Null) => None,
                    Some(v) => Some(usize_array(v, "widths")?),
                },
            }),
            Self::Sta(d) => Self::Sta(StaSpec {
                archs: names_field(doc, "archs", d.archs)?,
                width: usize_field(doc, "width", d.width)?,
                lanes: u32_field(doc, "lanes", d.lanes)?,
                items: uint_field(doc, "items", d.items)?,
                seed: uint_field(doc, "seed", d.seed)?,
                workers: opt_usize_field(doc, "workers")?,
            }),
            Self::PruneDelta(d) => Self::PruneDelta(PruneDeltaSpec {
                archs: names_field(doc, "archs", d.archs)?,
                widths: match doc.get("widths") {
                    Some(v) => usize_array(v, "widths")?,
                    None => d.widths,
                },
                items: uint_field(doc, "items", d.items)?,
                seed: uint_field(doc, "seed", d.seed)?,
                workers: opt_usize_field(doc, "workers")?,
            }),
            Self::Table1Sweep { archs } => Self::Table1Sweep {
                archs: names_field(doc, "archs", archs)?,
            },
            Self::Batch(_) => {
                let jobs = doc
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| SpecError::new("batch needs a \"jobs\" array"))?;
                Self::Batch(
                    jobs.iter()
                        .map(JobSpec::from_json_value)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            other => other,
        };
        Ok(spec)
    }
}

/// 64-bit FNV-1a over a byte slice — the std-only hash behind
/// [`JobSpec::canonical_key`]. Stable by construction (no per-process
/// seeding), unlike `std::hash::DefaultHasher`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The field names each kind accepts (besides `schema` and `job`).
fn allowed_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "table1_sweep" => &["archs"],
        "scaling_study" => &["frequencies_mhz"],
        "ablation" => &["items", "seed"],
        "ab_initio" => &[
            "archs",
            "width",
            "lanes",
            "engine",
            "plane_lanes",
            "items",
            "seed",
            "workers",
        ],
        "glitch_sweep" => &[
            "archs",
            "widths",
            "lanes",
            "engine",
            "plane_lanes",
            "items",
            "seed",
            "freq_points",
            "workers",
        ],
        "activity_measure" => &["arch", "width", "engine", "items", "warmup", "seed"],
        "figure1" | "figure2" => &["samples"],
        "figure34" => &["width", "items"],
        "pareto" => &["freq_points"],
        "lint" => &["archs", "widths"],
        "sta" => &["archs", "width", "lanes", "items", "seed", "workers"],
        "prune_delta" => &["archs", "widths", "items", "seed", "workers"],
        "batch" => &["jobs"],
        _ => &[],
    }
}

/// A misspelled key must not silently run the job with a default — an
/// unrecognized field is an error naming the kind's accepted fields.
fn reject_unknown_fields(doc: &Json, kind: &str) -> Result<(), WorkloadError> {
    let Json::Obj(pairs) = doc else {
        return Err(SpecError::new("a job spec must be a JSON object").into());
    };
    let allowed = allowed_fields(kind);
    for (key, _) in pairs {
        if key != "schema" && key != "job" && !allowed.contains(&key.as_str()) {
            return Err(SpecError::new(format!(
                "unknown field {key:?} for job {kind:?} (accepted: schema, job{}{})",
                if allowed.is_empty() { "" } else { ", " },
                allowed.join(", "),
            ))
            .into());
        }
    }
    Ok(())
}

fn opt_uint(v: Option<usize>) -> Json {
    match v {
        Some(u) => Json::UInt(u as u64),
        None => Json::Null,
    }
}

fn opt_names(v: &Option<Vec<String>>) -> Json {
    match v {
        Some(names) => Json::Arr(names.iter().map(Json::str).collect()),
        None => Json::Null,
    }
}

fn uint_field(doc: &Json, key: &str, default: u64) -> Result<u64, WorkloadError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| SpecError::new(format!("{key:?} must be an unsigned integer")).into()),
    }
}

fn usize_field(doc: &Json, key: &str, default: usize) -> Result<usize, WorkloadError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SpecError::new(format!("{key:?} must be an unsigned integer")).into()),
    }
}

fn u32_field(doc: &Json, key: &str, default: u32) -> Result<u32, WorkloadError> {
    uint_field(doc, key, u64::from(default)).and_then(|u| {
        u32::try_from(u).map_err(|_| SpecError::new(format!("{key:?} must fit 32 bits")).into())
    })
}

fn opt_usize_field(doc: &Json, key: &str) -> Result<Option<usize>, WorkloadError> {
    match doc.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| SpecError::new(format!("{key:?} must be an integer or null")).into()),
    }
}

fn engine_field(doc: &Json, default: Engine) -> Result<Engine, WorkloadError> {
    match doc.get("engine") {
        None => Ok(default),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| SpecError::new("\"engine\" must be a string"))?;
            engine_from_name(name).ok_or_else(|| {
                SpecError::new(format!(
                    "unknown engine {name:?} (zero_delay | timed | timed_scalar | bit_parallel \
                     | bit_parallel_256 | bit_parallel_512)"
                ))
                .into()
            })
        }
    }
}

fn plane_json(plane: PlaneTiling) -> Json {
    match plane {
        PlaneTiling::Fixed(lanes) => Json::UInt(u64::from(lanes)),
        PlaneTiling::Auto => Json::str("auto"),
    }
}

fn plane_field(doc: &Json, default: PlaneTiling) -> Result<PlaneTiling, WorkloadError> {
    match doc.get("plane_lanes") {
        None => Ok(default),
        Some(v) => {
            if v.as_str() == Some("auto") {
                return Ok(PlaneTiling::Auto);
            }
            match v.as_u64() {
                Some(lanes @ (64 | 256 | 512)) => Ok(PlaneTiling::Fixed(lanes as u32)),
                _ => Err(SpecError::new("\"plane_lanes\" must be 64, 256, 512 or \"auto\"").into()),
            }
        }
    }
}

fn names_field(
    doc: &Json,
    key: &str,
    default: Option<Vec<String>>,
) -> Result<Option<Vec<String>>, WorkloadError> {
    match doc.get(key) {
        None => Ok(default),
        Some(Json::Null) => Ok(None),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| SpecError::new(format!("{key:?} must be an array or null")))?;
            arr.iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        SpecError::new(format!("{key:?} entries must be strings")).into()
                    })
                })
                .collect::<Result<Vec<_>, WorkloadError>>()
                .map(Some)
        }
    }
}

fn float_array(v: &Json, key: &str) -> Result<Vec<f64>, WorkloadError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| SpecError::new(format!("{key:?} must be an array of numbers")))?;
    arr.iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| SpecError::new(format!("{key:?} entries must be numbers")).into())
        })
        .collect()
}

fn usize_array(v: &Json, key: &str) -> Result<Vec<usize>, WorkloadError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| SpecError::new(format!("{key:?} must be an array of integers")))?;
    arr.iter()
        .map(|item| {
            item.as_usize()
                .ok_or_else(|| SpecError::new(format!("{key:?} entries must be integers")).into())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roundtrip(spec: &JobSpec) {
        let json = spec.to_json();
        let back = JobSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("{json} failed to parse back: {e}"));
        assert_eq!(&back, spec, "{json}");
    }

    #[test]
    fn every_kind_has_a_default_and_round_trips() {
        for &(kind, _) in JOB_KINDS {
            let spec = JobSpec::default_for(kind).expect(kind);
            assert_eq!(spec.kind(), kind);
            assert_roundtrip(&spec);
        }
        assert_eq!(JobSpec::default_for("nope"), None);
    }

    #[test]
    fn non_default_fields_round_trip() {
        assert_roundtrip(&JobSpec::AbInitio(AbInitioSpec {
            archs: Some(vec!["RCA".into(), "Wallace parallel".into()]),
            width: 8,
            lanes: 3,
            engine: Engine::ZeroDelay,
            plane: PlaneTiling::Fixed(64),
            items: u64::MAX,
            seed: (1 << 53) + 1,
            workers: Some(7),
        }));
        assert_roundtrip(&JobSpec::AbInitio(AbInitioSpec {
            engine: Engine::BitParallel512,
            plane: PlaneTiling::Auto,
            ..AbInitioSpec::default()
        }));
        assert_roundtrip(&JobSpec::AbInitio(AbInitioSpec {
            engine: Engine::BitParallel256,
            plane: PlaneTiling::Fixed(256),
            ..AbInitioSpec::default()
        }));
        assert_roundtrip(&JobSpec::GlitchSweep(GlitchSweepSpec {
            widths: vec![8, 16, 24, 32],
            freq_points: 3,
            plane: PlaneTiling::Fixed(512),
            ..GlitchSweepSpec::default()
        }));
        assert_roundtrip(&JobSpec::ScalingStudy {
            frequencies_mhz: vec![0.5, 31.25, 250.0],
        });
        assert_roundtrip(&JobSpec::Lint(LintSpec {
            archs: Some(vec!["RCA".into()]),
            widths: Some(vec![8, 16]),
        }));
        assert_roundtrip(&JobSpec::Sta(StaSpec {
            width: 8,
            items: 0,
            workers: Some(3),
            ..StaSpec::default()
        }));
        assert_roundtrip(&JobSpec::PruneDelta(PruneDeltaSpec {
            archs: Some(vec!["Wallace".into(), "Seq4_16".into()]),
            widths: vec![8, 32],
            items: 12,
            workers: Some(2),
            ..PruneDeltaSpec::default()
        }));
        assert_roundtrip(&JobSpec::Batch(vec![
            JobSpec::Table1Sweep { archs: None },
            JobSpec::Batch(vec![JobSpec::Figure2 { samples: 3 }]),
        ]));
        assert_roundtrip(&JobSpec::Table1Sweep {
            archs: Some(vec!["RCA".into(), "Wallace".into()]),
        });
    }

    #[test]
    fn table1_axis_is_invisible_when_unset() {
        // The optional row axis must not disturb the historical wire
        // form (which is also the content-address of cached runs).
        assert_eq!(
            JobSpec::Table1Sweep { archs: None }.to_json(),
            r#"{"schema":"optpower-job/v1","job":"table1_sweep"}"#
        );
        let spec = JobSpec::from_json(r#"{"job":"table1_sweep","archs":["RCA"]}"#).unwrap();
        assert_eq!(
            spec,
            JobSpec::Table1Sweep {
                archs: Some(vec!["RCA".to_string()])
            }
        );
    }

    #[test]
    fn terse_specs_fill_defaults() {
        let spec = JobSpec::from_json(r#"{"job":"ab_initio","items":10}"#).unwrap();
        match spec {
            JobSpec::AbInitio(s) => {
                assert_eq!(s.items, 10);
                assert_eq!(s.width, 16);
                assert_eq!(s.lanes, optpower_report::TIMED_LANES);
                assert_eq!(s.engine, Engine::BitParallel);
                assert_eq!(s.plane, PlaneTiling::Fixed(64));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in [
            r#"{"jobs":"x"}"#,
            r#"{"job":"unknown_kind"}"#,
            r#"{"schema":"optpower-job/v2","job":"table2"}"#,
            r#"{"job":"ab_initio","engine":"warp"}"#,
            r#"{"job":"ab_initio","items":-4}"#,
            // The plane width is a closed set: 64/256/512 or "auto".
            r#"{"job":"ab_initio","plane_lanes":128}"#,
            r#"{"job":"ab_initio","plane_lanes":"wide"}"#,
            r#"{"job":"glitch_sweep","plane_lanes":0}"#,
            r#"{"job":"batch"}"#,
            r#"{"job":"glitch_sweep","widths":[8.5]}"#,
            "not json",
            // Typoed keys must not silently fall back to defaults.
            r#"{"job":"activity_measure","sed":7}"#,
            r#"{"job":"ab_initio","itmes":3}"#,
            r#"{"job":"table2","samples":4}"#,
            r#"{"schema":7,"job":"table2"}"#,
            r#"["job","table2"]"#,
        ] {
            let err = JobSpec::from_json(bad).unwrap_err();
            assert!(matches!(err, WorkloadError::Spec(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn engine_names_are_bijective() {
        for engine in [
            Engine::ZeroDelay,
            Engine::Timed,
            Engine::TimedScalar,
            Engine::BitParallel,
            Engine::BitParallel256,
            Engine::BitParallel512,
        ] {
            assert_eq!(engine_from_name(engine_name(engine)), Some(engine));
        }
        assert_eq!(engine_from_name("warp"), None);
    }

    #[test]
    fn canonical_key_is_invariant_under_wire_spelling() {
        // Key order, whitespace, float spelling and the optional
        // schema tag are wire noise: all five documents address the
        // same job.
        let canonical = JobSpec::from_json(
            r#"{"schema":"optpower-job/v1","job":"scaling_study","frequencies_mhz":[1.0,31.25]}"#,
        )
        .unwrap();
        for variant in [
            r#"{"job":"scaling_study","frequencies_mhz":[1.0,31.25]}"#,
            r#"{"frequencies_mhz":[1.0,31.25],"job":"scaling_study"}"#,
            r#"{ "job" : "scaling_study", "frequencies_mhz" : [ 1, 31.25 ] }"#,
            r#"{"job":"scaling_study","frequencies_mhz":[1e0,3.125e1]}"#,
        ] {
            let spec = JobSpec::from_json(variant).unwrap();
            assert_eq!(spec.canonical_key(), canonical.canonical_key(), "{variant}");
            assert_eq!(spec.canonical_json(), canonical.canonical_json());
        }
        // ... and a different job is a different address.
        let other =
            JobSpec::from_json(r#"{"job":"scaling_study","frequencies_mhz":[2.0,31.25]}"#).unwrap();
        assert_ne!(other.canonical_key(), canonical.canonical_key());
    }

    #[test]
    fn canonical_key_shape_and_fnv_vectors() {
        // The published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        let key = JobSpec::Table2.canonical_key();
        assert_eq!(key.len(), 16);
        assert!(key.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn smoke_spec_matches_the_legacy_flag() {
        let s = AbInitioSpec::smoke();
        assert_eq!(s.items, 60);
        assert_eq!(
            s.archs.as_deref(),
            Some(&["RCA".to_string(), "Sequential".to_string()][..])
        );
    }
}
