//! The uniform result envelope every workload returns: a typed
//! payload plus run metadata, with schema-versioned JSON, CSV and
//! console-text renderings.
//!
//! Three invariants:
//!
//! * **typed first** — the payload is the workload's real data
//!   structure ([`optpower_report::RowComparison`],
//!   [`optpower_report::AbInitioRow`], …), not a bag of strings; the
//!   JSON/CSV forms are derived views;
//! * **deterministic payloads** — [`Artifact::payload_json`],
//!   [`Artifact::to_csv`] and [`Artifact::render_text`] depend only on
//!   the spec (seed included), never on worker count or wall time.
//!   Run metadata (wall time, resolved workers) lives in a separate
//!   `meta` object that only [`Artifact::to_json`] includes;
//! * **legacy-faithful text** — [`Artifact::render_text`] is exactly
//!   the stdout of the retired bespoke binary for the same job, so
//!   rewiring the binaries into shims changed no observable output.

use optpower_report::ablation::{FitRangeResult, GlitchAblationRow, OptimizerAblationRow};
use optpower_report::extended::{render_scaling, render_sensitivities, ScalingRow, SensitivityRow};
use optpower_report::{
    glitch_rows_to_csv, pareto_front_csv, render_ab_initio, render_figure1, render_figure2,
    render_figure34, render_glitch_factors, render_pareto, render_rows, AbInitioRow, Figure1,
    Figure2, Figure34, GlitchSweep, ParetoFigure, RowComparison,
};
use optpower_sim::ActivityReport;

use crate::json::Json;
use crate::spec::{engine_name, ActivitySpec, JobSpec};

/// Schema tag of the artifact envelope.
pub const ARTIFACT_SCHEMA: &str = "optpower-workload/v1";

/// One published STM CMOS09 flavour's parameters (the typed form of
/// Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct FlavorRow {
    /// Flavour abbreviation (`ULL`, `LL`, `HS`).
    pub flavor: &'static str,
    /// Nominal supply \[V\].
    pub vdd_nom_v: f64,
    /// Nominal threshold \[V\].
    pub vth0_nom_v: f64,
    /// Off current \[µA\].
    pub io_ua: f64,
    /// Total switched capacitance scale \[pF\].
    pub zeta_pf: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Subthreshold slope factor.
    pub n: f64,
}

/// One linted netlist: the architecture/width coordinates plus the
/// full structural report.
#[derive(Debug, Clone, PartialEq)]
pub struct LintSummary {
    /// Paper name of the architecture.
    pub arch: String,
    /// Operand width in bits.
    pub width: usize,
    /// The structural lint report.
    pub report: optpower_sta::LintReport,
}

/// One architecture's static-analysis row: integer-tick STA numbers
/// plus the static glitch bound, optionally paired with the measured
/// glitch factor for the static-vs-measured correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct StaRow {
    /// Paper name of the architecture.
    pub arch: String,
    /// Operand width in bits.
    pub width: usize,
    /// Logic cell count (the paper's `N`).
    pub cells: usize,
    /// Picosecond ticks per stride unit of the shared time base.
    pub stride_ticks: u64,
    /// Longest endpoint path in gate units (the paper's `LD`).
    pub logical_depth: f64,
    /// Shortest endpoint path in gate units.
    pub shortest_path: f64,
    /// `LD − shortest` in gate units.
    pub path_spread: f64,
    /// Mean multi-input arrival skew in gate units.
    pub mean_input_skew: f64,
    /// Cells on the reconstructed critical path.
    pub critical_path_cells: usize,
    /// The static glitch factor — the static analogue of the measured
    /// `a(timed)/a(zero-delay)` ratio (a ranking statistic, correlated
    /// but not a bound on the ratio).
    pub static_glitch_factor: f64,
    /// The simulated glitch factor, when the spec ran the measured
    /// leg (`items > 0`).
    pub measured_glitch_factor: Option<f64>,
    /// The *provable* ceiling: mean per-cell transition bound per data
    /// item (per-cycle bound × cycles per item). Measured timed
    /// activity can never exceed this.
    pub static_activity_bound: f64,
    /// The simulated timed activity (transitions per logic cell per
    /// data item), when the spec ran the measured leg.
    pub measured_activity: Option<f64>,
}

/// One (architecture, width) before/after row of the dead-cone prune
/// delta study: the same design generated raw (no pruning) and through
/// the production [`optpower_mult::Architecture::generate`] path, each
/// characterized through the identical timed-simulation flow.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneDeltaRow {
    /// Paper name of the architecture.
    pub arch: String,
    /// Operand width in bits.
    pub width: usize,
    /// Logic cell count before pruning (the paper's `N`, raw).
    pub cells_before: usize,
    /// Logic cell count after pruning.
    pub cells_after: usize,
    /// DFF count before pruning.
    pub dffs_before: usize,
    /// DFF count after pruning.
    pub dffs_after: usize,
    /// Measured timed activity per logic cell per item, raw netlist.
    pub activity_before: f64,
    /// Measured timed activity per logic cell per item, pruned netlist.
    pub activity_after: f64,
    /// Optimised total power in µW, raw netlist.
    pub ptot_uw_before: f64,
    /// Optimised total power in µW, pruned netlist.
    pub ptot_uw_after: f64,
}

impl PruneDeltaRow {
    /// Cells the prune removed (logic + DFFs).
    pub fn cells_removed(&self) -> usize {
        (self.cells_before - self.cells_after) + (self.dffs_before - self.dffs_after)
    }

    /// Relative total-power change in percent (negative = pruning
    /// lowered power).
    pub fn ptot_delta_pct(&self) -> f64 {
        if self.ptot_uw_before == 0.0 {
            0.0
        } else {
            100.0 * (self.ptot_uw_after - self.ptot_uw_before) / self.ptot_uw_before
        }
    }
}

/// What the export job wrote.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportListing {
    /// Directory the files went to.
    pub dir: String,
    /// File names written, in write order.
    pub files: Vec<String>,
}

/// Whether an artifact came out of the runtime's content-addressed
/// cache or was computed fresh. Lives in [`RunMeta`] because cache
/// residency is a scheduling fact, never part of the deterministic
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache without re-executing the job.
    Hit,
    /// Executed fresh (and, when a cache is attached, inserted).
    Miss,
}

impl CacheStatus {
    /// The wire spelling (`"hit"` / `"miss"`) used in the JSON `meta`
    /// object and the `X-Optpower-Cache` response header.
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
        }
    }
}

/// Hit/miss counters of the runtime's incremental row cache for one
/// run: how many per-architecture [`AbInitioRow`]s were served from
/// the cache versus characterized fresh. Lives in [`RunMeta`] because
/// cache residency never changes the payload — a served row is
/// bit-identical to the recomputation it replaced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowCacheStats {
    /// Rows served from the cache without re-simulating.
    pub hits: u64,
    /// Rows characterized fresh (and inserted).
    pub misses: u64,
}

/// How a distributed run was scheduled: the cluster shape plus how
/// many shards had to be reassigned after a worker died. Lives in
/// [`RunMeta`] because fan-out is scheduling — a merged artifact's
/// payload is bit-identical to the single-host run whatever `hosts`,
/// `shards` and `retries` say.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistMeta {
    /// Worker hosts the coordinator fanned out to.
    pub hosts: usize,
    /// Shards the job was split into.
    pub shards: usize,
    /// Shards reassigned after a worker death or timeout.
    pub retries: u64,
}

/// Run metadata: how an artifact was produced. Everything here is
/// either scheduling or wall-clock — never part of the deterministic
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// The stimulus seed the job ran with, when it has one.
    pub seed: Option<u64>,
    /// The resolved worker count the runtime scheduled with.
    pub workers: usize,
    /// The simulation engine involved, when the job has one.
    pub engine: Option<&'static str>,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Cache disposition, when the runtime ran with a cache attached
    /// (`None` for cacheless runtimes, which keeps the legacy CLI
    /// envelope unchanged).
    pub cache: Option<CacheStatus>,
    /// Row-cache counters, when the runtime ran with a cache attached
    /// *and* the job characterizes architectures (`None` otherwise,
    /// which keeps every other envelope unchanged).
    pub row_cache: Option<RowCacheStats>,
    /// Distributed-run shape, when a coordinator merged this artifact
    /// from worker shards (`None` for every single-host run, which
    /// keeps the legacy envelope unchanged).
    pub dist: Option<DistMeta>,
}

/// The typed payload of one executed job.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Paper-vs-reproduction comparison rows (Tables 1/3/4) with the
    /// table's console title.
    Rows {
        /// Console title of the table.
        title: String,
        /// The comparison rows.
        rows: Vec<RowComparison>,
    },
    /// The published flavour parameters (Table 2).
    Flavors(Vec<FlavorRow>),
    /// The scaling study, both ports.
    Scaling {
        /// Wire-dominated port (capacitance does not scale).
        unscaled: Vec<ScalingRow>,
        /// Full gate-capacitance scaling (×0.7 per node).
        scaled: Vec<ScalingRow>,
    },
    /// Eq. 13 sensitivities per architecture.
    Sensitivity(Vec<SensitivityRow>),
    /// The three ablation studies.
    Ablation {
        /// The α the fit-range ablation ran at.
        alpha: f64,
        /// Fit-range sensitivity rows.
        fit: Vec<FitRangeResult>,
        /// Optimiser-strategy rows.
        optimizer: Vec<OptimizerAblationRow>,
        /// Glitch-contribution rows.
        glitch: Vec<GlitchAblationRow>,
    },
    /// Ab-initio characterization rows (Table 1′).
    AbInitio(Vec<AbInitioRow>),
    /// The glitch-aware design-space sweep.
    Glitch(GlitchSweep),
    /// One activity measurement (spec echoed for context).
    Activity {
        /// The measurement definition.
        spec: ActivitySpec,
        /// The measured report.
        report: ActivityReport,
    },
    /// Figure 1.
    Figure1(Figure1),
    /// Figure 2.
    Figure2(Figure2),
    /// Figures 3/4.
    Figure34(Figure34),
    /// The Pareto figure.
    Pareto(ParetoFigure),
    /// The export listing.
    Export(ExportListing),
    /// One lint report per (architecture, width).
    Lint(Vec<LintSummary>),
    /// One static-analysis row per architecture.
    Sta(Vec<StaRow>),
    /// One raw-vs-pruned characterization row per (arch, width).
    PruneDelta(Vec<PruneDeltaRow>),
    /// One artifact per batch member, in batch order.
    Batch(Vec<Artifact>),
}

/// The uniform envelope: spec + payload + run metadata.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The spec that produced this artifact.
    pub spec: JobSpec,
    /// The typed result.
    pub payload: Payload,
    /// Run metadata (scheduling and wall time only).
    pub meta: RunMeta,
}

impl Artifact {
    /// The job kind tag.
    pub fn kind(&self) -> &'static str {
        self.spec.kind()
    }

    /// The console rendering — byte-identical to the stdout the
    /// retired bespoke binary printed for the same job (the shim
    /// prints exactly this through one `println!`).
    pub fn render_text(&self) -> String {
        match &self.payload {
            Payload::Rows { title, rows } => render_rows(title, rows),
            Payload::Flavors(rows) => {
                // Derived from the typed payload (like the JSON/CSV
                // views), in the legacy binary's exact layout.
                let mut t = optpower_report::Table::new(&[
                    "flavor",
                    "Vdd nom [V]",
                    "Vth0 nom [V]",
                    "Io [uA]",
                    "zeta [pF]",
                    "alpha",
                    "n",
                ]);
                for r in rows {
                    t.row(&[
                        r.flavor.to_string(),
                        format!("{:.1}", r.vdd_nom_v),
                        format!("{:.3}", r.vth0_nom_v),
                        format!("{:.2}", r.io_ua),
                        format!("{:.1}", r.zeta_pf),
                        format!("{:.2}", r.alpha),
                        format!("{:.2}", r.n),
                    ]);
                }
                format!("Table 2 - STM CMOS09 technology flavours\n{t}")
            }
            Payload::Scaling { unscaled, scaled } => format!(
                "== wire-dominated port (capacitance does not scale) ==\n{}\n\
                 == full gate-capacitance scaling (x0.7 per node) ==\n{}",
                render_scaling(unscaled),
                render_scaling(scaled)
            ),
            Payload::Sensitivity(rows) => render_sensitivities(rows),
            Payload::Ablation {
                alpha,
                fit,
                optimizer,
                glitch,
            } => format!(
                "{}\n{}\n{}",
                optpower_report::ablation::render_fit_ranges(*alpha, fit),
                optpower_report::ablation::render_optimizer(optimizer),
                optpower_report::ablation::render_glitch(glitch)
            ),
            Payload::AbInitio(rows) => render_ab_initio(rows),
            Payload::Glitch(sweep) => {
                let (ga, gf) = (sweep.glitch_aware.summary(), sweep.glitch_free.summary());
                format!(
                    "{}\n{}\nGlitch-aware sweep: {} points ({} closed); glitch-free: {} closed; \
                     design-space glitch cost {:.2} uW over jointly closed points",
                    render_ab_initio(&sweep.rows),
                    render_glitch_factors(&sweep.rows),
                    ga.points,
                    ga.closed,
                    gf.closed,
                    sweep.total_glitch_cost_w() * 1e6,
                )
            }
            Payload::Activity { spec, report } => format!(
                "Activity - {} at {} bits, {} engine, {} items (seed {})\n\
                 a = {:.4} ({} transitions over {} measured items x {} cells)",
                spec.arch,
                spec.width,
                engine_name(spec.engine),
                spec.items,
                spec.seed,
                report.activity,
                report.transitions,
                report.items,
                report.cells,
            ),
            Payload::Figure1(fig) => {
                let mut out = render_figure1(fig);
                out.push_str("\nvdd_v,activity,ptot_w");
                for curve in &fig.curves {
                    for &(v, p) in &curve.points {
                        out.push_str(&format!("\n{v},{},{p}", curve.activity));
                    }
                }
                out
            }
            Payload::Figure2(fig) => {
                let mut out = render_figure2(fig);
                out.push_str("\nvdd_v,exact,approx");
                for &(v, e, a) in &fig.points {
                    out.push_str(&format!("\n{v},{e},{a}"));
                }
                out
            }
            Payload::Figure34(fig) => render_figure34(fig),
            Payload::Pareto(fig) => render_pareto(fig),
            Payload::Export(listing) => format!(
                "wrote Verilog/DOT for 13 architectures + rca.vcd to {}",
                listing.dir
            ),
            Payload::Lint(summaries) => {
                let errors: usize = summaries.iter().map(|s| s.report.error_count()).sum();
                let warnings: usize = summaries.iter().map(|s| s.report.warning_count()).sum();
                let mut out = format!(
                    "Lint - {} netlist(s), {} error(s), {} warning(s)\n",
                    summaries.len(),
                    errors,
                    warnings
                );
                for s in summaries {
                    out.push_str(&s.report.render_text());
                }
                out
            }
            Payload::Sta(rows) => {
                let mut t = optpower_report::Table::new(&[
                    "arch",
                    "width",
                    "cells",
                    "stride",
                    "LD",
                    "shortest",
                    "spread",
                    "skew",
                    "cp cells",
                    "g_static",
                    "g_measured",
                    "a_bound",
                    "a_measured",
                ]);
                let opt = |v: Option<f64>| match v {
                    Some(g) => format!("{g:.3}"),
                    None => "-".to_string(),
                };
                for r in rows {
                    t.row(&[
                        r.arch.clone(),
                        r.width.to_string(),
                        r.cells.to_string(),
                        r.stride_ticks.to_string(),
                        format!("{:.2}", r.logical_depth),
                        format!("{:.2}", r.shortest_path),
                        format!("{:.2}", r.path_spread),
                        format!("{:.3}", r.mean_input_skew),
                        r.critical_path_cells.to_string(),
                        format!("{:.3}", r.static_glitch_factor),
                        opt(r.measured_glitch_factor),
                        format!("{:.3}", r.static_activity_bound),
                        opt(r.measured_activity),
                    ]);
                }
                let mut out = format!("Static timing + glitch bound\n{t}");
                let pairs: Vec<(f64, f64)> = rows
                    .iter()
                    .filter_map(|r| {
                        r.measured_glitch_factor
                            .map(|m| (r.static_glitch_factor, m))
                    })
                    .collect();
                match optpower_report::pearson_correlation(&pairs) {
                    Some(r) => out.push_str(&format!(
                        "static-vs-measured glitch correlation r = {:.3} over {} architecture(s)\n",
                        r,
                        pairs.len()
                    )),
                    None => out.push_str("static-vs-measured glitch correlation: n/a\n"),
                }
                out
            }
            Payload::PruneDelta(rows) => {
                let mut t = optpower_report::Table::new(&[
                    "arch",
                    "width",
                    "N raw",
                    "N pruned",
                    "removed",
                    "a raw",
                    "a pruned",
                    "Ptot raw [uW]",
                    "Ptot pruned [uW]",
                    "dPtot [%]",
                ]);
                for r in rows {
                    t.row(&[
                        r.arch.clone(),
                        r.width.to_string(),
                        (r.cells_before + r.dffs_before).to_string(),
                        (r.cells_after + r.dffs_after).to_string(),
                        r.cells_removed().to_string(),
                        format!("{:.4}", r.activity_before),
                        format!("{:.4}", r.activity_after),
                        format!("{:.3}", r.ptot_uw_before),
                        format!("{:.3}", r.ptot_uw_after),
                        format!("{:+.2}", r.ptot_delta_pct()),
                    ]);
                }
                let removed: usize = rows.iter().map(PruneDeltaRow::cells_removed).sum();
                format!(
                    "Dead-cone prune delta - {} row(s), {} cell(s) removed\n{t}",
                    rows.len(),
                    removed
                )
            }
            Payload::Batch(artifacts) => artifacts
                .iter()
                .map(Artifact::render_text)
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }

    /// The deterministic document: schema, job kind, the spec that ran
    /// and the typed payload — everything except run metadata. Two
    /// runs of the same spec produce identical bytes whatever the
    /// worker count (golden-file friendly).
    pub fn payload_json(&self) -> String {
        self.payload_value().to_string()
    }

    /// The full envelope: [`Artifact::payload_json`] plus the `meta`
    /// object (wall time, resolved workers).
    pub fn to_json(&self) -> String {
        let mut doc = match self.payload_value() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("payload_value is always an object"),
        };
        let mut meta = vec![
            (
                "seed".to_string(),
                self.meta.seed.map(Json::UInt).unwrap_or(Json::Null),
            ),
            ("workers".to_string(), Json::UInt(self.meta.workers as u64)),
            (
                "engine".to_string(),
                self.meta.engine.map(Json::str).unwrap_or(Json::Null),
            ),
            ("wall_ms".to_string(), Json::num(self.meta.wall_ms)),
            (
                "cache".to_string(),
                self.meta
                    .cache
                    .map(|c| Json::str(c.label()))
                    .unwrap_or(Json::Null),
            ),
        ];
        // Emitted only when the run actually consulted the row cache,
        // so cacheless envelopes stay byte-identical to the legacy
        // shape.
        if let Some(rc) = self.meta.row_cache {
            meta.push((
                "row_cache".to_string(),
                Json::obj([
                    ("hits", Json::UInt(rc.hits)),
                    ("misses", Json::UInt(rc.misses)),
                ]),
            ));
        }
        // Same only-when-present rule as `row_cache`: single-host runs
        // keep the exact legacy meta shape.
        if let Some(d) = self.meta.dist {
            meta.push((
                "dist".to_string(),
                Json::obj([
                    ("hosts", Json::UInt(d.hosts as u64)),
                    ("shards", Json::UInt(d.shards as u64)),
                    ("retries", Json::UInt(d.retries)),
                ]),
            ));
        }
        doc.push(("meta".to_string(), Json::Obj(meta)));
        Json::Obj(doc).to_string()
    }

    fn payload_value(&self) -> Json {
        Json::obj([
            ("schema", Json::str(ARTIFACT_SCHEMA)),
            ("job", Json::str(self.kind())),
            ("spec", self.spec.to_json_value()),
            ("payload", payload_data(&self.payload)),
        ])
    }

    /// The CSV rendering of the payload's primary table.
    pub fn to_csv(&self) -> String {
        match &self.payload {
            Payload::Rows { rows, .. } => {
                let mut out = String::from(
                    "name,paper_vdd_v,vdd_v,paper_vth_v,vth_v,paper_ptot_uw,ptot_uw,\
                     paper_eq13_uw,eq13_uw,paper_err_pct,err_pct\n",
                );
                for r in rows {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{},{},{}\n",
                        csv_field(&r.name),
                        r.paper_vdd,
                        r.our_vdd,
                        r.paper_vth,
                        r.our_vth,
                        r.paper_ptot_uw,
                        r.our_ptot_uw,
                        r.paper_eq13_uw,
                        r.our_eq13_uw,
                        r.paper_err_pct,
                        r.our_err_pct,
                    ));
                }
                out
            }
            Payload::Flavors(rows) => {
                let mut out = String::from("flavor,vdd_nom_v,vth0_nom_v,io_ua,zeta_pf,alpha,n\n");
                for r in rows {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{}\n",
                        r.flavor, r.vdd_nom_v, r.vth0_nom_v, r.io_ua, r.zeta_pf, r.alpha, r.n,
                    ));
                }
                out
            }
            Payload::Scaling { unscaled, scaled } => {
                let mut out = String::from("port,f_mhz,node,ptot_uw,winner\n");
                for (port, rows) in [("wire_dominated", unscaled), ("scaled", scaled)] {
                    for r in rows {
                        for (node, p) in &r.ptot_uw {
                            out.push_str(&format!(
                                "{port},{},{node},{},{}\n",
                                r.f_mhz,
                                if p.is_finite() {
                                    p.to_string()
                                } else {
                                    String::new()
                                },
                                r.winner.unwrap_or(""),
                            ));
                        }
                    }
                }
                out
            }
            Payload::Sensitivity(rows) => {
                let mut out =
                    String::from("arch,s_activity,s_cells,s_logical_depth,s_frequency,s_io\n");
                for r in rows {
                    out.push_str(&format!(
                        "{},{},{},{},{},{}\n",
                        csv_field(r.name),
                        r.sens.activity,
                        r.sens.cells,
                        r.sens.logical_depth,
                        r.sens.frequency,
                        r.sens.io,
                    ));
                }
                out
            }
            Payload::Ablation {
                fit,
                optimizer,
                glitch,
                ..
            } => {
                let mut out = String::from("section,label,v1,v2,v3,v4\n");
                for r in fit {
                    out.push_str(&format!(
                        "fit_range,{:.2}-{:.2},{},{},{},\n",
                        r.lo, r.hi, r.a, r.b, r.max_error
                    ));
                }
                for r in optimizer {
                    out.push_str(&format!(
                        "optimizer,{},{},{},,\n",
                        csv_field(&r.strategy),
                        r.ptot_uw,
                        r.excess_pct
                    ));
                }
                for r in glitch {
                    out.push_str(&format!(
                        "glitch,{},{},{},{},{}\n",
                        csv_field(&r.name),
                        r.activity_timed,
                        r.activity_zero_delay,
                        r.ptot_timed_uw,
                        r.ptot_zero_delay_uw,
                    ));
                }
                out
            }
            Payload::AbInitio(rows) => glitch_rows_to_csv(rows),
            Payload::Glitch(sweep) => glitch_rows_to_csv(&sweep.rows),
            Payload::Activity { spec, report } => format!(
                "arch,width,engine,items,warmup,seed,activity,transitions,measured_items,cells\n\
                 {},{},{},{},{},{},{},{},{},{}\n",
                csv_field(&spec.arch),
                spec.width,
                engine_name(spec.engine),
                spec.items,
                spec.warmup,
                spec.seed,
                report.activity,
                report.transitions,
                report.items,
                report.cells,
            ),
            Payload::Figure1(fig) => {
                let mut out = String::from("vdd_v,activity,ptot_w\n");
                for curve in &fig.curves {
                    for &(v, p) in &curve.points {
                        out.push_str(&format!("{v},{},{p}\n", curve.activity));
                    }
                }
                out
            }
            Payload::Figure2(fig) => {
                let mut out = String::from("vdd_v,exact,approx\n");
                for &(v, e, a) in &fig.points {
                    out.push_str(&format!("{v},{e},{a}\n"));
                }
                out
            }
            Payload::Figure34(fig) => {
                let mut out = String::from(
                    "style,stages,registers,logical_depth,path_spread,mean_input_skew,\
                     activity_timed,activity_zero_delay,glitch_factor\n",
                );
                for s in &fig.summaries {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{}\n",
                        s.style,
                        s.stages,
                        s.registers,
                        s.logical_depth,
                        s.path_spread,
                        s.mean_input_skew,
                        s.activity_timed,
                        s.activity_zero_delay,
                        s.glitch_factor(),
                    ));
                }
                out
            }
            Payload::Pareto(fig) => pareto_front_csv(fig),
            Payload::Export(listing) => {
                let mut out = String::from("file\n");
                for f in &listing.files {
                    out.push_str(&csv_field(f));
                    out.push('\n');
                }
                out
            }
            Payload::Lint(summaries) => {
                let mut out =
                    String::from("arch,width,cells,nets,severity,rule_id,rule,cell,net,message\n");
                for s in summaries {
                    if s.report.is_clean() {
                        out.push_str(&format!(
                            "{},{},{},{},clean,,,,,\n",
                            csv_field(&s.arch),
                            s.width,
                            s.report.cell_count(),
                            s.report.net_count(),
                        ));
                        continue;
                    }
                    for d in s.report.diagnostics() {
                        out.push_str(&format!(
                            "{},{},{},{},{},{},{},{},{},{}\n",
                            csv_field(&s.arch),
                            s.width,
                            s.report.cell_count(),
                            s.report.net_count(),
                            d.rule.severity().label(),
                            d.rule.id(),
                            d.rule.name(),
                            d.cell.map(|c| c.index().to_string()).unwrap_or_default(),
                            d.net.map(|n| n.index().to_string()).unwrap_or_default(),
                            csv_field(&d.message),
                        ));
                    }
                }
                out
            }
            Payload::Sta(rows) => {
                let mut out = String::from(
                    "arch,width,cells,stride_ticks,logical_depth,shortest_path,path_spread,\
                     mean_input_skew,critical_path_cells,static_glitch_factor,\
                     measured_glitch_factor,static_activity_bound,measured_activity\n",
                );
                for r in rows {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                        csv_field(&r.arch),
                        r.width,
                        r.cells,
                        r.stride_ticks,
                        r.logical_depth,
                        r.shortest_path,
                        r.path_spread,
                        r.mean_input_skew,
                        r.critical_path_cells,
                        r.static_glitch_factor,
                        r.measured_glitch_factor
                            .map(|g| g.to_string())
                            .unwrap_or_default(),
                        r.static_activity_bound,
                        r.measured_activity
                            .map(|a| a.to_string())
                            .unwrap_or_default(),
                    ));
                }
                out
            }
            Payload::PruneDelta(rows) => {
                let mut out = String::from(
                    "arch,width,cells_before,cells_after,cells_removed,dffs_before,dffs_after,\
                     activity_before,activity_after,ptot_uw_before,ptot_uw_after,ptot_delta_pct\n",
                );
                for r in rows {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                        csv_field(&r.arch),
                        r.width,
                        r.cells_before,
                        r.cells_after,
                        r.cells_removed(),
                        r.dffs_before,
                        r.dffs_after,
                        r.activity_before,
                        r.activity_after,
                        r.ptot_uw_before,
                        r.ptot_uw_after,
                        r.ptot_delta_pct(),
                    ));
                }
                out
            }
            Payload::Batch(artifacts) => {
                let mut out = String::new();
                for a in artifacts {
                    out.push_str(&format!("# job: {}\n", a.kind()));
                    out.push_str(&a.to_csv());
                }
                out
            }
        }
    }
}

/// Quotes a CSV field when it contains a separator, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The typed payload as a JSON tree.
fn payload_data(payload: &Payload) -> Json {
    match payload {
        Payload::Rows { title, rows } => Json::obj([
            ("title", Json::str(title.clone())),
            (
                "rows",
                Json::Arr(rows.iter().map(comparison_value).collect()),
            ),
        ]),
        Payload::Flavors(rows) => Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("flavor", Json::str(r.flavor)),
                        ("vdd_nom_v", Json::num(r.vdd_nom_v)),
                        ("vth0_nom_v", Json::num(r.vth0_nom_v)),
                        ("io_ua", Json::num(r.io_ua)),
                        ("zeta_pf", Json::num(r.zeta_pf)),
                        ("alpha", Json::num(r.alpha)),
                        ("n", Json::num(r.n)),
                    ])
                })
                .collect(),
        ),
        Payload::Scaling { unscaled, scaled } => Json::obj([
            ("unscaled", scaling_value(unscaled)),
            ("scaled", scaling_value(scaled)),
        ]),
        Payload::Sensitivity(rows) => Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj([
                        ("arch", Json::str(r.name)),
                        ("s_activity", Json::num(r.sens.activity)),
                        ("s_cells", Json::num(r.sens.cells)),
                        ("s_logical_depth", Json::num(r.sens.logical_depth)),
                        ("s_frequency", Json::num(r.sens.frequency)),
                        ("s_io", Json::num(r.sens.io)),
                    ])
                })
                .collect(),
        ),
        Payload::Ablation {
            alpha,
            fit,
            optimizer,
            glitch,
        } => Json::obj([
            ("alpha", Json::num(*alpha)),
            (
                "fit_ranges",
                Json::Arr(
                    fit.iter()
                        .map(|r| {
                            Json::obj([
                                ("lo_v", Json::num(r.lo)),
                                ("hi_v", Json::num(r.hi)),
                                ("a", Json::num(r.a)),
                                ("b", Json::num(r.b)),
                                ("max_error", Json::num(r.max_error)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "optimizer",
                Json::Arr(
                    optimizer
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("strategy", Json::str(r.strategy.clone())),
                                ("ptot_uw", Json::num(r.ptot_uw)),
                                ("excess_pct", Json::num(r.excess_pct)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "glitch",
                Json::Arr(
                    glitch
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("arch", Json::str(r.name.clone())),
                                ("activity_timed", Json::num(r.activity_timed)),
                                ("activity_zero_delay", Json::num(r.activity_zero_delay)),
                                ("ptot_timed_uw", Json::num(r.ptot_timed_uw)),
                                ("ptot_zero_delay_uw", Json::num(r.ptot_zero_delay_uw)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Payload::AbInitio(rows) => Json::obj([(
            "rows",
            Json::Arr(rows.iter().map(ab_initio_value).collect()),
        )]),
        Payload::Glitch(sweep) => Json::obj([
            (
                "rows",
                Json::Arr(sweep.rows.iter().map(ab_initio_value).collect()),
            ),
            (
                "frequencies_hz",
                Json::Arr(
                    sweep
                        .frequencies
                        .iter()
                        .map(|f| Json::num(f.value()))
                        .collect(),
                ),
            ),
            ("glitch_aware", result_set_value(&sweep.glitch_aware)),
            ("glitch_free", result_set_value(&sweep.glitch_free)),
            (
                "total_glitch_cost_w",
                Json::num(sweep.total_glitch_cost_w()),
            ),
        ]),
        Payload::Activity { spec, report } => Json::obj([
            ("arch", Json::str(spec.arch.clone())),
            ("width", Json::UInt(spec.width as u64)),
            ("engine", Json::str(engine_name(spec.engine))),
            ("activity", Json::num(report.activity)),
            ("transitions", Json::UInt(report.transitions)),
            ("measured_items", Json::UInt(report.items)),
            ("cells", Json::UInt(report.cells as u64)),
        ]),
        Payload::Figure1(fig) => Json::obj([(
            "curves",
            Json::Arr(
                fig.curves
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("activity", Json::num(c.activity)),
                            ("vdd_opt_v", Json::num(c.optimum.vdd().value())),
                            ("vth_opt_v", Json::num(c.optimum.vth().value())),
                            ("ptot_opt_w", Json::num(c.optimum.ptot().value())),
                            ("dyn_static_ratio", Json::num(c.dyn_static_ratio)),
                            (
                                "points",
                                Json::Arr(
                                    c.points
                                        .iter()
                                        .map(|&(v, p)| Json::Arr(vec![Json::num(v), Json::num(p)]))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )]),
        Payload::Figure2(fig) => Json::obj([
            (
                "fit",
                Json::obj([
                    ("alpha", Json::num(fig.fit.alpha())),
                    ("a", Json::num(fig.fit.a())),
                    ("b", Json::num(fig.fit.b())),
                    ("max_error", Json::num(fig.fit.max_error())),
                    ("lo_v", Json::num(fig.fit.lo().value())),
                    ("hi_v", Json::num(fig.fit.hi().value())),
                ]),
            ),
            (
                "points",
                Json::Arr(
                    fig.points
                        .iter()
                        .map(|&(v, e, a)| Json::Arr(vec![Json::num(v), Json::num(e), Json::num(a)]))
                        .collect(),
                ),
            ),
        ]),
        Payload::Figure34(fig) => Json::obj([
            ("width", Json::UInt(fig.width as u64)),
            (
                "summaries",
                Json::Arr(
                    fig.summaries
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("style", Json::str(s.style)),
                                ("stages", Json::UInt(u64::from(s.stages))),
                                ("registers", Json::UInt(s.registers as u64)),
                                ("logical_depth", Json::num(s.logical_depth)),
                                ("path_spread", Json::num(s.path_spread)),
                                ("mean_input_skew", Json::num(s.mean_input_skew)),
                                ("activity_timed", Json::num(s.activity_timed)),
                                ("activity_zero_delay", Json::num(s.activity_zero_delay)),
                                ("glitch_factor", Json::num(s.glitch_factor())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Payload::Pareto(fig) => Json::obj([
            (
                "frequencies_hz",
                Json::Arr(
                    fig.frequencies
                        .iter()
                        .map(|f| Json::num(f.value()))
                        .collect(),
                ),
            ),
            ("result", result_set_value(&fig.result)),
            (
                "front",
                Json::Arr(
                    fig.front_points()
                        .into_iter()
                        .map(|(f, tech, arch, ptot)| {
                            Json::obj([
                                ("frequency_hz", Json::num(f)),
                                ("tech", Json::str(tech)),
                                ("arch", Json::str(arch)),
                                ("ptot_w", Json::num(ptot)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Payload::Export(listing) => Json::obj([
            ("dir", Json::str(listing.dir.clone())),
            (
                "files",
                Json::Arr(listing.files.iter().map(Json::str).collect()),
            ),
        ]),
        Payload::Lint(summaries) => {
            // Aggregated per-rule totals over the whole sweep, with
            // every rule ID present even at zero — CI greps for
            // `"L001":0` / `"L002":0` as the dead-logic tripwire.
            const RULE_IDS: [&str; 7] = ["L001", "L002", "L003", "L004", "L005", "L006", "L007"];
            let mut counts = [0u64; RULE_IDS.len()];
            for s in summaries {
                for d in s.report.diagnostics() {
                    if let Some(i) = RULE_IDS.iter().position(|&id| id == d.rule.id()) {
                        counts[i] += 1;
                    }
                }
            }
            let rule_counts = Json::Obj(
                RULE_IDS
                    .iter()
                    .zip(counts)
                    .map(|(&id, n)| (id.to_string(), Json::UInt(n)))
                    .collect(),
            );
            Json::obj([
                ("rule_counts", rule_counts),
                (
                    "netlists",
                    Json::Arr(
                        summaries
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("arch", Json::str(s.arch.clone())),
                                    ("width", Json::UInt(s.width as u64)),
                                    ("cells", Json::UInt(s.report.cell_count() as u64)),
                                    ("nets", Json::UInt(s.report.net_count() as u64)),
                                    ("errors", Json::UInt(s.report.error_count() as u64)),
                                    ("warnings", Json::UInt(s.report.warning_count() as u64)),
                                    (
                                        "diagnostics",
                                        Json::Arr(
                                            s.report
                                                .diagnostics()
                                                .iter()
                                                .map(|d| {
                                                    Json::obj([
                                                        ("id", Json::str(d.rule.id())),
                                                        ("rule", Json::str(d.rule.name())),
                                                        (
                                                            "severity",
                                                            Json::str(d.rule.severity().label()),
                                                        ),
                                                        (
                                                            "cell",
                                                            d.cell
                                                                .map(|c| {
                                                                    Json::UInt(c.index() as u64)
                                                                })
                                                                .unwrap_or(Json::Null),
                                                        ),
                                                        (
                                                            "net",
                                                            d.net
                                                                .map(|n| {
                                                                    Json::UInt(n.index() as u64)
                                                                })
                                                                .unwrap_or(Json::Null),
                                                        ),
                                                        ("message", Json::str(d.message.clone())),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
        Payload::Sta(rows) => {
            let pairs: Vec<(f64, f64)> = rows
                .iter()
                .filter_map(|r| {
                    r.measured_glitch_factor
                        .map(|m| (r.static_glitch_factor, m))
                })
                .collect();
            Json::obj([
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                Json::obj([
                                    ("arch", Json::str(r.arch.clone())),
                                    ("width", Json::UInt(r.width as u64)),
                                    ("cells", Json::UInt(r.cells as u64)),
                                    ("stride_ticks", Json::UInt(r.stride_ticks)),
                                    ("logical_depth", Json::num(r.logical_depth)),
                                    ("shortest_path", Json::num(r.shortest_path)),
                                    ("path_spread", Json::num(r.path_spread)),
                                    ("mean_input_skew", Json::num(r.mean_input_skew)),
                                    (
                                        "critical_path_cells",
                                        Json::UInt(r.critical_path_cells as u64),
                                    ),
                                    ("static_glitch_factor", Json::num(r.static_glitch_factor)),
                                    (
                                        "measured_glitch_factor",
                                        r.measured_glitch_factor
                                            .map(Json::num)
                                            .unwrap_or(Json::Null),
                                    ),
                                    ("static_activity_bound", Json::num(r.static_activity_bound)),
                                    (
                                        "measured_activity",
                                        r.measured_activity.map(Json::num).unwrap_or(Json::Null),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "static_vs_measured_r",
                    optpower_report::pearson_correlation(&pairs)
                        .map(Json::num)
                        .unwrap_or(Json::Null),
                ),
            ])
        }
        Payload::PruneDelta(rows) => Json::obj([(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("arch", Json::str(r.arch.clone())),
                            ("width", Json::UInt(r.width as u64)),
                            ("cells_before", Json::UInt(r.cells_before as u64)),
                            ("cells_after", Json::UInt(r.cells_after as u64)),
                            ("cells_removed", Json::UInt(r.cells_removed() as u64)),
                            ("dffs_before", Json::UInt(r.dffs_before as u64)),
                            ("dffs_after", Json::UInt(r.dffs_after as u64)),
                            ("activity_before", Json::num(r.activity_before)),
                            ("activity_after", Json::num(r.activity_after)),
                            ("ptot_uw_before", Json::num(r.ptot_uw_before)),
                            ("ptot_uw_after", Json::num(r.ptot_uw_after)),
                            ("ptot_delta_pct", Json::num(r.ptot_delta_pct())),
                        ])
                    })
                    .collect(),
            ),
        )]),
        Payload::Batch(artifacts) => Json::Arr(
            artifacts
                .iter()
                .map(|a| {
                    Json::obj([
                        ("job", Json::str(a.kind())),
                        ("spec", a.spec.to_json_value()),
                        ("payload", payload_data(&a.payload)),
                    ])
                })
                .collect(),
        ),
    }
}

fn comparison_value(r: &RowComparison) -> Json {
    Json::obj([
        ("name", Json::str(r.name.clone())),
        ("paper_vdd_v", Json::num(r.paper_vdd)),
        ("vdd_v", Json::num(r.our_vdd)),
        ("paper_vth_v", Json::num(r.paper_vth)),
        ("vth_v", Json::num(r.our_vth)),
        ("paper_ptot_uw", Json::num(r.paper_ptot_uw)),
        ("ptot_uw", Json::num(r.our_ptot_uw)),
        ("paper_eq13_uw", Json::num(r.paper_eq13_uw)),
        ("eq13_uw", Json::num(r.our_eq13_uw)),
        ("paper_err_pct", Json::num(r.paper_err_pct)),
        ("err_pct", Json::num(r.our_err_pct)),
    ])
}

fn scaling_value(rows: &[ScalingRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("f_mhz", Json::num(r.f_mhz)),
                    (
                        "ptot_uw",
                        Json::Arr(
                            r.ptot_uw
                                .iter()
                                .map(|&(node, p)| {
                                    Json::obj([
                                        ("node", Json::str(node)),
                                        ("ptot_uw", Json::num(p)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("winner", r.winner.map(Json::str).unwrap_or(Json::Null)),
                ])
            })
            .collect(),
    )
}

fn ab_initio_value(r: &AbInitioRow) -> Json {
    Json::obj([
        ("arch", Json::str(r.arch.paper_name())),
        ("width", Json::UInt(r.width as u64)),
        ("cells", Json::UInt(r.cells as u64)),
        ("area_um2", Json::num(r.area_um2)),
        ("activity_timed", Json::num(r.activity)),
        ("activity_zero_delay", Json::num(r.activity_zero_delay)),
        ("glitch_factor", Json::num(r.glitch_factor())),
        ("ld_eff", Json::num(r.ld_eff)),
        ("cap_per_cell_f", Json::num(r.cap_per_cell_f)),
        ("vdd_v", Json::num(r.vdd)),
        ("vth_v", Json::num(r.vth)),
        ("ptot_uw", Json::num(r.ptot_uw)),
        ("eq13_uw", Json::num(r.eq13_uw)),
    ])
}

fn result_set_value(rs: &optpower_explore::ResultSet) -> Json {
    Json::obj([(
        "records",
        Json::Arr(
            rs.records()
                .iter()
                .map(|r| {
                    let mut pairs = vec![
                        ("tech".to_string(), Json::str(r.tech)),
                        ("arch".to_string(), Json::str(r.arch.clone())),
                        ("frequency_hz".to_string(), Json::num(r.frequency.value())),
                        ("status".to_string(), Json::str(r.status())),
                    ];
                    if let Some(opt) = r.optimum() {
                        let b = opt.breakdown();
                        pairs.extend([
                            ("vdd_v".to_string(), Json::num(opt.vdd().value())),
                            ("vth_v".to_string(), Json::num(opt.vth().value())),
                            ("pdyn_w".to_string(), Json::num(b.pdyn().value())),
                            ("pstat_w".to_string(), Json::num(b.pstat().value())),
                            ("ptot_w".to_string(), Json::num(opt.ptot().value())),
                            (
                                "energy_per_op_j".to_string(),
                                Json::num(opt.energy_per_item(r.frequency)),
                            ),
                        ]);
                    }
                    Json::Obj(pairs)
                })
                .collect(),
        ),
    )])
}
