//! Splitting a grid-shaped [`JobSpec`] into shard specs.
//!
//! A shard is an ordinary `JobSpec` — it travels over the frozen
//! `optpower-job/v1` wire form, executes through the unchanged
//! [`crate::Runtime`], and is content-addressed by the same
//! [`JobSpec::canonical_key`] as any other job. Distribution therefore
//! adds no new execution semantics: a coordinator fans shard specs out
//! to workers and [`crate::Artifact::merge_shards`] reassembles the
//! single-host payload bit for bit.
//!
//! The split follows each job's *resolution order* (the exact order
//! the runtime would evaluate the grid in), cut into balanced
//! contiguous chunks — so concatenating shard results in shard-spec
//! order is the identity on the single-host row order, which is what
//! makes the merge a pure reordering and never a recomputation.

use crate::error::{SpecError, WorkloadError};
use crate::runtime::{first_duplicate, resolve_archs, resolve_table1_names, width_error};
use crate::spec::{AbInitioSpec, JobSpec};
use optpower_mult::Architecture;
use optpower_report::table1_names;

impl JobSpec {
    /// Splits this job into at most `n`-ish independent shard specs
    /// along its natural grid axis, in resolution order:
    ///
    /// * `ab_initio` — the architecture axis, as smaller explicit
    ///   `archs` lists;
    /// * `glitch_sweep` — the (width × architecture) cell grid,
    ///   width-major, emitted as `ab_initio` sub-specs (one per
    ///   contiguous same-width run; the coordinator rebuilds the sweep
    ///   from the merged rows, so a shard never re-runs the frequency
    ///   sweep). Because chunks split at width boundaries this can
    ///   yield slightly more than `n` shards;
    /// * `table1_sweep` — the published row axis;
    /// * `batch` — one shard per *unique* member (deduplicated by
    ///   canonical key, first-occurrence order), so repeated members
    ///   execute once and the merge clones;
    /// * everything else — indivisible: one shard, the spec itself.
    ///
    /// `n <= 1` always returns the spec unsplit. Validation is the
    /// runtime's own (same typed errors for empty/unknown/duplicate
    /// axes), so a spec that shards is a spec that would run.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] when the axis list is empty, names an
    /// unknown architecture/row, repeats an entry, or (with an
    /// explicit arch list) requests an unsupported width.
    pub fn shard(&self, n: usize) -> Result<Vec<JobSpec>, WorkloadError> {
        if n <= 1 {
            return Ok(vec![self.clone()]);
        }
        Ok(match self {
            JobSpec::AbInitio(s) => {
                let names: Vec<String> = resolve_archs(&s.archs)?
                    .iter()
                    .map(|a| a.paper_name().to_string())
                    .collect();
                chunks(&names, n)
                    .into_iter()
                    .map(|chunk| {
                        JobSpec::AbInitio(AbInitioSpec {
                            archs: Some(chunk),
                            ..s.clone()
                        })
                    })
                    .collect()
            }
            JobSpec::GlitchSweep(s) => {
                let cells = glitch_cells(s)?;
                chunks(&cells, n)
                    .into_iter()
                    .flat_map(split_at_width_boundaries)
                    .map(|(width, names)| {
                        JobSpec::AbInitio(AbInitioSpec {
                            archs: Some(names),
                            width,
                            lanes: s.lanes,
                            engine: s.engine,
                            plane: s.plane,
                            items: s.items,
                            seed: s.seed,
                            workers: s.workers,
                        })
                    })
                    .collect()
            }
            JobSpec::Table1Sweep { archs } => {
                let names: Vec<String> = match archs {
                    Some(names) => {
                        resolve_table1_names(names)?;
                        names.clone()
                    }
                    None => table1_names().iter().map(|&s| s.to_string()).collect(),
                };
                chunks(&names, n)
                    .into_iter()
                    .map(|chunk| JobSpec::Table1Sweep { archs: Some(chunk) })
                    .collect()
            }
            JobSpec::Batch(jobs) if !jobs.is_empty() => {
                let mut seen = Vec::new();
                let mut shards = Vec::new();
                for job in jobs {
                    let key = job.canonical_key();
                    if !seen.contains(&key) {
                        seen.push(key);
                        shards.push(job.clone());
                    }
                }
                shards
            }
            _ => vec![self.clone()],
        })
    }
}

/// The glitch sweep's evaluation grid in the runtime's exact order:
/// width-major, architectures in resolution order, narrowed per width
/// by the same rule [`crate::Runtime`] applies (explicit arch list +
/// unsupported width is an error; the default narrows to supporting
/// architectures). Shared by the sharder and the merge.
pub(crate) fn glitch_cells(
    s: &crate::spec::GlitchSweepSpec,
) -> Result<Vec<(usize, String)>, WorkloadError> {
    if s.widths.is_empty() {
        return Err(SpecError::new("\"widths\" must not be empty").into());
    }
    if let Some(dup) = first_duplicate(&s.widths) {
        return Err(SpecError::new(format!("\"widths\" lists {dup} more than once")).into());
    }
    let archs = resolve_archs(&s.archs)?;
    let mut cells = Vec::new();
    for &width in &s.widths {
        let subset: Vec<Architecture> = if s.archs.is_some() {
            for &arch in &archs {
                if !arch.supports_width(width) {
                    return Err(width_error(arch, width));
                }
            }
            archs.clone()
        } else {
            archs
                .iter()
                .copied()
                .filter(|a| a.supports_width(width))
                .collect()
        };
        if subset.is_empty() {
            return Err(SpecError::new(format!(
                "no requested architecture supports width {width}"
            ))
            .into());
        }
        cells.extend(subset.iter().map(|a| (width, a.paper_name().to_string())));
    }
    Ok(cells)
}

/// Cuts `items` into at most `n` balanced contiguous chunks (sizes
/// differ by at most one, larger chunks first), preserving order.
fn chunks<T: Clone>(items: &[T], n: usize) -> Vec<Vec<T>> {
    let n = n.clamp(1, items.len().max(1));
    let base = items.len() / n;
    let extra = items.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut at = 0;
    for k in 0..n {
        let take = base + usize::from(k < extra);
        out.push(items[at..at + take].to_vec());
        at += take;
    }
    out
}

/// Regroups one chunk of (width, arch) cells into contiguous
/// same-width runs — each run becomes one single-width `ab_initio`
/// shard spec.
fn split_at_width_boundaries(chunk: Vec<(usize, String)>) -> Vec<(usize, Vec<String>)> {
    let mut runs: Vec<(usize, Vec<String>)> = Vec::new();
    for (width, name) in chunk {
        match runs.last_mut() {
            Some((w, names)) if *w == width => names.push(name),
            _ => runs.push((width, vec![name])),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GlitchSweepSpec;

    /// Every shard count partitions the arch axis contiguously: the
    /// concatenation of shard arch lists is the full resolution order.
    #[test]
    fn ab_initio_shards_partition_the_arch_axis() {
        let spec = JobSpec::AbInitio(AbInitioSpec::default());
        let full: Vec<String> = Architecture::ALL
            .iter()
            .map(|a| a.paper_name().to_string())
            .collect();
        for n in [1, 2, 4, 8, 13, 50] {
            let shards = spec.shard(n).unwrap();
            assert!(shards.len() <= n.max(1));
            let mut joined = Vec::new();
            for shard in &shards {
                match shard {
                    JobSpec::AbInitio(s) if n > 1 => {
                        joined.extend(s.archs.clone().expect("shards pin archs"));
                        assert_eq!(s.width, 16);
                        assert_eq!(s.seed, 42);
                    }
                    JobSpec::AbInitio(_) => joined = full.clone(),
                    other => panic!("{other:?}"),
                }
            }
            assert_eq!(joined, full, "n={n}");
        }
    }

    /// Glitch-sweep shards are single-width ab-initio specs whose
    /// (width, arch) cells concatenate to the runtime's width-major
    /// evaluation grid.
    #[test]
    fn glitch_sweep_shards_cover_the_width_major_grid() {
        let spec_inner = GlitchSweepSpec {
            widths: vec![4, 8],
            items: 20,
            freq_points: 3,
            ..GlitchSweepSpec::default()
        };
        let grid = glitch_cells(&spec_inner).unwrap();
        let spec = JobSpec::GlitchSweep(spec_inner);
        for n in [2, 3, 8] {
            let mut joined = Vec::new();
            for shard in spec.shard(n).unwrap() {
                match shard {
                    JobSpec::AbInitio(s) => {
                        for name in s.archs.expect("shards pin archs") {
                            joined.push((s.width, name));
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            assert_eq!(joined, grid, "n={n}");
        }
    }

    /// Batch sharding deduplicates repeated members by canonical key,
    /// keeping first-occurrence order.
    #[test]
    fn batch_shards_are_unique_members() {
        let member = JobSpec::Figure2 { samples: 8 };
        let spec = JobSpec::Batch(vec![member.clone(), JobSpec::Table2, member.clone()]);
        let shards = spec.shard(4).unwrap();
        assert_eq!(shards, vec![member, JobSpec::Table2]);
        // An empty batch (and any indivisible job) passes through.
        assert_eq!(
            JobSpec::Batch(Vec::new()).shard(4).unwrap(),
            vec![JobSpec::Batch(Vec::new())]
        );
        assert_eq!(JobSpec::Table2.shard(4).unwrap(), vec![JobSpec::Table2]);
    }

    /// Axis validation matches the runtime's typed errors.
    #[test]
    fn invalid_axes_fail_to_shard() {
        let empty = JobSpec::Table1Sweep {
            archs: Some(Vec::new()),
        };
        assert!(empty.shard(2).is_err());
        let unknown = JobSpec::AbInitio(AbInitioSpec {
            archs: Some(vec!["Warp".to_string()]),
            ..AbInitioSpec::default()
        });
        assert!(unknown.shard(2).is_err());
        let dup_width = JobSpec::GlitchSweep(GlitchSweepSpec {
            widths: vec![8, 8],
            ..GlitchSweepSpec::default()
        });
        assert!(dup_width.shard(2).is_err());
    }
}
