//! The frozen v1 wire surface shared by every front-end: output
//! format negotiation, the machine-readable error body, and the
//! HTTP-independent job request/response pair.
//!
//! This module is deliberately transport-free — nothing here knows
//! about sockets or HTTP framing. The `optpower` CLI and the
//! `optpower serve` job service both build on these types, so a spec
//! that fails with `invalid_spec` on the command line fails with the
//! same machine-readable code (and the same derived exit/status) over
//! the wire. Freezing the mapping in `crates/workload` is what makes
//! the contract in `crates/serve/README.md` stable: the serve crate
//! adds transport-level codes (`queue_full`, `draining`, …) but never
//! re-maps a workload failure.

use std::io;

use crate::artifact::{Artifact, CacheStatus, RowCacheStats};
use crate::error::{SpecError, WorkloadError};
use crate::json::Json;
use crate::spec::JobSpec;

/// Schema tag of the machine-readable error body.
pub const ERROR_SCHEMA: &str = "optpower-error/v1";

/// Schema tag of the job status document (async submissions).
pub const STATUS_SCHEMA: &str = "optpower-job-status/v1";

/// The three renderings every artifact supports, as a negotiable wire
/// format. The CLI selects one with `--json` / `--csv` flags; the
/// server selects one from the `Accept` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// The legacy console rendering ([`Artifact::render_text`]).
    Text,
    /// The full JSON envelope ([`Artifact::to_json`]).
    #[default]
    Json,
    /// The primary table as CSV ([`Artifact::to_csv`]).
    Csv,
}

impl WireFormat {
    /// The short name (`text` / `json` / `csv`).
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Text => "text",
            WireFormat::Json => "json",
            WireFormat::Csv => "csv",
        }
    }

    /// The format by short name, as accepted by `--format`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "text" => Some(WireFormat::Text),
            "json" => Some(WireFormat::Json),
            "csv" => Some(WireFormat::Csv),
            _ => None,
        }
    }

    /// The `Content-Type` this format is served with.
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::Text => "text/plain; charset=utf-8",
            WireFormat::Json => "application/json",
            WireFormat::Csv => "text/csv",
        }
    }

    /// Content negotiation over an `Accept` header value: the first
    /// listed media type we can produce wins (explicit order, not
    /// q-values, decides). An empty or absent header means JSON; a
    /// header listing only unsupported types is `None` (HTTP 406).
    pub fn from_accept(header: &str) -> Option<Self> {
        let mut listed_any = false;
        for part in header.split(',') {
            let media = part
                .split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase();
            if media.is_empty() {
                continue;
            }
            listed_any = true;
            match media.as_str() {
                "application/json" | "application/*" | "*/*" => return Some(WireFormat::Json),
                "text/csv" => return Some(WireFormat::Csv),
                "text/plain" | "text/*" => return Some(WireFormat::Text),
                _ => {}
            }
        }
        if listed_any {
            None
        } else {
            Some(WireFormat::Json)
        }
    }

    /// Renders an artifact in this format.
    pub fn render(self, artifact: &Artifact) -> String {
        match self {
            WireFormat::Text => artifact.render_text(),
            WireFormat::Json => artifact.to_json(),
            WireFormat::Csv => artifact.to_csv(),
        }
    }
}

/// The machine-readable error surface: an HTTP-shaped status, a
/// stable snake_case code, and the human message. Every front-end
/// derives its failure signalling from this one struct — the server
/// sends it as the `optpower-error/v1` JSON body, the CLI derives its
/// exit code from the status class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// HTTP-shaped status (400/404/422/429/5xx…).
    pub status: u16,
    /// Stable machine-readable code (`invalid_spec`, `queue_full`, …).
    pub code: &'static str,
    /// The human-readable message.
    pub message: String,
}

impl ErrorBody {
    /// An error body from parts.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            code,
            message: message.into(),
        }
    }

    /// The frozen [`WorkloadError`] → wire mapping. Spec problems are
    /// the client's fault (400); jobs that parsed but cannot execute
    /// are unprocessable (422, with a per-family code); IO is the
    /// host's fault (500).
    pub fn of(err: &WorkloadError) -> Self {
        let (status, code) = match err {
            WorkloadError::Spec(_) => (400, "invalid_spec"),
            WorkloadError::Lint { .. } => (422, "lint_rejected"),
            WorkloadError::Model(_) => (422, "model_failed"),
            WorkloadError::AbInitio(_) => (422, "ab_initio_failed"),
            WorkloadError::Sim(_) => (422, "simulation_failed"),
            WorkloadError::Netlist(_) => (422, "netlist_failed"),
            WorkloadError::Io { .. } => (500, "io_failed"),
        };
        Self::new(status, code, err.to_string())
    }

    /// The `optpower-error/v1` JSON document.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(ERROR_SCHEMA)),
            ("status", Json::UInt(u64::from(self.status))),
            ("code", Json::str(self.code)),
            ("error", Json::str(self.message.clone())),
        ])
        .to_string()
    }

    /// The process exit code a CLI front-end maps this error to:
    /// 2 for client-side errors (4xx), 3 for jobs that parsed but
    /// failed to execute (422 specifically), 4 for host-side failures
    /// (5xx). Success is 0; exit 1 is left to panics.
    pub fn exit_code(&self) -> u8 {
        match self.status {
            422 => 3,
            400..=499 => 2,
            _ => 4,
        }
    }
}

/// The canonical reason phrase for the status codes the v1 wire API
/// uses (a plain `Error` for anything off-contract).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// Whether a submission waits for the artifact or returns immediately
/// with the job key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// Hold the request open until the artifact (or error) is ready.
    #[default]
    Sync,
    /// Accept, return the canonical key, let the client poll.
    Async,
}

/// One job submission, transport-independent: the parsed spec plus
/// how the caller wants the result back.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The job to run.
    pub spec: JobSpec,
    /// The negotiated response rendering.
    pub format: WireFormat,
    /// Sync (wait for the artifact) or async (return the key).
    pub mode: SubmitMode,
}

impl JobRequest {
    /// A synchronous JSON-format request for a spec.
    pub fn new(spec: JobSpec) -> Self {
        Self {
            spec,
            format: WireFormat::default(),
            mode: SubmitMode::default(),
        }
    }
}

/// The transport-independent outcome of a submission. The server
/// frames this as an HTTP response; a CLI front-end prints the body
/// and derives its exit code.
#[derive(Debug, Clone)]
pub enum JobResponse {
    /// The job ran (or was served from cache): the artifact itself
    /// (boxed — artifacts dwarf the other variants).
    Completed(Box<Artifact>),
    /// The job was queued asynchronously under its canonical key.
    Accepted {
        /// The spec's [`JobSpec::canonical_key`].
        key: String,
    },
    /// The job was rejected or failed.
    Failed(ErrorBody),
}

impl JobResponse {
    /// The HTTP-shaped status of this outcome.
    pub fn status(&self) -> u16 {
        match self {
            JobResponse::Completed(_) => 200,
            JobResponse::Accepted { .. } => 202,
            JobResponse::Failed(body) => body.status,
        }
    }
}

/// The `optpower-job-status/v1` document: the canonical key plus the
/// job's lifecycle state (`queued` / `running` / `done` / `failed`).
pub fn status_json(key: &str, state: &str) -> String {
    Json::obj([
        ("schema", Json::str(STATUS_SCHEMA)),
        ("key", Json::str(key)),
        ("state", Json::str(state)),
    ])
    .to_string()
}

/// Schema tag of the coordinator ↔ worker shard protocol.
pub const SHARD_SCHEMA: &str = "optpower-shard/v1";

/// Hard cap on one shard frame's JSON body. A malformed or hostile
/// length prefix must not become a multi-gigabyte allocation.
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// The closed error-code vocabulary a shard `error` frame may carry:
/// the frozen [`ErrorBody::of`] table plus the transport codes the
/// serve/dist layers add. Codes stay `&'static str` end to end, so a
/// code read off the wire is interned back through this table
/// (anything outside the contract becomes `"unknown_error"` rather
/// than a fabricated static).
pub fn intern_error_code(code: &str) -> &'static str {
    const CODES: &[&str] = &[
        "invalid_spec",
        "lint_rejected",
        "model_failed",
        "ab_initio_failed",
        "simulation_failed",
        "netlist_failed",
        "io_failed",
        "bad_request",
        "unknown_job",
        "unknown_path",
        "method_not_allowed",
        "not_acceptable",
        "payload_too_large",
        "queue_full",
        "draining",
        "timeout",
        "worker_failed",
    ];
    CODES
        .iter()
        .find(|&&c| c == code)
        .copied()
        .unwrap_or("unknown_error")
}

/// One worker's completed shard: the three deterministic renderings
/// (which is all bit-identity needs — `payload_json` is meta-free by
/// construction) plus the per-shard meta counters the coordinator
/// aggregates into its own envelope and `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// The shard spec's [`JobSpec::canonical_key`].
    pub shard: String,
    /// [`Artifact::payload_json`] of the shard artifact.
    pub payload_json: String,
    /// [`Artifact::to_csv`] of the shard artifact.
    pub csv: String,
    /// [`Artifact::render_text`] of the shard artifact.
    pub text: String,
    /// Worker-side wall clock of the shard, in milliseconds.
    pub wall_ms: f64,
    /// Whether the worker's artifact cache answered.
    pub cache: Option<CacheStatus>,
    /// The worker's row-cache counters for this shard, when attached.
    pub row_cache: Option<RowCacheStats>,
}

/// One `optpower-shard/v1` protocol frame. The codec is deliberately
/// transport-free: [`ShardFrame::write_to`] / [`ShardFrame::read_from`]
/// speak length-prefixed JSON over any byte stream (`crates/dist` puts
/// TCP under it; the fault tests use in-memory pipes).
///
/// Wire layout per frame: a 4-byte big-endian byte length, then that
/// many bytes of one JSON document tagged `"schema":"optpower-shard/v1"`
/// and `"frame":"hello"|"assign"|"heartbeat"|"result"|"error"`.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFrame {
    /// Connection opener (worker → coordinator on accept): who is
    /// speaking, so the coordinator can reject a non-worker endpoint
    /// before assigning anything.
    Hello {
        /// Self-description of the sender (bind address or label).
        host: String,
    },
    /// Coordinator → worker: run one shard spec.
    Assign {
        /// The shard spec's canonical key (shard identity everywhere:
        /// assignment hashing, caching, result correlation).
        shard: String,
        /// The shard spec itself.
        spec: JobSpec,
    },
    /// Worker → coordinator: the shard is still executing. Sent on a
    /// steady cadence so a silent socket means a dead worker, not a
    /// slow shard.
    Heartbeat {
        /// The executing shard's canonical key.
        shard: String,
    },
    /// Worker → coordinator: the shard completed.
    Result(Box<ShardResult>),
    /// Worker → coordinator: the shard failed deterministically (the
    /// job itself is at fault, so the coordinator must not retry it).
    Error {
        /// The failed shard's canonical key.
        shard: String,
        /// The frozen machine-readable failure.
        error: ErrorBody,
    },
}

impl ShardFrame {
    /// The frame's JSON document value.
    pub fn to_json_value(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".to_string(), Json::str(SHARD_SCHEMA)),
            ("frame".to_string(), Json::str(self.name())),
        ];
        let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
        match self {
            ShardFrame::Hello { host } => push("host", Json::str(host)),
            ShardFrame::Assign { shard, spec } => {
                push("shard", Json::str(shard));
                push("spec", spec.to_json_value());
            }
            ShardFrame::Heartbeat { shard } => push("shard", Json::str(shard)),
            ShardFrame::Result(r) => {
                push("shard", Json::str(&r.shard));
                push("payload_json", Json::str(&r.payload_json));
                push("csv", Json::str(&r.csv));
                push("text", Json::str(&r.text));
                push("wall_ms", Json::num(r.wall_ms));
                push(
                    "cache",
                    match r.cache {
                        Some(status) => Json::str(status.label()),
                        None => Json::Null,
                    },
                );
                push(
                    "row_cache",
                    match r.row_cache {
                        Some(rc) => Json::obj([
                            ("hits", Json::UInt(rc.hits)),
                            ("misses", Json::UInt(rc.misses)),
                        ]),
                        None => Json::Null,
                    },
                );
            }
            ShardFrame::Error { shard, error } => {
                push("shard", Json::str(shard));
                push(
                    "error",
                    Json::obj([
                        ("status", Json::UInt(u64::from(error.status))),
                        ("code", Json::str(error.code)),
                        ("message", Json::str(error.message.clone())),
                    ]),
                );
            }
        }
        Json::Obj(pairs)
    }

    /// The compact JSON wire form.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The wire tag of this frame kind.
    pub fn name(&self) -> &'static str {
        match self {
            ShardFrame::Hello { .. } => "hello",
            ShardFrame::Assign { .. } => "assign",
            ShardFrame::Heartbeat { .. } => "heartbeat",
            ShardFrame::Result(_) => "result",
            ShardFrame::Error { .. } => "error",
        }
    }

    /// Parses one frame's JSON document.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] on schema mismatch or malformed fields.
    pub fn from_json(text: &str) -> Result<ShardFrame, WorkloadError> {
        let doc = Json::parse(text).map_err(|e| SpecError::new(e.to_string()))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SHARD_SCHEMA {
            return Err(SpecError::new(format!(
                "unsupported shard frame schema {schema:?} (expected {SHARD_SCHEMA:?})"
            ))
            .into());
        }
        let frame = doc
            .get("frame")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("shard frame needs a string \"frame\" field"))?;
        let shard_field = || -> Result<String, WorkloadError> {
            doc.get("shard")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| SpecError::new("shard frame needs a string \"shard\" field").into())
        };
        Ok(match frame {
            "hello" => ShardFrame::Hello {
                host: doc
                    .get("host")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SpecError::new("hello frame needs a string \"host\""))?
                    .to_string(),
            },
            "assign" => ShardFrame::Assign {
                shard: shard_field()?,
                spec: JobSpec::from_json_value(
                    doc.get("spec")
                        .ok_or_else(|| SpecError::new("assign frame needs a \"spec\" object"))?,
                )?,
            },
            "heartbeat" => ShardFrame::Heartbeat {
                shard: shard_field()?,
            },
            "result" => {
                let string = |key: &str| -> Result<String, WorkloadError> {
                    doc.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            SpecError::new(format!("result frame needs a string {key:?}")).into()
                        })
                };
                let cache = match doc.get("cache") {
                    None | Some(Json::Null) => None,
                    Some(v) => match v.as_str() {
                        Some("hit") => Some(CacheStatus::Hit),
                        Some("miss") => Some(CacheStatus::Miss),
                        other => {
                            return Err(SpecError::new(format!(
                                "result frame \"cache\" must be \"hit\", \"miss\" or null, \
                                 not {other:?}"
                            ))
                            .into())
                        }
                    },
                };
                let row_cache = match doc.get("row_cache") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(RowCacheStats {
                        hits: v.get("hits").and_then(Json::as_u64).ok_or_else(|| {
                            SpecError::new("\"row_cache\" needs an unsigned \"hits\"")
                        })?,
                        misses: v.get("misses").and_then(Json::as_u64).ok_or_else(|| {
                            SpecError::new("\"row_cache\" needs an unsigned \"misses\"")
                        })?,
                    }),
                };
                ShardFrame::Result(Box::new(ShardResult {
                    shard: shard_field()?,
                    payload_json: string("payload_json")?,
                    csv: string("csv")?,
                    text: string("text")?,
                    wall_ms: doc.get("wall_ms").and_then(Json::as_f64).ok_or_else(|| {
                        SpecError::new("result frame needs a numeric \"wall_ms\"")
                    })?,
                    cache,
                    row_cache,
                }))
            }
            "error" => {
                let body = doc
                    .get("error")
                    .ok_or_else(|| SpecError::new("error frame needs an \"error\" object"))?;
                let status = body
                    .get("status")
                    .and_then(Json::as_u64)
                    .and_then(|s| u16::try_from(s).ok())
                    .ok_or_else(|| SpecError::new("\"error\" needs a u16 \"status\""))?;
                let code = body
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SpecError::new("\"error\" needs a string \"code\""))?;
                let message = body
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                ShardFrame::Error {
                    shard: shard_field()?,
                    error: ErrorBody::new(status, intern_error_code(code), message),
                }
            }
            other => {
                return Err(SpecError::new(format!(
                    "unknown shard frame kind {other:?} \
                     (hello | assign | heartbeat | result | error)"
                ))
                .into())
            }
        })
    }

    /// Writes the frame as a 4-byte big-endian length prefix plus the
    /// JSON body.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the underlying writer, or `InvalidData` when
    /// the frame exceeds the 64 MiB cap.
    pub fn write_to(&self, writer: &mut impl io::Write) -> io::Result<()> {
        let body = self.to_json();
        let len = u32::try_from(body.len())
            .ok()
            .filter(|&n| n <= MAX_FRAME_BYTES)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("shard frame of {} bytes exceeds the frame cap", body.len()),
                )
            })?;
        // One contiguous write per frame: splitting the prefix and the
        // body into separate writes invites a Nagle / delayed-ACK
        // stall (~40 ms per frame) on sockets without TCP_NODELAY.
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(body.as_bytes());
        writer.write_all(&buf)?;
        writer.flush()
    }

    /// Reads one length-prefixed frame. A clean EOF before the prefix
    /// surfaces as `UnexpectedEof` (the peer hung up); malformed JSON
    /// or an off-contract document is `InvalidData`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the reader or the decoding steps above.
    pub fn read_from(reader: &mut impl io::Read) -> io::Result<ShardFrame> {
        let mut prefix = [0u8; 4];
        reader.read_exact(&mut prefix)?;
        let len = u32::from_be_bytes(prefix);
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard frame length {len} exceeds the frame cap"),
            ));
        }
        let mut body = vec![0u8; len as usize];
        reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "shard frame is not UTF-8"))?;
        ShardFrame::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SpecError;

    #[test]
    fn accept_negotiation_follows_listed_order() {
        assert_eq!(WireFormat::from_accept(""), Some(WireFormat::Json));
        assert_eq!(
            WireFormat::from_accept("application/json"),
            Some(WireFormat::Json)
        );
        assert_eq!(WireFormat::from_accept("text/csv"), Some(WireFormat::Csv));
        assert_eq!(
            WireFormat::from_accept("text/plain, application/json"),
            Some(WireFormat::Text)
        );
        assert_eq!(
            WireFormat::from_accept("application/xml, text/csv;q=0.5"),
            Some(WireFormat::Csv)
        );
        assert_eq!(WireFormat::from_accept("*/*"), Some(WireFormat::Json));
        assert_eq!(WireFormat::from_accept("image/png"), None);
    }

    #[test]
    fn workload_errors_map_to_frozen_codes() {
        let spec_err: WorkloadError = SpecError::new("bad").into();
        let body = ErrorBody::of(&spec_err);
        assert_eq!((body.status, body.code), (400, "invalid_spec"));
        assert_eq!(body.exit_code(), 2);

        let io_err = WorkloadError::io("/tmp/x", std::io::Error::other("boom"));
        let body = ErrorBody::of(&io_err);
        assert_eq!((body.status, body.code), (500, "io_failed"));
        assert_eq!(body.exit_code(), 4);

        let model_err: WorkloadError = optpower::ModelError::InvalidFrequency { hertz: 0.0 }.into();
        let body = ErrorBody::of(&model_err);
        assert_eq!((body.status, body.code), (422, "model_failed"));
        assert_eq!(body.exit_code(), 3);
    }

    #[test]
    fn error_body_json_is_schema_tagged() {
        let body = ErrorBody::new(429, "queue_full", "queue is full");
        let json = body.to_json();
        assert_eq!(
            json,
            r#"{"schema":"optpower-error/v1","status":429,"code":"queue_full","error":"queue is full"}"#
        );
        assert_eq!(
            status_json("00ff00ff00ff00ff", "queued"),
            r#"{"schema":"optpower-job-status/v1","key":"00ff00ff00ff00ff","state":"queued"}"#
        );
    }

    #[test]
    fn shard_frames_round_trip_through_the_codec() {
        let spec = JobSpec::default_for("ab_initio").unwrap();
        let frames = [
            ShardFrame::Hello {
                host: "127.0.0.1:7900".to_string(),
            },
            ShardFrame::Assign {
                shard: spec.canonical_key(),
                spec: spec.clone(),
            },
            ShardFrame::Heartbeat {
                shard: spec.canonical_key(),
            },
            ShardFrame::Result(Box::new(ShardResult {
                shard: spec.canonical_key(),
                payload_json: r#"{"schema":"optpower-workload/v1"}"#.to_string(),
                csv: "a,b\n1,2\n".to_string(),
                text: "table".to_string(),
                wall_ms: 12.75,
                cache: Some(CacheStatus::Hit),
                row_cache: Some(RowCacheStats { hits: 3, misses: 1 }),
            })),
            ShardFrame::Result(Box::new(ShardResult {
                shard: "00ff00ff00ff00ff".to_string(),
                payload_json: String::new(),
                csv: String::new(),
                text: String::new(),
                wall_ms: 0.0,
                cache: None,
                row_cache: None,
            })),
            ShardFrame::Error {
                shard: spec.canonical_key(),
                error: ErrorBody::new(422, "model_failed", "no optimum"),
            },
        ];
        // JSON round trip, then the length-prefixed byte stream — all
        // frames in one buffer, read back in order.
        let mut stream = Vec::new();
        for frame in &frames {
            assert_eq!(&ShardFrame::from_json(&frame.to_json()).unwrap(), frame);
            frame.write_to(&mut stream).unwrap();
        }
        let mut reader = stream.as_slice();
        for frame in &frames {
            assert_eq!(&ShardFrame::read_from(&mut reader).unwrap(), frame);
        }
        // Clean EOF at a frame boundary is UnexpectedEof (peer gone).
        let err = ShardFrame::read_from(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn shard_codec_rejects_off_contract_input() {
        for bad in [
            r#"{"schema":"optpower-shard/v2","frame":"hello","host":"h"}"#,
            r#"{"schema":"optpower-shard/v1","frame":"warp"}"#,
            r#"{"schema":"optpower-shard/v1","frame":"assign","shard":"k"}"#,
            r#"{"schema":"optpower-shard/v1","frame":"result","shard":"k"}"#,
            "not json",
        ] {
            assert!(ShardFrame::from_json(bad).is_err(), "{bad}");
        }
        // A hostile length prefix must not allocate; it is InvalidData.
        let mut reader: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        let err = ShardFrame::read_from(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn error_codes_intern_to_the_frozen_vocabulary() {
        assert_eq!(intern_error_code("model_failed"), "model_failed");
        assert_eq!(intern_error_code("queue_full"), "queue_full");
        assert_eq!(intern_error_code("made_up_code"), "unknown_error");
        // The wire round trip of an error frame preserves code + status.
        let frame = ShardFrame::Error {
            shard: "k".to_string(),
            error: ErrorBody::new(429, "queue_full", "busy"),
        };
        let back = ShardFrame::from_json(&frame.to_json()).unwrap();
        assert_eq!(back, frame);
    }
}
