//! The frozen v1 wire surface shared by every front-end: output
//! format negotiation, the machine-readable error body, and the
//! HTTP-independent job request/response pair.
//!
//! This module is deliberately transport-free — nothing here knows
//! about sockets or HTTP framing. The `optpower` CLI and the
//! `optpower serve` job service both build on these types, so a spec
//! that fails with `invalid_spec` on the command line fails with the
//! same machine-readable code (and the same derived exit/status) over
//! the wire. Freezing the mapping in `crates/workload` is what makes
//! the contract in `crates/serve/README.md` stable: the serve crate
//! adds transport-level codes (`queue_full`, `draining`, …) but never
//! re-maps a workload failure.

use crate::artifact::Artifact;
use crate::error::WorkloadError;
use crate::json::Json;
use crate::spec::JobSpec;

/// Schema tag of the machine-readable error body.
pub const ERROR_SCHEMA: &str = "optpower-error/v1";

/// Schema tag of the job status document (async submissions).
pub const STATUS_SCHEMA: &str = "optpower-job-status/v1";

/// The three renderings every artifact supports, as a negotiable wire
/// format. The CLI selects one with `--json` / `--csv` flags; the
/// server selects one from the `Accept` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// The legacy console rendering ([`Artifact::render_text`]).
    Text,
    /// The full JSON envelope ([`Artifact::to_json`]).
    #[default]
    Json,
    /// The primary table as CSV ([`Artifact::to_csv`]).
    Csv,
}

impl WireFormat {
    /// The short name (`text` / `json` / `csv`).
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Text => "text",
            WireFormat::Json => "json",
            WireFormat::Csv => "csv",
        }
    }

    /// The format by short name, as accepted by `--format`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "text" => Some(WireFormat::Text),
            "json" => Some(WireFormat::Json),
            "csv" => Some(WireFormat::Csv),
            _ => None,
        }
    }

    /// The `Content-Type` this format is served with.
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::Text => "text/plain; charset=utf-8",
            WireFormat::Json => "application/json",
            WireFormat::Csv => "text/csv",
        }
    }

    /// Content negotiation over an `Accept` header value: the first
    /// listed media type we can produce wins (explicit order, not
    /// q-values, decides). An empty or absent header means JSON; a
    /// header listing only unsupported types is `None` (HTTP 406).
    pub fn from_accept(header: &str) -> Option<Self> {
        let mut listed_any = false;
        for part in header.split(',') {
            let media = part
                .split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase();
            if media.is_empty() {
                continue;
            }
            listed_any = true;
            match media.as_str() {
                "application/json" | "application/*" | "*/*" => return Some(WireFormat::Json),
                "text/csv" => return Some(WireFormat::Csv),
                "text/plain" | "text/*" => return Some(WireFormat::Text),
                _ => {}
            }
        }
        if listed_any {
            None
        } else {
            Some(WireFormat::Json)
        }
    }

    /// Renders an artifact in this format.
    pub fn render(self, artifact: &Artifact) -> String {
        match self {
            WireFormat::Text => artifact.render_text(),
            WireFormat::Json => artifact.to_json(),
            WireFormat::Csv => artifact.to_csv(),
        }
    }
}

/// The machine-readable error surface: an HTTP-shaped status, a
/// stable snake_case code, and the human message. Every front-end
/// derives its failure signalling from this one struct — the server
/// sends it as the `optpower-error/v1` JSON body, the CLI derives its
/// exit code from the status class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// HTTP-shaped status (400/404/422/429/5xx…).
    pub status: u16,
    /// Stable machine-readable code (`invalid_spec`, `queue_full`, …).
    pub code: &'static str,
    /// The human-readable message.
    pub message: String,
}

impl ErrorBody {
    /// An error body from parts.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            code,
            message: message.into(),
        }
    }

    /// The frozen [`WorkloadError`] → wire mapping. Spec problems are
    /// the client's fault (400); jobs that parsed but cannot execute
    /// are unprocessable (422, with a per-family code); IO is the
    /// host's fault (500).
    pub fn of(err: &WorkloadError) -> Self {
        let (status, code) = match err {
            WorkloadError::Spec(_) => (400, "invalid_spec"),
            WorkloadError::Lint { .. } => (422, "lint_rejected"),
            WorkloadError::Model(_) => (422, "model_failed"),
            WorkloadError::AbInitio(_) => (422, "ab_initio_failed"),
            WorkloadError::Sim(_) => (422, "simulation_failed"),
            WorkloadError::Netlist(_) => (422, "netlist_failed"),
            WorkloadError::Io { .. } => (500, "io_failed"),
        };
        Self::new(status, code, err.to_string())
    }

    /// The `optpower-error/v1` JSON document.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(ERROR_SCHEMA)),
            ("status", Json::UInt(u64::from(self.status))),
            ("code", Json::str(self.code)),
            ("error", Json::str(self.message.clone())),
        ])
        .to_string()
    }

    /// The process exit code a CLI front-end maps this error to:
    /// 2 for client-side errors (4xx), 3 for jobs that parsed but
    /// failed to execute (422 specifically), 4 for host-side failures
    /// (5xx). Success is 0; exit 1 is left to panics.
    pub fn exit_code(&self) -> u8 {
        match self.status {
            422 => 3,
            400..=499 => 2,
            _ => 4,
        }
    }
}

/// The canonical reason phrase for the status codes the v1 wire API
/// uses (a plain `Error` for anything off-contract).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// Whether a submission waits for the artifact or returns immediately
/// with the job key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// Hold the request open until the artifact (or error) is ready.
    #[default]
    Sync,
    /// Accept, return the canonical key, let the client poll.
    Async,
}

/// One job submission, transport-independent: the parsed spec plus
/// how the caller wants the result back.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The job to run.
    pub spec: JobSpec,
    /// The negotiated response rendering.
    pub format: WireFormat,
    /// Sync (wait for the artifact) or async (return the key).
    pub mode: SubmitMode,
}

impl JobRequest {
    /// A synchronous JSON-format request for a spec.
    pub fn new(spec: JobSpec) -> Self {
        Self {
            spec,
            format: WireFormat::default(),
            mode: SubmitMode::default(),
        }
    }
}

/// The transport-independent outcome of a submission. The server
/// frames this as an HTTP response; a CLI front-end prints the body
/// and derives its exit code.
#[derive(Debug, Clone)]
pub enum JobResponse {
    /// The job ran (or was served from cache): the artifact itself
    /// (boxed — artifacts dwarf the other variants).
    Completed(Box<Artifact>),
    /// The job was queued asynchronously under its canonical key.
    Accepted {
        /// The spec's [`JobSpec::canonical_key`].
        key: String,
    },
    /// The job was rejected or failed.
    Failed(ErrorBody),
}

impl JobResponse {
    /// The HTTP-shaped status of this outcome.
    pub fn status(&self) -> u16 {
        match self {
            JobResponse::Completed(_) => 200,
            JobResponse::Accepted { .. } => 202,
            JobResponse::Failed(body) => body.status,
        }
    }
}

/// The `optpower-job-status/v1` document: the canonical key plus the
/// job's lifecycle state (`queued` / `running` / `done` / `failed`).
pub fn status_json(key: &str, state: &str) -> String {
    Json::obj([
        ("schema", Json::str(STATUS_SCHEMA)),
        ("key", Json::str(key)),
        ("state", Json::str(state)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SpecError;

    #[test]
    fn accept_negotiation_follows_listed_order() {
        assert_eq!(WireFormat::from_accept(""), Some(WireFormat::Json));
        assert_eq!(
            WireFormat::from_accept("application/json"),
            Some(WireFormat::Json)
        );
        assert_eq!(WireFormat::from_accept("text/csv"), Some(WireFormat::Csv));
        assert_eq!(
            WireFormat::from_accept("text/plain, application/json"),
            Some(WireFormat::Text)
        );
        assert_eq!(
            WireFormat::from_accept("application/xml, text/csv;q=0.5"),
            Some(WireFormat::Csv)
        );
        assert_eq!(WireFormat::from_accept("*/*"), Some(WireFormat::Json));
        assert_eq!(WireFormat::from_accept("image/png"), None);
    }

    #[test]
    fn workload_errors_map_to_frozen_codes() {
        let spec_err: WorkloadError = SpecError::new("bad").into();
        let body = ErrorBody::of(&spec_err);
        assert_eq!((body.status, body.code), (400, "invalid_spec"));
        assert_eq!(body.exit_code(), 2);

        let io_err = WorkloadError::io("/tmp/x", std::io::Error::other("boom"));
        let body = ErrorBody::of(&io_err);
        assert_eq!((body.status, body.code), (500, "io_failed"));
        assert_eq!(body.exit_code(), 4);

        let model_err: WorkloadError = optpower::ModelError::InvalidFrequency { hertz: 0.0 }.into();
        let body = ErrorBody::of(&model_err);
        assert_eq!((body.status, body.code), (422, "model_failed"));
        assert_eq!(body.exit_code(), 3);
    }

    #[test]
    fn error_body_json_is_schema_tagged() {
        let body = ErrorBody::new(429, "queue_full", "queue is full");
        let json = body.to_json();
        assert_eq!(
            json,
            r#"{"schema":"optpower-error/v1","status":429,"code":"queue_full","error":"queue is full"}"#
        );
        assert_eq!(
            status_json("00ff00ff00ff00ff", "queued"),
            r#"{"schema":"optpower-job-status/v1","key":"00ff00ff00ff00ff","state":"queued"}"#
        );
    }
}
