//! A minimal blocking HTTP/1.1 client for the v1 wire API — enough
//! for `optpower submit`, the CI smoke step, and the integration
//! tests, with the same no-new-dependencies constraint as the server.
//! One request per connection (`Connection: close`), so a reply is
//! simply "write the request, read to EOF, split head from body".

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed reply.
#[derive(Debug)]
pub struct HttpReply {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the full reply. `headers` are extra
/// request headers beyond `Host` and `Content-Length` (e.g.
/// `("Accept", "application/json")`).
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> io::Result<HttpReply> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::other("reply has no head terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::other("reply head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::other("empty reply"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line {status_line:?}")))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            l.split_once(':')
                .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_parse_status_headers_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\
                    Content-Length: 4\r\n\r\nbody";
        let reply = parse_reply(raw).expect("parses");
        assert_eq!(reply.status, 429);
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.header("Retry-After"), Some("1"));
        assert_eq!(reply.body_text(), "body");
    }
}
