//! Service counters and per-kind latency histograms behind
//! `GET /metrics`.
//!
//! Counters are plain `AtomicU64`s (lock-free on the request path);
//! the histograms live behind one mutex keyed by job kind, touched
//! once per executed job. The rendering is a single JSON document —
//! the same [`optpower_workload::Json`] writer as every other wire
//! body — so CI can assert counters with nothing fancier than `grep`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use optpower_workload::Json;

/// Schema tag of the metrics document.
pub const METRICS_SCHEMA: &str = "optpower-metrics/v1";

/// Wall-clock histogram bucket upper bounds, in milliseconds. The
/// last bucket is unbounded.
const BUCKET_UPPER_MS: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// One job kind's wall-time histogram.
#[derive(Debug, Default, Clone)]
struct Hist {
    /// Counts per bucket: `BUCKET_UPPER_MS` plus the overflow bucket.
    counts: [u64; 6],
    total_ms: f64,
    samples: u64,
}

impl Hist {
    fn record(&mut self, wall_ms: f64) {
        let ix = BUCKET_UPPER_MS
            .iter()
            .position(|&upper| wall_ms <= upper)
            .unwrap_or(BUCKET_UPPER_MS.len());
        self.counts[ix] += 1;
        self.total_ms += wall_ms;
        self.samples += 1;
    }
}

/// The service's observable state, shared by every thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs admitted (queued or served from cache).
    pub accepted: AtomicU64,
    /// Artifacts served over the wire (cache hits included).
    pub served: AtomicU64,
    /// Submissions refused with `429 queue_full`.
    pub rejected_queue_full: AtomicU64,
    /// Submissions refused for any other client-side reason (bad
    /// spec, unacceptable format, draining, oversized body).
    pub rejected_other: AtomicU64,
    /// Jobs that executed and failed.
    pub failed: AtomicU64,
    /// Admissions answered straight from the artifact cache.
    pub cache_hits: AtomicU64,
    /// Admissions that had to execute.
    pub cache_misses: AtomicU64,
    /// Per-architecture characterization rows served from the
    /// incremental row cache across all executed jobs.
    pub row_cache_hits: AtomicU64,
    /// Characterization rows simulated fresh (and inserted).
    pub row_cache_misses: AtomicU64,
    /// Synchronous waits that gave up with `504 timeout`.
    pub timeouts: AtomicU64,
    /// Shards reassigned after a worker death or timeout, summed
    /// across distributed runs.
    pub dist_retries: AtomicU64,
    /// Shards answered from the coordinator's shard cache.
    pub shard_cache_hits: AtomicU64,
    /// Shards that travelled to a worker.
    pub shard_cache_misses: AtomicU64,
    /// Completed shards per worker host, summed across distributed
    /// runs (every configured host present, zero included).
    dist_hosts: Mutex<BTreeMap<String, u64>>,
    hist: Mutex<BTreeMap<String, Hist>>,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed job's wall time under its kind.
    pub fn record_wall(&self, kind: &str, wall_ms: f64) {
        let mut hist = self.hist.lock().unwrap_or_else(|e| e.into_inner());
        hist.entry(kind.to_string()).or_default().record(wall_ms);
    }

    /// Folds one distributed run's per-host shard counts into the
    /// service totals (hosts that completed nothing still appear, so
    /// a dead worker is visible as a flat line, not a missing one).
    pub fn record_dist_hosts(&self, per_host: &BTreeMap<String, u64>) {
        let mut hosts = self.dist_hosts.lock().unwrap_or_else(|e| e.into_inner());
        for (host, shards) in per_host {
            *hosts.entry(host.clone()).or_insert(0) += shards;
        }
    }

    /// The `optpower-metrics/v1` JSON document. `queue_depth` is
    /// sampled by the caller (the queue owns that number).
    pub fn render(&self, queue_depth: usize, state: &str) -> String {
        let get = |c: &AtomicU64| Json::UInt(c.load(Ordering::Relaxed));
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let hit_rate = if hits + misses == 0 {
            Json::Null
        } else {
            Json::num(hits as f64 / (hits + misses) as f64)
        };
        let dist_hosts: Vec<(String, Json)> = self
            .dist_hosts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(host, &shards)| (host.clone(), Json::UInt(shards)))
            .collect();
        let hist = self.hist.lock().unwrap_or_else(|e| e.into_inner());
        let kinds: Vec<(String, Json)> = hist
            .iter()
            .map(|(kind, h)| {
                let mut bounds: Vec<Json> = BUCKET_UPPER_MS.iter().map(|&b| Json::num(b)).collect();
                bounds.push(Json::Null);
                (
                    kind.clone(),
                    Json::obj([
                        ("samples", Json::UInt(h.samples)),
                        ("total_ms", Json::num(h.total_ms)),
                        ("bucket_upper_ms", Json::Arr(bounds)),
                        (
                            "bucket_counts",
                            Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        Json::obj([
            ("schema", Json::str(METRICS_SCHEMA)),
            ("state", Json::str(state)),
            ("accepted", get(&self.accepted)),
            ("served", get(&self.served)),
            ("rejected_queue_full", get(&self.rejected_queue_full)),
            ("rejected_other", get(&self.rejected_other)),
            ("failed", get(&self.failed)),
            ("cache_hits", get(&self.cache_hits)),
            ("cache_misses", get(&self.cache_misses)),
            ("cache_hit_rate", hit_rate),
            ("row_cache_hits", get(&self.row_cache_hits)),
            ("row_cache_misses", get(&self.row_cache_misses)),
            ("timeouts", get(&self.timeouts)),
            ("dist_hosts", Json::Obj(dist_hosts)),
            ("dist_retries", get(&self.dist_retries)),
            ("shard_cache_hits", get(&self.shard_cache_hits)),
            ("shard_cache_misses", get(&self.shard_cache_misses)),
            ("queue_depth", Json::UInt(queue_depth as u64)),
            ("wall_ms_by_kind", Json::Obj(kinds)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_hit_rate_render() {
        let m = Metrics::default();
        Metrics::bump(&m.accepted);
        Metrics::bump(&m.served);
        Metrics::bump(&m.cache_hits);
        Metrics::bump(&m.cache_misses);
        m.row_cache_hits.fetch_add(2, Ordering::Relaxed);
        m.dist_retries.fetch_add(1, Ordering::Relaxed);
        let mut hosts = BTreeMap::new();
        hosts.insert("h1:1".to_string(), 3u64);
        hosts.insert("h2:1".to_string(), 0u64);
        m.record_dist_hosts(&hosts);
        m.record_dist_hosts(&hosts);
        m.record_wall("table2", 0.5);
        m.record_wall("table2", 50.0);
        m.record_wall("table2", 99_999.0);
        let doc = m.render(3, "running");
        assert!(doc.contains(r#""schema":"optpower-metrics/v1""#));
        assert!(doc.contains(r#""cache_hit_rate":0.5"#));
        assert!(doc.contains(r#""row_cache_hits":2"#));
        assert!(doc.contains(r#""row_cache_misses":0"#));
        assert!(doc.contains(r#""queue_depth":3"#));
        assert!(doc.contains(r#""dist_hosts":{"h1:1":6,"h2:1":0}"#));
        assert!(doc.contains(r#""dist_retries":1"#));
        assert!(doc.contains(r#""bucket_counts":[1,0,1,0,0,1]"#));
    }
}
